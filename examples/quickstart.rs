//! Quickstart: the 5-point stencil of Figure 1.
//!
//! Runs the motivating example of the paper — a cuPyNumeric-style stencil over
//! aliasing views of a distributed grid — once with Diffuse's task and kernel
//! fusion and once without, and prints what fusion did to the task stream.
//!
//! Run with `cargo run --example quickstart`.

use dense::DenseContext;
use diffuse::{Context, DiffuseConfig};
use machine::MachineConfig;

fn stencil(fused: bool) {
    let machine = MachineConfig::single_node(4);
    let config = if fused {
        DiffuseConfig::fused(machine)
    } else {
        DiffuseConfig::unfused(machine)
    };
    let np = DenseContext::new(Context::new(config));

    let n = 64u64;
    let grid = np.random(&[n + 2, n + 2], 42);
    // Aliasing views of the distributed grid array (Figure 1a).
    let center = grid.slice_2d(1..n + 1, 1..n + 1);
    let north = grid.slice_2d(0..n, 1..n + 1);
    let south = grid.slice_2d(2..n + 2, 1..n + 1);
    let east = grid.slice_2d(1..n + 1, 2..n + 2);
    let west = grid.slice_2d(1..n + 1, 0..n);

    for _ in 0..10 {
        let avg = center.add(&north).add(&east).add(&west).add(&south);
        let work = avg.scalar_mul(0.2);
        center.assign(&work);
    }
    np.flush();

    let stats = np.context().stats();
    let label = if fused { "with Diffuse" } else { "without Diffuse" };
    println!(
        "{label:>18}: {} tasks submitted, {} launched ({} fused tasks), simulated time {:.3} ms",
        stats.tasks_submitted,
        stats.tasks_launched,
        stats.fused_tasks,
        np.context().elapsed() * 1e3
    );
    println!(
        "{:>18}  checksum of the interior: {:.6}",
        "",
        center.sum().scalar_value().unwrap()
    );
}

fn main() {
    println!("5-point stencil on a 4-GPU machine (Figure 1 of the paper)\n");
    stencil(false);
    stencil(true);
    println!(
        "\nThe checksums match: fusion changes the schedule, not the values.\n\
         The fused run launches one FUSED_ADD_MULT task per iteration plus the\n\
         copy back into the aliasing center view, which cannot fuse (Section 2)."
    );
}
