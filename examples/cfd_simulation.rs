//! Navier-Stokes channel flow: aliasing views in a real simulation.
//!
//! Demonstrates the behaviour the paper highlights for the CFD application
//! (Figure 12b): fusion finds long fusible prefixes on a single GPU where data
//! is not partitioned, and shorter ones on many GPUs where the aliasing views
//! of the pressure and velocity grids force communication.
//!
//! Run with `cargo run --release --example cfd_simulation`.

use apps::{cfd, Mode};

fn main() {
    println!("CFD channel flow: task stream before and after fusion\n");
    println!(
        "{:>6}{:>18}{:>20}{:>20}",
        "GPUs", "tasks/iter", "launches/iter", "speedup vs unfused"
    );
    for gpus in [1usize, 4, 16] {
        let fused = cfd::run(Mode::Fused, gpus, 64, 4, true);
        let unfused = cfd::run(Mode::Unfused, gpus, 64, 4, true);
        println!(
            "{gpus:>6}{:>18.1}{:>20.1}{:>19.2}x",
            unfused.tasks_per_iteration,
            fused.launches_per_iteration,
            fused.throughput / unfused.throughput
        );
        assert!((fused.checksum.unwrap() - unfused.checksum.unwrap()).abs() < 1e-9);
    }
    println!("\nFused and unfused runs produce identical fields at every scale.");
}
