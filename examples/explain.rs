//! The fusion why-not explainer and the privilege analyzer (`docs/ANALYZE.md`).
//!
//! Builds a task window that dies on a *phantom privilege* — a declared
//! read-write scratch argument the kernel never actually touches, passed
//! through an aliasing replicated partition — and shows:
//!
//! 1. `Context::explain()`: the structured why-not report naming the split
//!    boundary, the violated constraint, the dependence classification and a
//!    suggestion that would admit fusion;
//! 2. `DIFFUSE_ANALYZE=inferred` (`AnalyzeMode::Inferred`): the footprint
//!    analyzer proves the scratch read-only, tightens the privilege, and the
//!    same window fuses — bitwise-identically;
//! 3. a genuinely carried dependence (whole-tile-shifted producer), which the
//!    explainer classifies with its constant distance and a halo-exchange
//!    suggestion — a split the analyzer correctly refuses to remove.
//!
//! Run with `cargo run --example explain`.

use diffuse::{AnalyzeMode, Context, DiffuseConfig, TaskKind, TaskSignature};
use ir::{Partition, Projection};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder};
use machine::MachineConfig;

const N: u64 = 64;

/// `out[i] = a[i] + b[i]`, plus a declared read-write scratch argument the
/// kernel body never names — the over-broad signature a cautious library
/// developer might write "just in case".
fn register_add_scratch(ctx: &Context) -> TaskKind {
    ctx.register_library("demo").register(
        "add_scratch",
        TaskSignature::new().read().read().write().read_write(),
        |_args| {
            let mut m = KernelModule::new(4);
            m.set_role(BufferId(2), BufferRole::Output);
            let mut b = LoopBuilder::new("add_scratch", BufferId(2));
            let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
            let s = b.add(x, y);
            b.store(BufferId(2), s);
            m.push_loop(b.finish());
            m
        },
    )
}

/// Builds the two-task chain `c = a + b; e = c + d`, both tasks dragging the
/// shared scratch through `Partition::Replicate`, and returns the window
/// report plus the final value of `e[0]` and the context stats.
fn run_phantom_chain(mode: AnalyzeMode) -> (diffuse::WindowReport, f64, diffuse::ExecutionStats) {
    let config = DiffuseConfig::fused(MachineConfig::with_gpus(2)).with_analyze(mode);
    let ctx = Context::new(config);
    let add = register_add_scratch(&ctx);
    let block = Partition::block(vec![N / 2]);

    let a = ctx.create_store(vec![N], "a");
    let b = ctx.create_store(vec![N], "b");
    let c = ctx.create_store(vec![N], "c");
    let d = ctx.create_store(vec![N], "d");
    let e = ctx.create_store(vec![N], "e");
    let scratch = ctx.create_store(vec![N], "scratch");
    ctx.fill(&a, 1.0);
    ctx.fill(&b, 2.0);
    ctx.fill(&d, 3.0);
    ctx.fill(&scratch, 0.0);

    ctx.task(add)
        .read(&a, block.clone())
        .read(&b, block.clone())
        .write(&c, block.clone())
        .read_write(&scratch, Partition::Replicate)
        .launch();
    ctx.task(add)
        .read(&c, block.clone())
        .read(&d, block.clone())
        .write(&e, block.clone())
        .read_write(&scratch, Partition::Replicate)
        .launch();

    // Purely observational: the window is neither flushed nor reordered.
    let report = ctx.explain();
    ctx.flush();
    let value = ctx.read_store(&e).unwrap()[0];
    (report, value, ctx.stats())
}

/// A producer writing through tiles shifted by one whole launch point, then
/// a block-partition consumer: a real carried dependence the analyzer must
/// *not* erase. The explainer reports its constant distance.
fn run_carried_boundary() -> diffuse::WindowReport {
    let config =
        DiffuseConfig::fused(MachineConfig::with_gpus(2)).with_analyze(AnalyzeMode::Inferred);
    let ctx = Context::new(config);
    let add = register_add_scratch(&ctx);
    let block = Partition::block(vec![N / 2]);
    let shifted = Partition::tiling(vec![N / 2], vec![(N / 2) as i64], Projection::Identity);

    let a = ctx.create_store(vec![N], "a");
    let b = ctx.create_store(vec![N], "b");
    let c = ctx.create_store(vec![N + N / 2], "c");
    let d = ctx.create_store(vec![N], "d");
    let e = ctx.create_store(vec![N], "e");
    let scratch = ctx.create_store(vec![N], "scratch");
    for s in [&a, &b, &c, &d, &scratch] {
        ctx.fill(s, 1.0);
    }

    // Producer stores c through tiles offset by one whole tile; the consumer
    // reads c through the unshifted block view.
    ctx.task(add)
        .read(&a, block.clone())
        .read(&b, block.clone())
        .write(&c, shifted)
        .read_write(&scratch, Partition::Replicate)
        .launch();
    ctx.task(add)
        .read(&c, block.clone())
        .read(&d, block.clone())
        .write(&e, block)
        .read_write(&scratch, Partition::Replicate)
        .launch();

    let report = ctx.explain();
    ctx.flush();
    report
}

fn main() {
    println!("The fusion why-not explainer (docs/ANALYZE.md)\n");

    println!("== declared privileges (the scratch's read-write is trusted) ==");
    let (report, value, stats) = run_phantom_chain(AnalyzeMode::Declared);
    print!("{report}");
    println!(
        "launched {} tasks ({} fused), e[0] = {value}\n",
        stats.tasks_launched, stats.fused_tasks
    );

    println!("== inferred privileges (DIFFUSE_ANALYZE=inferred) ==");
    let (report, inferred_value, stats) = run_phantom_chain(AnalyzeMode::Inferred);
    print!("{report}");
    println!(
        "launched {} tasks ({} fused, {} privileges tightened), e[0] = {inferred_value}",
        stats.tasks_launched, stats.fused_tasks, stats.privileges_tightened
    );
    assert_eq!(value.to_bits(), inferred_value.to_bits());
    println!("the analyzer erased the phantom dependence; results are bitwise identical\n");

    println!("== a real carried dependence the analyzer must keep ==");
    print!("{}", run_carried_boundary());
}
