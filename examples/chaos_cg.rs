//! Conjugate Gradient under fault injection (`docs/RESILIENCE.md`).
//!
//! Runs the natural SciPy-style CG loop twice over the dense + sparse
//! libraries: once fault-free, once under a seeded `FaultPlan` (taken from
//! `DIFFUSE_FAULTS=<seed>:<rate>` when set, a built-in schedule otherwise)
//! with recovery on. Every injected device failure, transient region-read
//! failure and compile failure is retried, degraded or migrated by the
//! recovery layer — and the solver's residual comes out *bitwise identical*
//! to the fault-free run, the headline invariant of the resilience layer.
//!
//! Run with `cargo run --release --example chaos_cg`, or pick a schedule:
//! `DIFFUSE_FAULTS=7:0.8 cargo run --release --example chaos_cg`.

use apps::common::spmv;
use dense::DenseContext;
use diffuse::{Context, DiffuseConfig, ExecutionStats, FaultPlan, RecoveryPolicy};
use machine::MachineConfig;
use sparse::{CsrMatrix, SparseContext};

const GPUS: usize = 4;
const GRID: u64 = 24;
const ITERATIONS: u64 = 25;

struct CgRun {
    residual: f64,
    stats: ExecutionStats,
}

/// The natural CG loop (the code a SciPy user would write), solved to
/// `ITERATIONS` under the given fault plan. `None` pins the fault-free
/// reference regardless of `DIFFUSE_FAULTS` in the environment.
fn run_cg(plan: Option<FaultPlan>) -> CgRun {
    let mut config = DiffuseConfig::fused(MachineConfig::with_gpus(GPUS))
        .with_recovery(RecoveryPolicy::default());
    config.fault_plan = plan;
    let np = DenseContext::new(Context::new(config));
    let sp = SparseContext::new(np.context());
    let a = CsrMatrix::poisson_2d(&sp, GRID);
    let b = np.ones(&[a.rows()]);

    let mut x = np.zeros(&[a.rows()]);
    let mut r = b.copy();
    let mut p = r.copy();
    let mut rs_old = r.dot(&r);
    for _ in 0..ITERATIONS {
        let q = spmv(&a, &p);
        let p_ap = p.dot(&q);
        let alpha = rs_old.div(&p_ap);
        x = x.axpy(&alpha, &p, 1.0);
        r = r.axpy(&alpha, &q, -1.0);
        let rs_new = r.dot(&r);
        let beta = rs_new.div(&rs_old);
        p = r.axpy(&beta, &p, 1.0);
        rs_old = rs_new;
    }
    let residual = rs_old.scalar_value().expect("functional run has a residual");
    let failures = np.context().take_failures();
    assert!(
        failures.is_empty(),
        "recovery must repair every injected fault, got {failures:?}"
    );
    let _ = x;
    CgRun {
        residual,
        stats: np.context().stats(),
    }
}

fn main() {
    let plan = FaultPlan::from_env().unwrap_or_else(|| FaultPlan::new(42, 0.35));
    println!(
        "CG on the 2-D Poisson problem under chaos ({GPUS} simulated GPUs, \
         {ITERATIONS} iterations, fault seed {} rate {})\n",
        plan.seed(),
        plan.rate()
    );

    let clean = run_cg(None);
    assert_eq!(
        clean.stats.faults_injected, 0,
        "the reference run must be fault-free"
    );
    let chaos = run_cg(Some(plan));

    println!("fault-free residual   {:.6e}", clean.residual);
    println!("chaos residual        {:.6e}", chaos.residual);
    println!();
    println!("faults injected       {:>6}", chaos.stats.faults_injected);
    println!("retries               {:>6}", chaos.stats.retries);
    println!("degraded launches     {:>6}", chaos.stats.degraded_launches);
    println!("abandoned launches    {:>6}", chaos.stats.abandoned_launches);
    println!("recovery sim time     {:>12.6} s", chaos.stats.recovery_sim_time);

    assert!(chaos.stats.faults_injected > 0, "the schedule must inject");
    assert_eq!(chaos.stats.abandoned_launches, 0, "recovery must not abandon");
    assert_eq!(
        clean.residual.to_bits(),
        chaos.residual.to_bits(),
        "recovery must reproduce the fault-free residual bitwise"
    );
    println!("\nresiduals are bitwise identical: recovery changed nothing.");
}
