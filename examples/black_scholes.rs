//! Black-Scholes option pricing across machine sizes.
//!
//! Prints a small weak-scaling table (throughput with and without fusion) for
//! the trivially fusible micro-benchmark of Figure 10a, using the simulated
//! machine, then verifies put-call parity functionally on a small problem.
//!
//! Run with `cargo run --release --example black_scholes`.

use apps::{black_scholes, Mode};

fn main() {
    println!("Black-Scholes weak scaling (simulated A100 machine)\n");
    println!("{:>6}{:>18}{:>18}{:>10}", "GPUs", "Fused (it/s)", "Unfused (it/s)", "Speedup");
    for gpus in [1usize, 8, 64] {
        let fused = black_scholes::run(Mode::Fused, gpus, 1 << 24, 5, false);
        let unfused = black_scholes::run(Mode::Unfused, gpus, 1 << 24, 5, false);
        println!(
            "{gpus:>6}{:>18.2}{:>18.2}{:>9.1}x",
            fused.throughput,
            unfused.throughput,
            fused.throughput / unfused.throughput
        );
    }

    // Functional check on a small problem: the two variants agree bit-for-bit
    // in this reproduction because both execute the same kernels on the host.
    let fused = black_scholes::run(Mode::Fused, 4, 256, 2, true);
    let unfused = black_scholes::run(Mode::Unfused, 4, 256, 2, true);
    println!(
        "\nfunctional checksum: fused {:.6} vs unfused {:.6}",
        fused.checksum.unwrap(),
        unfused.checksum.unwrap()
    );
}
