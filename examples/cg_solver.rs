//! Conjugate Gradient composed from the dense and sparse libraries.
//!
//! Solves a 2-D Poisson problem with the natural SciPy-style CG loop and shows
//! how Diffuse fuses tasks across the two libraries, then compares against the
//! explicitly parallel PETSc-style baseline.
//!
//! Run with `cargo run --release --example cg_solver`.

use apps::{cg, Mode};

fn main() {
    println!("Conjugate Gradient on the 2-D Poisson problem (8 simulated GPUs)\n");
    // Functional run on a small grid: all variants drive the residual down.
    for mode in [Mode::Fused, Mode::Unfused, Mode::ManuallyFused, Mode::Petsc] {
        let r = cg::run(mode, 8, 512, 40, true);
        println!(
            "{:<16} residual {:.3e}   tasks/iter {:>5.1}   launches/iter {:>5.1}",
            r.mode.to_string(),
            r.checksum.unwrap(),
            r.tasks_per_iteration,
            r.launches_per_iteration
        );
    }

    println!("\nSimulated throughput at machine scale (iterations/second):");
    for mode in [Mode::Fused, Mode::Petsc, Mode::ManuallyFused, Mode::Unfused] {
        let r = cg::run(mode, 64, 1 << 26, 10, false);
        println!("{:<16} {:>10.2} it/s", r.mode.to_string(), r.throughput);
    }
}
