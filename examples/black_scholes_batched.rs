//! Batched Black-Scholes: horizontal fusion of independent batches.
//!
//! Prices N independent option portfolios per iteration. Vertical fusion
//! collapses each batch to two launches (its pricing chain and its domain-1
//! combine), but cannot cross the batch boundaries; the horizontal pass packs
//! all the chains into one wide launch and all the combines into another, so
//! launches per iteration drop from `2 * N` to 2 — bit-identically, because
//! only proven-disjoint batches are reordered.
//!
//! Run with `cargo run --release --example black_scholes_batched`.

use apps::{black_scholes_batched, Mode};

fn main() {
    println!("Batched Black-Scholes (simulated A100 machine, 8 GPUs)\n");
    println!(
        "{:>8}{:>16}{:>18}{:>18}{:>10}",
        "Batches", "Launches/it", "Horizontal (it/s)", "Vertical (it/s)", "Speedup"
    );
    for batches in [2usize, 8, 32] {
        let horizontal =
            black_scholes_batched::run(Mode::Fused, 8, 1 << 20, batches, 5, false, true);
        let vertical =
            black_scholes_batched::run(Mode::Fused, 8, 1 << 20, batches, 5, false, false);
        println!(
            "{batches:>8}{:>8.0} vs {:>4.0}{:>18.2}{:>18.2}{:>9.2}x",
            horizontal.launches_per_iteration,
            vertical.launches_per_iteration,
            horizontal.throughput,
            vertical.throughput,
            horizontal.throughput / vertical.throughput
        );
    }

    // Functional check: reordering independent batches is bitwise invisible.
    let horizontal = black_scholes_batched::run(Mode::Fused, 4, 64, 8, 2, true, true);
    let vertical = black_scholes_batched::run(Mode::Fused, 4, 64, 8, 2, true, false);
    let unfused = black_scholes_batched::run(Mode::Unfused, 4, 64, 8, 2, true, false);
    println!(
        "\nfunctional checksum: horizontal {:.6} vs vertical {:.6} vs unfused {:.6}",
        horizontal.checksum.unwrap(),
        vertical.checksum.unwrap(),
        unfused.checksum.unwrap()
    );
    assert_eq!(
        horizontal.checksum.unwrap().to_bits(),
        unfused.checksum.unwrap().to_bits(),
        "horizontal fusion must be bitwise invisible"
    );
    println!("bit-identical across all three configurations");
}
