//! Cross-library fusion demo: dense + sparse + stencil in one window.
//!
//! Three independently written libraries are registered on one Diffuse
//! context and compose through store handles alone; a 5-task
//! dense→sparse→stencil pipeline fuses into a single launch. The example
//! runs the pipeline fused and unfused under every executor × backend
//! combination, asserts the results are bit-identical (it panics otherwise —
//! CI runs it in the invariance job), and prints what fusion did, per
//! library.
//!
//! Run with `cargo run --example cross_library`.

use dense::DenseContext;
use diffuse::{BackendKind, Context, DiffuseConfig, ExecutorKind};
use machine::MachineConfig;
use sparse::{CsrMatrix, SparseContext};
use stencil::StencilContext;

const GPUS: usize = 4;
const N: u64 = 256;

fn run(fused: bool, executor: ExecutorKind, backend: BackendKind) -> (f64, diffuse::ExecutionStats) {
    let machine = MachineConfig::with_gpus(GPUS);
    let config = if fused {
        DiffuseConfig::fused(machine)
    } else {
        DiffuseConfig::unfused(machine)
    }
    .with_executor(executor)
    .with_backend(backend);
    let ctx = Context::new(config);
    let np = DenseContext::new(ctx.clone());
    let sp = SparseContext::new(&ctx);
    let st = StencilContext::new(&ctx);

    // A tridiagonal system, an input vector and a ghost-bordered grid —
    // host-initialized, shared between the libraries by store handle only.
    let a = CsrMatrix::from_dense(&sp, N, N, &|r, c| {
        if r == c {
            2.0
        } else if r.abs_diff(c) == 1 {
            -1.0
        } else {
            0.0
        }
    });
    let x = np.from_vec(&[N], (0..N).map(|i| (i % 7) as f64 + 0.5).collect());
    let grid = ctx.create_store(vec![N + 2], "grid");
    ctx.write_store(&grid, (0..N + 2).map(|i| ((i * 3) % 5) as f64).collect());
    let smoothed = ctx.create_store(vec![N + 2], "smoothed");

    // The cross-library window (every dependence is point-wise, so the whole
    // sequence is one fusible prefix):
    let y = np.wrap(a.spmv(x.handle())); //  sparse: y = A x
    let z = y.scalar_mul(0.5); //             dense:  z = 0.5 y
    st.star_1d(&grid, &smoothed, [0.5, 0.25, 0.25]); // stencil smoothing
    let w = np.wrap(smoothed.clone()).slice_1d(1..N + 1).mul(&z); // dense
    let total = w.sum(); //                   dense reduction
    ctx.flush();

    (total.scalar_value().expect("functional run"), ctx.stats())
}

fn main() {
    println!(
        "dense → sparse → stencil pipeline on {GPUS} simulated GPUs ({N} unknowns)\n"
    );
    let executors = [
        ("serial", ExecutorKind::Serial),
        ("parallel", ExecutorKind::WorkStealing { workers: Some(2) }),
    ];
    let backends = [
        ("interp", BackendKind::Interp),
        ("closure", BackendKind::Closure),
        ("simd", BackendKind::Simd),
    ];

    let (reference, fused_stats) = run(true, ExecutorKind::Serial, BackendKind::Interp);
    let (unfused_checksum, unfused_stats) = run(false, ExecutorKind::Serial, BackendKind::Interp);
    assert_eq!(
        reference.to_bits(),
        unfused_checksum.to_bits(),
        "fusion changed the result"
    );
    assert!(
        fused_stats.tasks_launched < unfused_stats.tasks_launched,
        "fusion must reduce the launch count"
    );
    assert!(
        fused_stats.cross_library_fused_tasks >= 1,
        "the fused launch must span libraries"
    );

    println!("{:>10} {:>8} {:>9} {:>10}  checksum", "executor", "backend", "launches", "x-library");
    for (ename, executor) in executors {
        for (bname, backend) in backends {
            for fused in [true, false] {
                let (checksum, stats) = run(fused, executor, backend);
                assert_eq!(
                    checksum.to_bits(),
                    reference.to_bits(),
                    "{ename}/{bname} fused={fused} diverged"
                );
                println!(
                    "{:>10} {:>8} {:>9} {:>10}  {:.6} ({})",
                    ename,
                    bname,
                    stats.tasks_launched,
                    stats.cross_library_fused_tasks,
                    checksum,
                    if fused { "fused" } else { "unfused" },
                );
            }
        }
    }

    println!("\nPer-library attribution of the fused run:");
    for lib in fused_stats.per_library.iter().filter(|l| l.tasks_submitted > 0) {
        println!(
            "  {:>8}: {} task(s) submitted, {} launch(es), {} shared with other libraries, {:.3} ms simulated",
            lib.library,
            lib.tasks_submitted,
            lib.launches,
            lib.cross_library_launches,
            lib.simulated_time * 1e3,
        );
    }
    println!(
        "\nAll {} executor × backend × fusion combinations agree to the bit.",
        executors.len() * backends.len() * 2
    );
}
