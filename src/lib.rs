//! Umbrella crate for the Diffuse reproduction workspace.
//!
//! This crate re-exports every workspace crate under one name so integration
//! tests and the root-level examples can reach the whole system through a
//! single dependency. See the individual crates for the real functionality:
//!
//! * [`machine`] — simulated distributed GPU machine and cost model.
//! * [`kernel`] — kernel IR, JIT compilation pipeline and interpreter.
//! * [`ir`] — Diffuse's scale-free intermediate representation.
//! * [`runtime`] — Legion-style task runtime the IR lowers to.
//! * [`fusion`] — distributed task fusion, temporary elimination, memoization.
//! * [`diffuse`] — the Diffuse middle layer tying the above together.
//! * [`dense`] — cuPyNumeric-equivalent distributed dense array library.
//! * [`sparse`] — Legate-Sparse-equivalent distributed CSR library.
//! * [`stencil`] — star-stencil library (1-D/2-D/3-D) proving the Library API.
//! * [`petsc`] — explicitly parallel hand-fused baseline (PETSc stand-in).
//! * [`apps`] — the seven benchmark applications from the paper.
//!
//! # Example
//!
//! ```
//! use diffuse_repro::apps::{jacobi, Mode};
//!
//! // Everything is reachable through the umbrella: simulate two Jacobi
//! // iterations on a single GPU with a 64×64 matrix.
//! let result = jacobi::run(Mode::Fused, 1, 1 << 12, 2, false);
//! assert_eq!(result.gpus, 1);
//! assert!(result.throughput > 0.0);
//! ```

pub use apps;
pub use dense;
pub use diffuse;
pub use fusion;
pub use ir;
pub use kernel;
pub use machine;
pub use petsc;
pub use runtime;
pub use sparse;
pub use stencil;
