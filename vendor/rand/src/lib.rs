//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny, deterministic implementation of the `rand` API surface that the
//! `dense` and `apps` crates consume: [`rngs::StdRng`], [`SeedableRng`] and
//! [`Rng::gen`]. The generator is SplitMix64, which is plenty for seeding
//! benchmark inputs; it makes no cryptographic claims and, unlike the real
//! `rand`, guarantees a stable value stream across versions — handy for
//! golden benchmark trajectories.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! let xs: Vec<f64> = (0..4).map(|_| a.gen::<f64>()).collect();
//! let ys: Vec<f64> = (0..4).map(|_| b.gen::<f64>()).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
//! ```

/// A type that can be produced by [`Rng::gen`].
///
/// Mirrors the role of `rand::distributions::Standard` sampling without the
/// distribution machinery: each implementor defines how to map a raw `u64`
/// draw to a uniformly distributed value.
pub trait Standard: Sized {
    /// Maps one 64-bit draw from the generator to a sample.
    fn from_u64(raw: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for usize {
    fn from_u64(raw: u64) -> Self {
        raw as usize
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, like `rand`'s `Standard`.
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Core random-number-generator trait: anything that can emit raw `u64`s.
pub trait RngCore {
    /// Returns the next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly sampled value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Returns a value uniformly distributed in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// The real `StdRng` is a ChaCha block cipher; SplitMix64 keeps the
    /// vendored crate dependency-free while passing every statistical need of
    /// benchmark-input generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed so small seeds (0, 1, 7, 42...) do not produce
            // correlated early outputs.
            let mut rng = StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "sample {x} outside [0, 1)");
        }
    }

    #[test]
    fn streams_are_deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn mean_of_uniform_samples_is_near_half() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }
}
