//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small benchmark harness with Criterion's API shape: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurements are real
//! wall-clock medians over adaptively sized batches; there is no statistical
//! analysis, plotting, or saved baselines. Output is one line per benchmark:
//!
//! ```text
//! fusible_prefix/window/32    time:  14.2 µs/iter  (211 iters, 3 samples)
//! ```
//!
//! Swap this crate for the real `criterion` in `[workspace.dependencies]`
//! once the build environment can reach a registry — the call sites compile
//! unchanged.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().with_measurement_time_ms(5);
//! c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in the measured closure across all iterations.
    elapsed: Duration,
    /// Number of iterations executed.
    iters: u64,
    /// Number of measurement samples taken.
    samples: u64,
    /// Wall-clock budget for the measurement phase.
    measurement_time: Duration,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Self {
        Bencher { elapsed: Duration::ZERO, iters: 0, samples: 0, measurement_time }
    }

    /// Calls `routine` repeatedly, recording total wall-clock time.
    ///
    /// Runs a short calibration pass, then sizes batches so the whole
    /// measurement stays within the harness's time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one untimed warmup call, then time a single call.
        std::hint::black_box(routine());
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let budget = self.measurement_time;
        let total_iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let samples = total_iters.clamp(1, 5);
        let batch = (total_iters / samples).max(1);

        let mut elapsed = Duration::ZERO;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            elapsed += t.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = samples * batch;
        self.samples = samples;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.1} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn report(name: &str, b: &Bencher) {
    let per_iter = if b.iters == 0 { Duration::ZERO } else { b.elapsed / b.iters as u32 };
    println!(
        "{:<44} time: {:>10}/iter  ({} iters, {} samples)",
        name,
        format_duration(per_iter),
        b.iters,
        b.samples
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    /// Per-group override of the criterion-wide measurement budget.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility; the
    /// stand-in derives its sample count from the time budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement time for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = Some(dur);
        self
    }

    fn budget(&self) -> Duration {
        self.measurement_time.unwrap_or(self.criterion.measurement_time)
    }

    /// Benchmarks `routine` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(&mut self, id: BenchmarkId, input: &I, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut routine = routine;
        let mut bencher = Bencher::new(self.budget());
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.name), &bencher);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) -> &mut Self {
        let mut bencher = Bencher::new(self.budget());
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Ends the group. (The stand-in reports eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep default runs fast: the workspace's benches exist to show
        // scaling shape, and CI runs them with `--no-run` anyway.
        let ms = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion { measurement_time: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement budget, in milliseconds.
    pub fn with_measurement_time_ms(mut self, ms: u64) -> Self {
        self.measurement_time = Duration::from_millis(ms);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), measurement_time: None }
    }

    /// Benchmarks a single named routine.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement_time);
        routine(&mut bencher);
        report(name, &bencher);
        self
    }
}

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // `--test`. Filters and other Criterion CLI flags are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert!(b.iters > 0);
        // Two calibration calls plus the measured iterations.
        assert_eq!(calls, b.iters + 2);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default().with_measurement_time_ms(1);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(2))
            .bench_with_input(BenchmarkId::new("n", 4), &4u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        group.finish();
    }

    #[test]
    fn group_measurement_time_overrides_default() {
        let mut c = Criterion::default().with_measurement_time_ms(500);
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(1));
        assert_eq!(group.budget(), Duration::from_millis(1));
        let t0 = Instant::now();
        group.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
        // The 1 ms group budget, not the 500 ms default, bounds the run.
        assert!(t0.elapsed() < Duration::from_millis(400));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
