//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a miniature property-testing harness with proptest's API shape: the
//! [`strategy::Strategy`] trait (ranges, tuples, [`strategy::Just`],
//! [`prop_oneof!`] unions, `prop_map`, [`collection::vec`]), the
//! [`proptest!`] test macro, and the
//! `prop_assert!` family. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` in the
//!   assertion message) but is not minimized.
//! * **Deterministic seeding.** Cases derive from a hash of the test name and
//!   the case index, so failures reproduce exactly across runs and machines.
//!   Set `PROPTEST_SEED` to explore a different region of the input space.
//! * **No persistence.** There is no `proptest-regressions` directory.
//!
//! Swap this crate for the real `proptest` in `[workspace.dependencies]` once
//! a registry is reachable — the call sites compile unchanged.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//!
//! // Strategies can also be driven by hand:
//! let lists = prop::collection::vec(0u32..10, 1..4);
//! let mut rng = proptest::TestRng::for_case("example", 0);
//! let v = Strategy::generate(&lists, &mut rng);
//! assert!((1..4).contains(&v.len()));
//! ```

// The `#[test]` in the example above documents the macro's surface; the real
// proptest crate ships the same kind of example.
#![allow(clippy::test_attr_in_doctest)]

/// Deterministic generator driving test-case generation.
///
/// Wraps the vendored [`rand`] crate's [`rand::rngs::StdRng`] (the real
/// proptest also builds on `rand`), seeded per `(test name, case index)`.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: rand::rngs::StdRng,
}

impl TestRng {
    /// Builds the generator for one `(test name, case index)` pair.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index and the
        // optional PROPTEST_SEED environment override.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed_env: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        use rand::SeedableRng;
        let seed = h ^ ((case as u64) << 32) ^ seed_env;
        TestRng { rng: rand::rngs::StdRng::seed_from_u64(seed) }
    }

    /// Returns the next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.rng)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        self.next_u64() % bound
    }
}

/// Error returned by a failing property body (the `prop_assert!` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod test_runner {
    //! Test-runner configuration, mirroring `proptest::test_runner`.

    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Executes one property over `config.cases` generated inputs.
///
/// Called by the [`proptest!`] macro expansion; panics (failing the enclosing
/// `#[test]`) on the first case whose body returns an error.
pub fn run_proptest<F>(name: &str, config: &test_runner::Config, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        if let Err(err) = property(&mut rng) {
            panic!(
                "property `{name}` failed at case {case}/{total}: {err}",
                total = config.cases,
            );
        }
    }
}

pub mod strategy {
    //! Value-generation strategies, mirroring `proptest::strategy`.

    use super::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike the real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of the [`TestRng`] stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map_fn`.
        fn prop_map<O, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, map_fn }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let strategy = self;
            BoxedStrategy(Rc::new(move |rng| strategy.generate(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        strategy: S,
        map_fn: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map_fn)(self.strategy.generate(rng))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies of one value type, as built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(
                            self.start < self.end,
                            "cannot sample from empty range {:?}",
                            self
                        );
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $ty
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range {len:?}");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        $crate::prop_assert!($condition, "assertion failed: {}", stringify!($condition))
    };
    ($condition:expr, $($fmt:tt)+) => {
        if !$condition {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current property case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_proptest(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    let body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strategy = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strategy, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strategy = crate::collection::vec(0u8..10, 2..5);
        let mut rng = crate::TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strategy = (0u64..4, (0i32..3).prop_map(|x| x * 2)).prop_map(|(a, b)| (a, b));
        let mut rng = crate::TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&strategy, &mut rng);
            assert!(a < 4);
            assert!([0, 2, 4].contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, assertions and config all wire up.
        #[test]
        fn macro_end_to_end(xs in prop::collection::vec(0u32..100, 1..6), k in 1u32..5) {
            prop_assert!(!xs.is_empty());
            let doubled: Vec<u32> = xs.iter().map(|x| x * k).collect();
            for (orig, twice) in xs.iter().zip(&doubled) {
                prop_assert_eq!(orig * k, *twice);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_proptest(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
