//! Index tasks: the computational model.

use crate::domain::Domain;
use crate::intern::{PartitionId, ShapeId};
use crate::store::StoreId;

/// Unique identifier of an index task in a task stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Reduction operators usable with the [`Privilege::Reduce`] privilege.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionOp {
    /// Sum reduction.
    Sum,
    /// Max reduction.
    Max,
    /// Min reduction.
    Min,
}

/// The privilege with which a task accesses a (store, partition) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Read-only access.
    Read,
    /// Write-only access.
    Write,
    /// Read-write access.
    ReadWrite,
    /// Reduction access with an associative, commutative operator.
    Reduce(ReductionOp),
}

impl Privilege {
    /// Whether the privilege reads the data (Read or ReadWrite).
    pub fn reads(self) -> bool {
        matches!(self, Privilege::Read | Privilege::ReadWrite)
    }

    /// Whether the privilege writes the data (Write or ReadWrite).
    pub fn writes(self) -> bool {
        matches!(self, Privilege::Write | Privilege::ReadWrite)
    }

    /// Whether the privilege reduces to the data.
    pub fn reduces(self) -> bool {
        matches!(self, Privilege::Reduce(_))
    }

    /// The least privilege that subsumes both `self` and `other`, used when a
    /// fused task merges the privileges of its constituent tasks. Reductions
    /// combined with anything other than the same reduction are promoted to
    /// ReadWrite.
    pub fn promote(self, other: Privilege) -> Privilege {
        use Privilege::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Reduce(_), _) | (_, Reduce(_)) => ReadWrite,
            (Read, Write) | (Write, Read) => ReadWrite,
            (ReadWrite, _) | (_, ReadWrite) => ReadWrite,
            _ => ReadWrite,
        }
    }
}

impl std::fmt::Display for Privilege {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Privilege::Read => write!(f, "R"),
            Privilege::Write => write!(f, "W"),
            Privilege::ReadWrite => write!(f, "RW"),
            Privilege::Reduce(op) => write!(f, "Rd({op:?})"),
        }
    }
}

/// One store argument of an index task: a (store, partition, privilege)
/// triple, plus the interned shape of the store.
///
/// The partition and shape are carried as interned ids ([`PartitionId`],
/// [`ShapeId`]), so arguments are small and `Copy` and the fusion analysis
/// compares partitions with a register compare. The shape is stamped by the
/// Diffuse context at submit time ([`ShapeId::UNKNOWN`] until then); analyses
/// that need it (canonicalization, temporary elimination) read it straight
/// off the argument instead of through a side map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreArg {
    /// The store being accessed.
    pub store: StoreId,
    /// The partition through which the store is accessed (interned).
    pub partition: PartitionId,
    /// The shape of the store (interned; [`ShapeId::UNKNOWN`] until stamped).
    pub shape: ShapeId,
    /// The access privilege.
    pub privilege: Privilege,
}

impl StoreArg {
    /// Creates a store argument with an unstamped shape. Accepts either an
    /// owned [`crate::Partition`] (interned on the fly) or a [`PartitionId`].
    pub fn new(store: StoreId, partition: impl Into<PartitionId>, privilege: Privilege) -> Self {
        StoreArg {
            store,
            partition: partition.into(),
            shape: ShapeId::UNKNOWN,
            privilege,
        }
    }

    /// Returns the argument with its store shape stamped.
    pub fn with_shape(mut self, shape: impl Into<ShapeId>) -> Self {
        self.shape = shape.into();
        self
    }
}

/// A group of parallel point tasks launched over a rectangular domain
/// (Figure 2a). Each point task accesses the sub-stores selected by its launch
/// point through the argument partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexTask {
    /// Unique id within the task stream.
    pub id: TaskId,
    /// The task kind (which library operation this is). Matches a generator
    /// registered in the kernel generator registry.
    pub kind: u32,
    /// Human-readable name for debugging and profiles.
    pub name: String,
    /// The launch domain: one point per parallel point task.
    pub launch_domain: Domain,
    /// Store arguments in kernel-argument order.
    pub args: Vec<StoreArg>,
    /// Scalar parameters forwarded to the kernel.
    pub scalars: Vec<f64>,
}

impl IndexTask {
    /// Creates an index task.
    pub fn new(
        id: TaskId,
        kind: u32,
        name: impl Into<String>,
        launch_domain: Domain,
        args: Vec<StoreArg>,
        scalars: Vec<f64>,
    ) -> Self {
        IndexTask {
            id,
            kind,
            name: name.into(),
            launch_domain,
            args,
            scalars,
        }
    }

    /// Whether any argument reads `store`.
    pub fn reads(&self, store: StoreId) -> bool {
        self.args
            .iter()
            .any(|a| a.store == store && a.privilege.reads())
    }

    /// Whether any argument writes `store`.
    pub fn writes(&self, store: StoreId) -> bool {
        self.args
            .iter()
            .any(|a| a.store == store && a.privilege.writes())
    }

    /// Whether any argument reduces to `store`.
    pub fn reduces(&self, store: StoreId) -> bool {
        self.args
            .iter()
            .any(|a| a.store == store && a.privilege.reduces())
    }

    /// All stores referenced by the task (with duplicates removed, in
    /// argument order).
    pub fn stores(&self) -> Vec<StoreId> {
        let mut out = Vec::new();
        for a in &self.args {
            if !out.contains(&a.store) {
                out.push(a.store);
            }
        }
        out
    }

    /// Arguments accessing `store`.
    pub fn args_for(&self, store: StoreId) -> impl Iterator<Item = &StoreArg> {
        self.args.iter().filter(move |a| a.store == store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Partition, Projection};

    fn task() -> IndexTask {
        IndexTask::new(
            TaskId(1),
            0,
            "add",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(0), Partition::block(vec![8]), Privilege::Read),
                StoreArg::new(StoreId(1), Partition::block(vec![8]), Privilege::Read),
                StoreArg::new(StoreId(2), Partition::block(vec![8]), Privilege::Write),
            ],
            vec![],
        )
    }

    #[test]
    fn privilege_predicates() {
        assert!(Privilege::Read.reads());
        assert!(!Privilege::Read.writes());
        assert!(Privilege::ReadWrite.reads() && Privilege::ReadWrite.writes());
        assert!(Privilege::Write.writes() && !Privilege::Write.reads());
        assert!(Privilege::Reduce(ReductionOp::Sum).reduces());
        assert!(!Privilege::Reduce(ReductionOp::Sum).reads());
    }

    #[test]
    fn privilege_promotion() {
        use Privilege::*;
        assert_eq!(Read.promote(Read), Read);
        assert_eq!(Read.promote(Write), ReadWrite);
        assert_eq!(Write.promote(Read), ReadWrite);
        assert_eq!(ReadWrite.promote(Read), ReadWrite);
        assert_eq!(
            Reduce(ReductionOp::Sum).promote(Reduce(ReductionOp::Sum)),
            Reduce(ReductionOp::Sum)
        );
        assert_eq!(Reduce(ReductionOp::Sum).promote(Read), ReadWrite);
    }

    #[test]
    fn task_access_predicates() {
        let t = task();
        assert!(t.reads(StoreId(0)));
        assert!(!t.writes(StoreId(0)));
        assert!(t.writes(StoreId(2)));
        assert!(!t.reduces(StoreId(2)));
        assert_eq!(t.stores(), vec![StoreId(0), StoreId(1), StoreId(2)]);
        assert_eq!(t.args_for(StoreId(1)).count(), 1);
    }

    #[test]
    fn aliasing_views_are_same_store_different_partitions() {
        // Figure 1: center and north are the same store accessed through
        // different offset tilings.
        let grid = StoreId(0);
        let center = Partition::tiling(vec![2, 2], vec![1, 1], Projection::Identity);
        let north = Partition::tiling(vec![2, 2], vec![0, 1], Projection::Identity);
        let t = IndexTask::new(
            TaskId(0),
            0,
            "stencil_read",
            Domain::new(vec![2, 2]),
            vec![
                StoreArg::new(grid, center.clone(), Privilege::Read),
                StoreArg::new(grid, north, Privilege::Read),
            ],
            vec![],
        );
        assert_eq!(t.stores(), vec![grid]);
        assert_eq!(t.args_for(grid).count(), 2);
        assert_ne!(t.args[0].partition, t.args[1].partition);
        assert_eq!(t.args[0].partition, center);
    }

    #[test]
    fn display_impls() {
        assert_eq!(TaskId(4).to_string(), "T4");
        assert_eq!(Privilege::Read.to_string(), "R");
        assert_eq!(Privilege::ReadWrite.to_string(), "RW");
        assert!(Privilege::Reduce(ReductionOp::Sum).to_string().contains("Rd"));
    }
}
