//! Affine access summaries: the shared vocabulary of the static footprint
//! analysis (`kernel::analyze`) and the dependence classifier
//! (`fusion::classify`).
//!
//! A summary describes, per buffer and access kind, *which elements* a kernel
//! touches as a function of the loop induction variable `i`: a small set of
//! affine forms `a·i + b`, or ⊤ when the access pattern is unknown (opaque
//! stages, or more distinct forms than the set bound). The lattice is
//!
//! ```text
//!        ⊤  (Top — may touch any element)
//!        |
//!   Affine { a·i + b, ... }   (exactly these forms, joined set-wise)
//!        |
//!        ⊥  (Bottom — no access)
//! ```
//!
//! Soundness contract: a summary for an access kind must **over-approximate**
//! every element the kernel can dynamically touch with that kind. `⊥` means
//! provably no access; `Affine` means exactly the listed forms; `⊤` promises
//! nothing. The soundness proptests (`crates/kernel/tests/
//! analyze_soundness.rs`) check inferred ⊇ observed on random modules.
//!
//! These types live in `ir` (not `kernel`) so that `fusion` — which depends
//! only on `ir` — can consume exactness information without a kernel
//! dependency, and so summaries can be fingerprinted next to the other
//! interned analysis keys.

/// An affine index expression `stride·i + offset` over a loop induction
/// variable `i`.
///
/// # Example
///
/// ```
/// use ir::AffineForm;
///
/// let elementwise = AffineForm::IDENTITY; // buffer[i]
/// assert_eq!(elementwise.eval(3), 3);
/// let broadcast = AffineForm::ELEMENT0;   // buffer[0]
/// assert_eq!(broadcast.eval(3), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AffineForm {
    /// Coefficient of the induction variable.
    pub stride: i64,
    /// Constant offset.
    pub offset: i64,
}

impl AffineForm {
    /// The identity access `buffer[i]` (elementwise loads/stores).
    pub const IDENTITY: AffineForm = AffineForm { stride: 1, offset: 0 };
    /// The broadcast access `buffer[0]` (scalar loads, reduction cells).
    pub const ELEMENT0: AffineForm = AffineForm { stride: 0, offset: 0 };

    /// Creates the form `stride·i + offset`.
    pub fn new(stride: i64, offset: i64) -> Self {
        AffineForm { stride, offset }
    }

    /// Evaluates the form at induction value `i`.
    pub fn eval(self, i: i64) -> i64 {
        self.stride * i + self.offset
    }

    /// Whether the form touches a single fixed element regardless of `i`.
    pub fn is_constant(self) -> bool {
        self.stride == 0
    }
}

impl std::fmt::Display for AffineForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.stride, self.offset) {
            (0, b) => write!(f, "{b}"),
            (1, 0) => write!(f, "i"),
            (a, 0) => write!(f, "{a}*i"),
            (1, b) => write!(f, "i{b:+}"),
            (a, b) => write!(f, "{a}*i{b:+}"),
        }
    }
}

/// Maximum number of distinct affine forms tracked before a pattern widens
/// to [`AccessPattern::Top`]. Real kernels in this IR touch each buffer
/// through one or two forms; the bound only guards pathological inputs.
pub const MAX_AFFINE_FORMS: usize = 8;

/// The access-summary lattice value for one (buffer, access kind) pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum AccessPattern {
    /// Provably no access of this kind.
    #[default]
    Bottom,
    /// Exactly these affine forms over the induction variable (sorted,
    /// deduplicated, at most [`MAX_AFFINE_FORMS`]).
    Affine(Vec<AffineForm>),
    /// Unknown: may touch any element (opaque stages, widened sets).
    Top,
}

impl AccessPattern {
    /// Provably no access.
    pub fn is_bottom(&self) -> bool {
        matches!(self, AccessPattern::Bottom)
    }

    /// Exact: the listed affine forms cover every dynamic access.
    pub fn is_exact(&self) -> bool {
        matches!(self, AccessPattern::Affine(_))
    }

    /// Unknown access pattern.
    pub fn is_top(&self) -> bool {
        matches!(self, AccessPattern::Top)
    }

    /// Whether the pattern admits any access at all (`!is_bottom`).
    pub fn may_access(&self) -> bool {
        !self.is_bottom()
    }

    /// The affine forms, when exact.
    pub fn forms(&self) -> Option<&[AffineForm]> {
        match self {
            AccessPattern::Affine(forms) => Some(forms),
            _ => None,
        }
    }

    /// Joins a single affine form into the pattern (lattice join with
    /// `Affine{form}`), widening to ⊤ past [`MAX_AFFINE_FORMS`].
    pub fn join_form(&mut self, form: AffineForm) {
        match self {
            AccessPattern::Top => {}
            AccessPattern::Bottom => *self = AccessPattern::Affine(vec![form]),
            AccessPattern::Affine(forms) => {
                if let Err(pos) = forms.binary_search(&form) {
                    if forms.len() >= MAX_AFFINE_FORMS {
                        *self = AccessPattern::Top;
                    } else {
                        forms.insert(pos, form);
                    }
                }
            }
        }
    }

    /// Lattice join: the least pattern over-approximating both operands.
    pub fn join(&self, other: &AccessPattern) -> AccessPattern {
        match (self, other) {
            (AccessPattern::Top, _) | (_, AccessPattern::Top) => AccessPattern::Top,
            (AccessPattern::Bottom, p) | (p, AccessPattern::Bottom) => p.clone(),
            (AccessPattern::Affine(a), AccessPattern::Affine(b)) => {
                let mut out = self.clone();
                let _ = a; // `out` starts as a clone of the `Affine(a)` side.
                for &f in b {
                    out.join_form(f);
                }
                out
            }
        }
    }

    /// Whether every access admitted by this pattern is also admitted by
    /// `other` (the lattice partial order `self ⊑ other`).
    pub fn covered_by(&self, other: &AccessPattern) -> bool {
        match (self, other) {
            (AccessPattern::Bottom, _) | (_, AccessPattern::Top) => true,
            (_, AccessPattern::Bottom) | (AccessPattern::Top, _) => false,
            (AccessPattern::Affine(a), AccessPattern::Affine(b)) => {
                a.iter().all(|f| b.contains(f))
            }
        }
    }

    /// Folds the pattern into an FNV-1a fingerprint accumulator.
    fn fingerprint_into(&self, h: &mut u64) {
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(FNV_PRIME);
        };
        match self {
            AccessPattern::Bottom => mix(h, 0x0b07),
            AccessPattern::Top => mix(h, 0x707),
            AccessPattern::Affine(forms) => {
                mix(h, 0xaff1);
                for f in forms {
                    mix(h, f.stride as u64);
                    mix(h, f.offset as u64);
                }
            }
        }
    }
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPattern::Bottom => write!(f, "⊥"),
            AccessPattern::Top => write!(f, "⊤"),
            AccessPattern::Affine(forms) => {
                write!(f, "{{")?;
                for (i, form) in forms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{form}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The inferred footprint of one buffer: an [`AccessPattern`] per access
/// kind. A buffer the kernel never names is all-⊥.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BufferFootprint {
    /// Elements loaded (plain and scalar loads).
    pub reads: AccessPattern,
    /// Elements stored.
    pub writes: AccessPattern,
    /// Elements folded into with a reduction operator.
    pub reduces: AccessPattern,
}

impl BufferFootprint {
    /// Lattice join of two footprints, access kind by access kind.
    pub fn join(&self, other: &BufferFootprint) -> BufferFootprint {
        BufferFootprint {
            reads: self.reads.join(&other.reads),
            writes: self.writes.join(&other.writes),
            reduces: self.reduces.join(&other.reduces),
        }
    }

    /// Whether the kernel provably never mutates the buffer (no store and no
    /// reduction admitted) — the condition under which a declared write or
    /// reduce privilege can be tightened to read-only.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_bottom() && self.reduces.is_bottom()
    }

    /// Whether the footprint is everywhere exact or bottom (no ⊤ component).
    pub fn is_exact(&self) -> bool {
        !self.reads.is_top() && !self.writes.is_top() && !self.reduces.is_top()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Deterministic FNV-1a fingerprint of a sequence of buffer footprints —
/// the memoization key component under which a module's analysis result is
/// cached (the same summary always hashes identically, across processes).
///
/// # Example
///
/// ```
/// use ir::{summary_fingerprint, AccessPattern, AffineForm, BufferFootprint};
///
/// let mut fp = BufferFootprint::default();
/// fp.reads.join_form(AffineForm::IDENTITY);
/// let a = summary_fingerprint(&[fp.clone()]);
/// assert_eq!(a, summary_fingerprint(&[fp.clone()]));
/// fp.writes = AccessPattern::Top;
/// assert_ne!(a, summary_fingerprint(&[fp]));
/// ```
pub fn summary_fingerprint(buffers: &[BufferFootprint]) -> u64 {
    let mut h = FNV_OFFSET;
    for fp in buffers {
        fp.reads.fingerprint_into(&mut h);
        fp.writes.fingerprint_into(&mut h);
        fp.reduces.fingerprint_into(&mut h);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_form_builds_sorted_sets() {
        let mut p = AccessPattern::Bottom;
        p.join_form(AffineForm::IDENTITY);
        p.join_form(AffineForm::ELEMENT0);
        p.join_form(AffineForm::IDENTITY); // duplicate: no-op
        assert_eq!(
            p.forms().unwrap(),
            &[AffineForm::ELEMENT0, AffineForm::IDENTITY]
        );
    }

    #[test]
    fn join_widens_past_the_form_bound() {
        let mut p = AccessPattern::Bottom;
        for k in 0..=MAX_AFFINE_FORMS as i64 {
            p.join_form(AffineForm::new(1, k));
        }
        assert!(p.is_top());
    }

    #[test]
    fn join_is_an_upper_bound() {
        let mut a = AccessPattern::Bottom;
        a.join_form(AffineForm::IDENTITY);
        let mut b = AccessPattern::Bottom;
        b.join_form(AffineForm::ELEMENT0);
        let j = a.join(&b);
        assert!(a.covered_by(&j));
        assert!(b.covered_by(&j));
        assert!(AccessPattern::Bottom.covered_by(&a));
        assert!(a.covered_by(&AccessPattern::Top));
        assert!(!AccessPattern::Top.covered_by(&a));
    }

    #[test]
    fn footprint_read_only_predicate() {
        let mut fp = BufferFootprint::default();
        fp.reads.join_form(AffineForm::IDENTITY);
        assert!(fp.is_read_only());
        fp.writes.join_form(AffineForm::IDENTITY);
        assert!(!fp.is_read_only());
    }

    #[test]
    fn fingerprint_distinguishes_access_kinds() {
        let mut read = BufferFootprint::default();
        read.reads.join_form(AffineForm::IDENTITY);
        let mut write = BufferFootprint::default();
        write.writes.join_form(AffineForm::IDENTITY);
        assert_ne!(summary_fingerprint(&[read]), summary_fingerprint(&[write]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AffineForm::IDENTITY.to_string(), "i");
        assert_eq!(AffineForm::ELEMENT0.to_string(), "0");
        assert_eq!(AffineForm::new(2, -1).to_string(), "2*i-1");
        assert_eq!(AccessPattern::Top.to_string(), "⊤");
        assert_eq!(AccessPattern::Bottom.to_string(), "⊥");
    }
}
