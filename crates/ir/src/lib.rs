//! Diffuse's scale-free intermediate representation of distributed computation.
//!
//! This crate implements the IR of Figure 2 in the paper. It contains a *data
//! model* — stores (distributed arrays) and first-class structured partitions
//! ([`Partition::Replicate`] and [`Partition::Tiling`] with projection
//! functions) — and a *computational model* — streams of [`IndexTask`]s, each
//! a group of parallel point tasks over a launch [`Domain`] that access
//! (store, partition) pairs with [`Privilege`]s.
//!
//! The representation is *scale-free*: the size of a partition or an index
//! task does not depend on the number of processors, only the symbolic launch
//! domain grows. Partitions of the same kind can be compared for equality in
//! constant time, which is the property the fusion constraints of Section 4
//! rely on.
//!
//! The [`deps`] module implements the ground-truth dependence definitions
//! (Definitions 1–3) by materializing sub-stores and dependence maps. This is
//! intentionally *scale-aware* and is used only by tests and by the
//! lower-level runtime: the fusion analysis in the `fusion` crate never
//! materializes dependence maps.
//!
//! # Example
//!
//! ```
//! use ir::{Domain, Partition, Privilege, Projection, StoreArg, StoreId, IndexTask, TaskId};
//!
//! // A 1-D store of 1024 elements tiled across 4 GPUs.
//! let store = StoreId(0);
//! let tiling = Partition::tiling(vec![256], vec![0], Projection::Identity);
//! let task = IndexTask::new(
//!     TaskId(0),
//!     0,
//!     "fill",
//!     Domain::new(vec![4]),
//!     vec![StoreArg::new(store, tiling.clone(), Privilege::Write)],
//!     vec![1.0],
//! );
//! assert_eq!(task.launch_domain.size(), 4);
//! assert!(task.writes(store));
//! // Constant-time partition equality is the alias check used by fusion.
//! assert_eq!(tiling, tiling.clone());
//! ```

pub mod deps;
pub mod domain;
pub mod intern;
pub mod partition;
pub mod store;
pub mod summary;
pub mod task;
pub mod window;

pub use deps::{dep, dependence_map, fusible_ground_truth, point_task_substores};
pub use domain::{Domain, Point, Rect};
pub use intern::{PartitionId, ShapeId};
pub use partition::{Partition, Projection};
pub use store::{StoreId, StoreInfo};
pub use summary::{
    summary_fingerprint, AccessPattern, AffineForm, BufferFootprint, MAX_AFFINE_FORMS,
};
pub use task::{IndexTask, Privilege, ReductionOp, StoreArg, TaskId};
pub use window::{window_fingerprint, FingerprintState, TaskWindow};
