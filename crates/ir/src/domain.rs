//! Points, rectangular domains and rectangles.

/// A point in an n-dimensional integer space.
pub type Point = Vec<i64>;

/// A rectangular, origin-anchored domain described by its shape (the exclusive
/// upper bound of every dimension). Used both for store shapes and for index
/// task launch domains.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Domain {
    shape: Vec<u64>,
}

impl Domain {
    /// Creates a domain with the given shape.
    pub fn new(shape: Vec<u64>) -> Self {
        Domain { shape }
    }

    /// A one-dimensional domain of `n` points.
    pub fn linear(n: u64) -> Self {
        Domain { shape: vec![n] }
    }

    /// The shape of the domain.
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.shape.len()
    }

    /// Number of points in the domain (product of the shape).
    pub fn size(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Whether the domain contains no points.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Whether `point` lies inside the domain.
    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.shape.len()
            && point
                .iter()
                .zip(&self.shape)
                .all(|(&p, &s)| p >= 0 && (p as u64) < s)
    }

    /// Iterates over every point in the domain in row-major order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        let total = self.size();
        let shape = self.shape.clone();
        (0..total).map(move |mut idx| {
            let mut p = vec![0i64; shape.len()];
            for d in (0..shape.len()).rev() {
                let extent = shape[d].max(1);
                p[d] = (idx % extent) as i64;
                idx /= extent;
            }
            p
        })
    }

    /// The whole domain as a rectangle anchored at the origin.
    pub fn to_rect(&self) -> Rect {
        Rect {
            lo: vec![0; self.shape.len()],
            hi: self.shape.iter().map(|&s| s as i64).collect(),
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.shape.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// A half-open rectangle `[lo, hi)` in n-dimensional integer space. Used for
/// sub-store bounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Inclusive lower bound of each dimension.
    pub lo: Vec<i64>,
    /// Exclusive upper bound of each dimension.
    pub hi: Vec<i64>,
}

impl Rect {
    /// Creates a rectangle from inclusive lower and exclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds have different dimensionality.
    pub fn new(lo: Vec<i64>, hi: Vec<i64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "rect bounds must have equal rank");
        Rect { lo, hi }
    }

    /// An empty rectangle of the given rank.
    pub fn empty(rank: usize) -> Self {
        Rect {
            lo: vec![0; rank],
            hi: vec![0; rank],
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Whether the rectangle contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(&l, &h)| h <= l)
    }

    /// Number of points in the rectangle.
    pub fn volume(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| (h - l) as u64)
            .product()
    }

    /// The intersection of two rectangles.
    ///
    /// # Panics
    ///
    /// Panics if the rectangles have different rank.
    pub fn intersect(&self, other: &Rect) -> Rect {
        assert_eq!(self.rank(), other.rank(), "rank mismatch in intersect");
        let lo: Vec<i64> = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.max(b))
            .collect();
        let hi: Vec<i64> = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.min(b))
            .collect();
        Rect { lo, hi }
    }

    /// Whether two rectangles overlap in at least one point.
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Whether `self` entirely contains `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        self.lo
            .iter()
            .zip(&other.lo)
            .all(|(&a, &b)| a <= b)
            && self.hi.iter().zip(&other.hi).all(|(&a, &b)| a >= b)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}, {:?})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_size_and_contains() {
        let d = Domain::new(vec![4, 3]);
        assert_eq!(d.size(), 12);
        assert_eq!(d.dims(), 2);
        assert!(!d.is_empty());
        assert!(d.contains(&[3, 2]));
        assert!(!d.contains(&[4, 0]));
        assert!(!d.contains(&[0, -1]));
        assert!(!d.contains(&[0]));
    }

    #[test]
    fn domain_points_row_major() {
        let d = Domain::new(vec![2, 2]);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn linear_domain() {
        let d = Domain::linear(5);
        assert_eq!(d.size(), 5);
        assert_eq!(d.points().count(), 5);
        assert_eq!(d.to_string(), "(5)");
    }

    #[test]
    fn empty_domain() {
        let d = Domain::new(vec![0, 4]);
        assert!(d.is_empty());
        assert_eq!(d.points().count(), 0);
    }

    #[test]
    fn rect_volume_and_empty() {
        let r = Rect::new(vec![1, 1], vec![3, 4]);
        assert_eq!(r.volume(), 6);
        assert!(!r.is_empty());
        assert!(Rect::new(vec![2], vec![2]).is_empty());
        assert_eq!(Rect::empty(2).volume(), 0);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(vec![0, 0], vec![4, 4]);
        let b = Rect::new(vec![2, 2], vec![6, 6]);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(vec![2, 2], vec![4, 4]));
        assert!(a.overlaps(&b));
        let c = Rect::new(vec![4, 0], vec![8, 4]);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn rect_containment() {
        let outer = Rect::new(vec![0, 0], vec![4, 4]);
        let inner = Rect::new(vec![1, 1], vec![3, 3]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&Rect::empty(2)));
    }

    #[test]
    fn domain_to_rect() {
        let d = Domain::new(vec![3, 2]);
        assert_eq!(d.to_rect(), Rect::new(vec![0, 0], vec![3, 2]));
    }

    #[test]
    #[should_panic]
    fn rect_rank_mismatch_panics() {
        let _ = Rect::new(vec![0], vec![1, 2]);
    }
}
