//! Ground-truth dependence definitions (Definitions 1–3 of the paper).
//!
//! These functions *materialize* point tasks, sub-stores and dependence maps.
//! They scale with the number of processors and exist for two purposes: the
//! scale-aware dependence analysis of the Legion-style runtime, and property
//! tests that check the scale-free fusion constraints of the `fusion` crate
//! against these definitions (soundness: whenever the constraints admit
//! fusion, the ground-truth dependence map must be at most point-wise).

use std::collections::HashMap;

use crate::domain::{Point, Rect};
use crate::store::StoreId;
use crate::task::{IndexTask, Privilege};

/// The materialized sub-stores accessed by one point task: for each argument,
/// the (store, privilege, bounds) triple.
pub fn point_task_substores(
    task: &IndexTask,
    store_shapes: &HashMap<StoreId, Vec<u64>>,
    point: &[i64],
) -> Vec<(StoreId, Privilege, Rect)> {
    task.args
        .iter()
        .map(|arg| {
            let shape = store_shapes
                .get(&arg.store)
                .unwrap_or_else(|| panic!("missing shape for {}", arg.store));
            (
                arg.store,
                arg.privilege,
                arg.partition.sub_store_bounds(shape, point),
            )
        })
        .collect()
}

/// Definition 1: whether point task `t2[p2]` depends on point task `t1[p1]`,
/// where `t1` is issued before `t2`.
pub fn dep(
    t1: &IndexTask,
    p1: &[i64],
    t2: &IndexTask,
    p2: &[i64],
    store_shapes: &HashMap<StoreId, Vec<u64>>,
) -> bool {
    let acc1 = point_task_substores(t1, store_shapes, p1);
    let acc2 = point_task_substores(t2, store_shapes, p2);
    for (s1, pr1, r1) in &acc1 {
        for (s2, pr2, r2) in &acc2 {
            if s1 != s2 || !r1.overlaps(r2) {
                continue;
            }
            // true dependence: write followed by read, write, or reduce.
            if pr1.writes() && (pr2.reads() || pr2.writes() || pr2.reduces()) {
                return true;
            }
            // anti dependence: read followed by write or reduce.
            if pr1.reads() && (pr2.writes() || pr2.reduces()) {
                return true;
            }
            // reduction dependence: reduce followed by read or write.
            if pr1.reduces() && (pr2.reads() || pr2.writes()) {
                return true;
            }
        }
    }
    false
}

/// Definition 2: the dependence map `D(t1, t2)`, mapping each point of `t1`'s
/// launch domain to the points of `t2`'s launch domain that depend on it.
pub fn dependence_map(
    t1: &IndexTask,
    t2: &IndexTask,
    store_shapes: &HashMap<StoreId, Vec<u64>>,
) -> HashMap<Point, Vec<Point>> {
    let mut map = HashMap::new();
    for p1 in t1.launch_domain.points() {
        let mut dependents = Vec::new();
        for p2 in t2.launch_domain.points() {
            if dep(t1, &p1, t2, &p2, store_shapes) {
                dependents.push(p2.clone());
            }
        }
        map.insert(p1, dependents);
    }
    map
}

/// Definition 3: whether `t1` and `t2` are fusible according to the ground
/// truth — every dependence is at most point-wise
/// (`D(t1, t2)[p] ⊆ {p}` for all `p`).
pub fn fusible_ground_truth(
    t1: &IndexTask,
    t2: &IndexTask,
    store_shapes: &HashMap<StoreId, Vec<u64>>,
) -> bool {
    if t1.launch_domain != t2.launch_domain {
        // Dependence maps across different domains are not point-wise
        // comparable; conservatively require equal launch domains, mirroring
        // the launch-domain-equivalence constraint.
        return dependence_map(t1, t2, store_shapes)
            .values()
            .all(|deps| deps.is_empty());
    }
    dependence_map(t1, t2, store_shapes)
        .iter()
        .all(|(p, deps)| deps.iter().all(|q| q == p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Partition, Projection, StoreArg, TaskId};

    fn shapes(entries: &[(u64, Vec<u64>)]) -> HashMap<StoreId, Vec<u64>> {
        entries
            .iter()
            .map(|(id, s)| (StoreId(*id), s.clone()))
            .collect()
    }

    fn simple_task(id: u64, args: Vec<StoreArg>, points: u64) -> IndexTask {
        IndexTask::new(TaskId(id), 0, format!("t{id}"), Domain::linear(points), args, vec![])
    }

    #[test]
    fn pointwise_writer_then_reader_dependence_map() {
        // T1 writes S0 block-tiled, T2 reads S0 with the same tiling: the
        // dependence map is point-wise (Figure 4a).
        let shapes = shapes(&[(0, vec![16])]);
        let block = Partition::block(vec![4]);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(StoreId(0), block.clone(), Privilege::Write)],
            4,
        );
        let t2 = simple_task(
            1,
            vec![StoreArg::new(StoreId(0), block, Privilege::Read)],
            4,
        );
        let map = dependence_map(&t1, &t2, &shapes);
        for p in t1.launch_domain.points() {
            assert_eq!(map[&p], vec![p.clone()]);
        }
        assert!(fusible_ground_truth(&t1, &t2, &shapes));
    }

    #[test]
    fn replicated_read_after_tiled_write_is_not_pointwise() {
        // T1 writes S0 tiled, T2 reads S0 replicated: every point of T2
        // depends on every point of T1 (an all-gather).
        let shapes = shapes(&[(0, vec![16])]);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(
                StoreId(0),
                Partition::block(vec![4]),
                Privilege::Write,
            )],
            4,
        );
        let t2 = simple_task(
            1,
            vec![StoreArg::new(StoreId(0), Partition::Replicate, Privilege::Read)],
            4,
        );
        let map = dependence_map(&t1, &t2, &shapes);
        assert_eq!(map[&vec![0]].len(), 4);
        assert!(!fusible_ground_truth(&t1, &t2, &shapes));
    }

    #[test]
    fn shifted_view_write_creates_stencil_dependences() {
        // Figure 1: writing the center view then reading the north view needs
        // neighbour communication, so fusion must be rejected.
        let shapes = shapes(&[(0, vec![6])]);
        let center = Partition::tiling(vec![1], vec![1], Projection::Identity);
        let north = Partition::tiling(vec![1], vec![0], Projection::Identity);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(StoreId(0), center, Privilege::Write)],
            4,
        );
        let t2 = simple_task(
            1,
            vec![StoreArg::new(StoreId(0), north, Privilege::Read)],
            4,
        );
        assert!(!fusible_ground_truth(&t1, &t2, &shapes));
    }

    #[test]
    fn reading_different_views_is_fusible() {
        // Reading two different views of the same store creates no dependences
        // at all.
        let shapes = shapes(&[(0, vec![6]), (1, vec![4])]);
        let center = Partition::tiling(vec![1], vec![1], Projection::Identity);
        let north = Partition::tiling(vec![1], vec![0], Projection::Identity);
        let t1 = simple_task(
            0,
            vec![
                StoreArg::new(StoreId(0), center, Privilege::Read),
                StoreArg::new(StoreId(1), Partition::block(vec![1]), Privilege::Write),
            ],
            4,
        );
        let t2 = simple_task(
            1,
            vec![
                StoreArg::new(StoreId(0), north, Privilege::Read),
                StoreArg::new(StoreId(1), Partition::block(vec![1]), Privilege::Read),
            ],
            4,
        );
        assert!(fusible_ground_truth(&t1, &t2, &shapes));
    }

    #[test]
    fn reductions_to_same_view_do_not_conflict() {
        let shapes = shapes(&[(0, vec![1])]);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(
                StoreId(0),
                Partition::Replicate,
                Privilege::Reduce(crate::ReductionOp::Sum),
            )],
            4,
        );
        let t2 = t1.clone();
        assert!(fusible_ground_truth(&t1, &t2, &shapes));
    }

    #[test]
    fn reduce_then_read_conflicts() {
        let shapes = shapes(&[(0, vec![1])]);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(
                StoreId(0),
                Partition::Replicate,
                Privilege::Reduce(crate::ReductionOp::Sum),
            )],
            4,
        );
        let t2 = simple_task(
            1,
            vec![StoreArg::new(StoreId(0), Partition::Replicate, Privilege::Read)],
            4,
        );
        assert!(!fusible_ground_truth(&t1, &t2, &shapes));
    }

    #[test]
    fn disjoint_stores_never_depend() {
        let shapes = shapes(&[(0, vec![8]), (1, vec![8])]);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(StoreId(0), Partition::block(vec![2]), Privilege::Write)],
            4,
        );
        let t2 = simple_task(
            1,
            vec![StoreArg::new(StoreId(1), Partition::block(vec![2]), Privilege::Write)],
            4,
        );
        assert!(fusible_ground_truth(&t1, &t2, &shapes));
        assert!(!dep(&t1, &[0], &t2, &[0], &shapes));
    }

    #[test]
    fn different_launch_domains_with_no_deps_are_ok() {
        let shapes = shapes(&[(0, vec![8]), (1, vec![8])]);
        let t1 = simple_task(
            0,
            vec![StoreArg::new(StoreId(0), Partition::block(vec![2]), Privilege::Write)],
            4,
        );
        let t2 = simple_task(
            1,
            vec![StoreArg::new(StoreId(1), Partition::block(vec![4]), Privilege::Write)],
            2,
        );
        assert!(fusible_ground_truth(&t1, &t2, &shapes));
    }
}
