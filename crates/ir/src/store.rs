//! Stores: distributed arrays in the data model.

/// Unique identifier of a store (a distributed array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreId(pub u64);

impl std::fmt::Display for StoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Metadata describing a store: its shape and element size.
///
/// The store's *contents* live in the runtime layer; the IR only needs shapes
/// to compute sub-store bounds and sizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreInfo {
    /// The store's identifier.
    pub id: StoreId,
    /// Rectangular shape (exclusive upper bound per dimension).
    pub shape: Vec<u64>,
    /// Size in bytes of each element.
    pub elem_size: u64,
    /// Human-readable name for debugging and profiles.
    pub name: String,
}

impl StoreInfo {
    /// Creates store metadata.
    pub fn new(id: StoreId, shape: Vec<u64>, elem_size: u64, name: impl Into<String>) -> Self {
        StoreInfo {
            id,
            shape,
            elem_size,
            name: name.into(),
        }
    }

    /// Number of elements in the store.
    pub fn volume(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Total size of the store in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.volume() * self.elem_size
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_info_volume_and_bytes() {
        let s = StoreInfo::new(StoreId(3), vec![4, 8], 8, "grid");
        assert_eq!(s.volume(), 32);
        assert_eq!(s.size_bytes(), 256);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.name, "grid");
    }

    #[test]
    fn store_id_display() {
        assert_eq!(StoreId(7).to_string(), "S7");
    }

    #[test]
    fn scalar_store() {
        let s = StoreInfo::new(StoreId(0), vec![1], 8, "alpha");
        assert_eq!(s.volume(), 1);
        assert_eq!(s.size_bytes(), 8);
    }
}
