//! Buffered windows of index tasks awaiting analysis, with incremental
//! structural fingerprints.
//!
//! The memoization layer (Section 5.2, Figure 7) replays analysis results on
//! *isomorphic* windows — windows that differ only in store identities. To
//! make the steady-state lookup allocation-free, the window maintains a
//! 64-bit **structural fingerprint** of the De-Bruijn-canonicalized task
//! stream *incrementally*: each [`TaskWindow::push`] folds the new task into
//! a rolling hash, so probing the memo cache at flush time never walks the
//! buffered tasks to build a lookup key. The fingerprint of every prefix
//! length is retained (O(1) [`TaskWindow::prefix_fingerprint`], one `u64`
//! per task), so prefix-granular probes stay cheap too; draining a prefix
//! does refold the remaining suffix, since the canonical numbering restarts
//! at the new window head.

use std::collections::HashMap;

use crate::store::StoreId;
use crate::task::IndexTask;

/// Seed of the rolling fingerprint (an arbitrary odd constant).
const FINGERPRINT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Incremental De-Bruijn canonicalization + rolling hash over a task stream.
///
/// Stores are replaced by their first-occurrence index (so isomorphic streams
/// hash identically); partitions and shapes enter through their interner ids
/// (structural identity). The state is the **single source of truth** for
/// window fingerprints: [`TaskWindow`] folds tasks through it as they are
/// pushed, and the fusion crate's canonical windows recompute through the
/// same code, so the two can never diverge.
///
/// # Example
///
/// ```
/// use ir::{window_fingerprint, Domain, IndexTask, Partition, Privilege, StoreArg, StoreId, TaskId};
///
/// let t = |s: u64| IndexTask::new(
///     TaskId(0), 0, "t", Domain::linear(4),
///     vec![StoreArg::new(StoreId(s), Partition::block(vec![4]), Privilege::Write)],
///     vec![],
/// );
/// // Isomorphic streams (same pattern, different store ids) share a fingerprint.
/// assert_eq!(window_fingerprint(&[t(1)]), window_fingerprint(&[t(7)]));
/// ```
#[derive(Debug, Clone)]
pub struct FingerprintState {
    fingerprint: u64,
    numbering: HashMap<StoreId, u32>,
    order: Vec<StoreId>,
}

impl Default for FingerprintState {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintState {
    /// Creates an empty state (fingerprint of the empty stream).
    pub fn new() -> Self {
        FingerprintState {
            fingerprint: FINGERPRINT_SEED,
            numbering: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// The fingerprint of the stream folded so far.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of distinct stores seen so far.
    pub fn num_stores(&self) -> usize {
        self.order.len()
    }

    /// The store assigned canonical index `idx`, if any.
    pub fn store_at(&self, idx: usize) -> Option<StoreId> {
        self.order.get(idx).copied()
    }

    /// Clears the state back to the empty stream, retaining allocations.
    pub fn reset(&mut self) {
        self.fingerprint = FINGERPRINT_SEED;
        self.numbering.clear();
        self.order.clear();
    }

    /// Folds one task into the rolling fingerprint, returning the new value.
    /// Performs no heap allocation beyond amortized growth of the store
    /// numbering.
    pub fn push(&mut self, task: &IndexTask) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        task.kind.hash(&mut h);
        task.launch_domain.hash(&mut h);
        task.scalars.len().hash(&mut h);
        task.args.len().hash(&mut h);
        for arg in &task.args {
            let idx = match self.numbering.get(&arg.store) {
                Some(&i) => i,
                None => {
                    let i = self.order.len() as u32;
                    self.numbering.insert(arg.store, i);
                    self.order.push(arg.store);
                    // The shape of a store enters the fingerprint at its
                    // first occurrence, mirroring the canonical window's
                    // per-store shape list.
                    arg.shape.hash(&mut h);
                    i
                }
            };
            idx.hash(&mut h);
            arg.partition.hash(&mut h);
            arg.privilege.hash(&mut h);
        }
        self.fingerprint = splitmix64(self.fingerprint ^ h.finish());
        self.fingerprint()
    }
}

/// Fingerprint of a whole task stream in one pass (the batch counterpart of
/// [`FingerprintState`]; both run the same folding code).
pub fn window_fingerprint(tasks: &[IndexTask]) -> u64 {
    let mut state = FingerprintState::new();
    for t in tasks {
        state.push(t);
    }
    state.fingerprint()
}

/// A FIFO window of index tasks that have been submitted by the application
/// but not yet analyzed and forwarded to the underlying runtime (Section 4).
///
/// The window maintains the rolling structural fingerprint of every prefix
/// (see [`FingerprintState`]); [`TaskWindow::fingerprint`] is O(1) at any
/// point, which is what makes the memoization fast path allocation-free.
#[derive(Debug, Clone)]
pub struct TaskWindow {
    tasks: Vec<IndexTask>,
    /// `fingerprints[i]` is the fingerprint of the first `i` tasks
    /// (`fingerprints[0]` is the empty-stream seed).
    fingerprints: Vec<u64>,
    state: FingerprintState,
}

impl Default for TaskWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        TaskWindow {
            tasks: Vec::new(),
            fingerprints: vec![FingerprintState::new().fingerprint()],
            state: FingerprintState::new(),
        }
    }

    /// Appends a task to the window, extending the rolling fingerprint.
    pub fn push(&mut self, task: IndexTask) {
        let fp = self.state.push(&task);
        self.fingerprints.push(fp);
        self.tasks.push(task);
    }

    /// Number of buffered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The buffered tasks in program order.
    pub fn tasks(&self) -> &[IndexTask] {
        &self.tasks
    }

    /// The structural fingerprint of the whole buffered window. O(1): the
    /// value is maintained incrementally as tasks are pushed.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprints.last().expect("fingerprints[0] is the seed")
    }

    /// The structural fingerprint of the first `len` buffered tasks. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the window length.
    pub fn prefix_fingerprint(&self, len: usize) -> u64 {
        self.fingerprints[len]
    }

    /// The store assigned canonical (first-occurrence) index `idx` by the
    /// window's De-Bruijn numbering.
    pub fn canonical_store(&self, idx: usize) -> Option<StoreId> {
        self.state.store_at(idx)
    }

    /// Removes and returns the first `n` tasks. The fingerprints of the
    /// remaining suffix are recomputed (the canonical numbering restarts at
    /// the new window head), reusing the existing allocations.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the window length.
    pub fn drain_prefix(&mut self, n: usize) -> Vec<IndexTask> {
        assert!(n <= self.tasks.len(), "cannot drain more tasks than buffered");
        let prefix: Vec<IndexTask> = self.tasks.drain(..n).collect();
        self.refold();
        prefix
    }

    /// Replaces the buffered tasks with a permutation of themselves (the
    /// horizontal fusion pass reorders the window before the vertical
    /// analysis) and recomputes the rolling fingerprints for the new order.
    /// The canonical store numbering restarts from the permuted stream, so
    /// memo probes after a reorder key on the permuted canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` does not have the same length as the window; debug
    /// builds additionally check that the task-id multiset is unchanged.
    pub fn reorder(&mut self, tasks: Vec<IndexTask>) {
        assert_eq!(
            tasks.len(),
            self.tasks.len(),
            "reorder must preserve the buffered task count"
        );
        #[cfg(debug_assertions)]
        {
            let mut before: Vec<u64> = self.tasks.iter().map(|t| t.id.0).collect();
            let mut after: Vec<u64> = tasks.iter().map(|t| t.id.0).collect();
            before.sort_unstable();
            after.sort_unstable();
            debug_assert_eq!(before, after, "reorder must be a permutation of the window");
        }
        self.tasks = tasks;
        self.refold();
    }

    /// Removes and returns all buffered tasks.
    pub fn drain_all(&mut self) -> Vec<IndexTask> {
        let all = std::mem::take(&mut self.tasks);
        self.refold();
        all
    }

    /// Recomputes the rolling fingerprints for the current task contents.
    fn refold(&mut self) {
        let TaskWindow {
            tasks,
            fingerprints,
            state,
        } = self;
        state.reset();
        fingerprints.clear();
        fingerprints.push(state.fingerprint());
        for t in tasks.iter() {
            fingerprints.push(state.push(t));
        }
    }

}

impl FromIterator<IndexTask> for TaskWindow {
    fn from_iter<T: IntoIterator<Item = IndexTask>>(iter: T) -> Self {
        let mut w = TaskWindow::new();
        w.extend(iter);
        w
    }
}

impl Extend<IndexTask> for TaskWindow {
    fn extend<T: IntoIterator<Item = IndexTask>>(&mut self, iter: T) {
        for t in iter {
            self.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Partition, Privilege, StoreArg, StoreId, TaskId};

    fn task(id: u64) -> IndexTask {
        IndexTask::new(TaskId(id), 0, "t", Domain::linear(1), vec![], vec![])
    }

    fn rw(id: u64, read: u64, write: u64) -> IndexTask {
        IndexTask::new(
            TaskId(id),
            0,
            "t",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(read), Partition::block(vec![4]), Privilege::Read),
                StoreArg::new(StoreId(write), Partition::block(vec![4]), Privilege::Write),
            ],
            vec![],
        )
    }

    #[test]
    fn push_and_drain_prefix() {
        let mut w = TaskWindow::new();
        assert!(w.is_empty());
        for i in 0..5 {
            w.push(task(i));
        }
        assert_eq!(w.len(), 5);
        let prefix = w.drain_prefix(2);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[0].id, TaskId(0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.tasks()[0].id, TaskId(2));
    }

    #[test]
    fn drain_all_empties_window() {
        let mut w: TaskWindow = (0..3).map(task).collect();
        let all = w.drain_all();
        assert_eq!(all.len(), 3);
        assert!(w.is_empty());
        assert_eq!(w.fingerprint(), window_fingerprint(&[]));
    }

    #[test]
    fn extend_appends() {
        let mut w = TaskWindow::new();
        w.extend((0..2).map(task));
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic]
    fn drain_too_many_panics() {
        let mut w = TaskWindow::new();
        w.push(task(0));
        let _ = w.drain_prefix(2);
    }

    #[test]
    fn rolling_fingerprint_matches_batch() {
        let mut w = TaskWindow::new();
        let stream = [rw(0, 1, 2), rw(1, 2, 3), rw(2, 3, 1)];
        for t in stream.clone() {
            w.push(t);
        }
        assert_eq!(w.fingerprint(), window_fingerprint(&stream));
        assert_eq!(w.prefix_fingerprint(2), window_fingerprint(&stream[..2]));
        assert_eq!(w.prefix_fingerprint(0), window_fingerprint(&[]));
    }

    #[test]
    fn drain_recomputes_suffix_fingerprint() {
        let mut w = TaskWindow::new();
        let stream = [rw(0, 1, 2), rw(1, 2, 3), rw(2, 3, 1)];
        for t in stream.clone() {
            w.push(t);
        }
        let _ = w.drain_prefix(1);
        // The suffix, canonicalized as a fresh window, must match a batch
        // fingerprint of the same tasks.
        assert_eq!(w.fingerprint(), window_fingerprint(&stream[1..]));
        // And further pushes keep extending consistently.
        w.push(rw(3, 5, 6));
        let mut expected: Vec<IndexTask> = stream[1..].to_vec();
        expected.push(rw(3, 5, 6));
        assert_eq!(w.fingerprint(), window_fingerprint(&expected));
    }

    #[test]
    fn isomorphic_windows_share_fingerprints() {
        let a = [rw(0, 1, 2), rw(1, 2, 1)];
        let b = [rw(7, 5, 6), rw(9, 6, 5)];
        let c = [rw(0, 1, 2), rw(1, 1, 2)]; // different access pattern
        assert_eq!(window_fingerprint(&a), window_fingerprint(&b));
        assert_ne!(window_fingerprint(&a), window_fingerprint(&c));
    }

    #[test]
    fn reorder_refolds_fingerprints_for_the_new_order() {
        let mut w = TaskWindow::new();
        let stream = [rw(0, 1, 2), rw(1, 3, 4), rw(2, 5, 6)];
        for t in stream.clone() {
            w.push(t);
        }
        let permuted = vec![stream[2].clone(), stream[0].clone(), stream[1].clone()];
        w.reorder(permuted.clone());
        assert_eq!(w.fingerprint(), window_fingerprint(&permuted));
        assert_eq!(w.tasks()[0].id, TaskId(2));
        // Canonical numbering restarts from the permuted head.
        assert_eq!(w.canonical_store(0), Some(StoreId(5)));
        // Subsequent pushes extend the permuted stream consistently.
        w.push(rw(3, 7, 8));
        let mut expected = permuted;
        expected.push(rw(3, 7, 8));
        assert_eq!(w.fingerprint(), window_fingerprint(&expected));
    }

    #[test]
    #[should_panic]
    fn reorder_with_wrong_length_panics() {
        let mut w = TaskWindow::new();
        w.push(rw(0, 1, 2));
        w.reorder(vec![]);
    }

    #[test]
    fn canonical_store_tracks_first_occurrence() {
        let mut w = TaskWindow::new();
        w.push(rw(0, 4, 9));
        assert_eq!(w.canonical_store(0), Some(StoreId(4)));
        assert_eq!(w.canonical_store(1), Some(StoreId(9)));
        assert_eq!(w.canonical_store(2), None);
    }
}
