//! Buffered windows of index tasks awaiting analysis.

use crate::task::IndexTask;

/// A FIFO window of index tasks that have been submitted by the application
/// but not yet analyzed and forwarded to the underlying runtime (Section 4).
#[derive(Debug, Clone, Default)]
pub struct TaskWindow {
    tasks: Vec<IndexTask>,
}

impl TaskWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        TaskWindow { tasks: Vec::new() }
    }

    /// Appends a task to the window.
    pub fn push(&mut self, task: IndexTask) {
        self.tasks.push(task);
    }

    /// Number of buffered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The buffered tasks in program order.
    pub fn tasks(&self) -> &[IndexTask] {
        &self.tasks
    }

    /// Removes and returns the first `n` tasks.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the window length.
    pub fn drain_prefix(&mut self, n: usize) -> Vec<IndexTask> {
        assert!(n <= self.tasks.len(), "cannot drain more tasks than buffered");
        self.tasks.drain(..n).collect()
    }

    /// Removes and returns all buffered tasks.
    pub fn drain_all(&mut self) -> Vec<IndexTask> {
        std::mem::take(&mut self.tasks)
    }
}

impl FromIterator<IndexTask> for TaskWindow {
    fn from_iter<T: IntoIterator<Item = IndexTask>>(iter: T) -> Self {
        TaskWindow {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<IndexTask> for TaskWindow {
    fn extend<T: IntoIterator<Item = IndexTask>>(&mut self, iter: T) {
        self.tasks.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, TaskId};

    fn task(id: u64) -> IndexTask {
        IndexTask::new(TaskId(id), 0, "t", Domain::linear(1), vec![], vec![])
    }

    #[test]
    fn push_and_drain_prefix() {
        let mut w = TaskWindow::new();
        assert!(w.is_empty());
        for i in 0..5 {
            w.push(task(i));
        }
        assert_eq!(w.len(), 5);
        let prefix = w.drain_prefix(2);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[0].id, TaskId(0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.tasks()[0].id, TaskId(2));
    }

    #[test]
    fn drain_all_empties_window() {
        let mut w: TaskWindow = (0..3).map(task).collect();
        let all = w.drain_all();
        assert_eq!(all.len(), 3);
        assert!(w.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut w = TaskWindow::new();
        w.extend((0..2).map(task));
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic]
    fn drain_too_many_panics() {
        let mut w = TaskWindow::new();
        w.push(task(0));
        let _ = w.drain_prefix(2);
    }
}
