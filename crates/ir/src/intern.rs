//! Hash-consed interning of partitions and store shapes.
//!
//! The fusion analysis compares partitions constantly (the scale-free alias
//! check) and the memoization layer hashes whole windows of them. Carrying
//! owned [`Partition`] values through every [`crate::StoreArg`] made those
//! comparisons structural walks and every task clone a round of heap
//! allocations. Interning replaces the owned values with small `Copy` ids:
//!
//! * [`PartitionId`] — a hash-consed [`Partition`]. Two ids are equal **iff**
//!   the partitions are structurally equal, so the fusion constraints' alias
//!   check is a register compare. The id dereferences to the interned
//!   partition for the few scale-aware operations (`sub_store_bounds`,
//!   `covers`) that need the structure.
//! * [`ShapeId`] — an interned store shape (`[u64]`). Stamped onto task
//!   arguments by the Diffuse context so the analysis (canonicalization,
//!   temporary-store elimination) never needs a side `StoreId -> shape` map.
//!
//! Interned values are leaked into the process (the interner is append-only;
//! handed-out ids and `&'static` references must stay valid forever). The
//! footprint is bounded by the number of *distinct* partition/shape
//! structures, which is independent of iteration count — but note it is
//! data-dependent: a service that keeps creating stores of brand-new sizes
//! interns one entry per distinct size. If that ever matters, the fix is an
//! epoch/generation scheme, not per-entry eviction (see ROADMAP).
//!
//! # Example
//!
//! ```
//! use ir::{Partition, PartitionId};
//!
//! let a = PartitionId::intern(&Partition::block(vec![8]));
//! let b: PartitionId = Partition::block(vec![8]).into();
//! assert_eq!(a, b, "structural equality is id equality");
//! assert!(!a.may_alias_across_points(), "ids deref to the partition");
//! ```

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

use crate::partition::Partition;

/// Append-only interner state: dedup map plus id-indexed storage.
struct Interner<T: ?Sized + 'static> {
    map: HashMap<&'static T, u32>,
    items: Vec<&'static T>,
}

impl<T: ?Sized + 'static> Interner<T> {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            items: Vec::new(),
        }
    }
}

fn partitions() -> &'static RwLock<Interner<Partition>> {
    static CELL: OnceLock<RwLock<Interner<Partition>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Interner::new()))
}

fn shapes() -> &'static RwLock<Interner<[u64]>> {
    static CELL: OnceLock<RwLock<Interner<[u64]>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Interner::new()))
}

/// A hash-consed [`Partition`]: a small `Copy` id whose equality coincides
/// with structural partition equality (the constant-time alias check of
/// Section 4). Dereferences to the interned partition.
///
/// # Example
///
/// ```
/// use ir::{Partition, PartitionId};
///
/// let block = PartitionId::intern(&Partition::block(vec![4]));
/// assert_eq!(block, Partition::block(vec![4]));
/// assert_ne!(block, PartitionId::intern(&Partition::Replicate));
/// assert_eq!(block.sub_store_bounds(&[8], &[1]).volume(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(u32);

impl PartitionId {
    /// Interns a partition, returning its id. Interning the same structure
    /// twice returns the same id.
    pub fn intern(partition: &Partition) -> PartitionId {
        let lock = partitions();
        if let Some(&id) = lock.read().unwrap().map.get(partition) {
            return PartitionId(id);
        }
        let mut w = lock.write().unwrap();
        if let Some(&id) = w.map.get(partition) {
            return PartitionId(id);
        }
        let leaked: &'static Partition = Box::leak(Box::new(partition.clone()));
        let id = u32::try_from(w.items.len()).expect("partition interner overflow");
        w.items.push(leaked);
        w.map.insert(leaked, id);
        PartitionId(id)
    }

    /// The interned partition.
    pub fn get(self) -> &'static Partition {
        partitions().read().unwrap().items[self.0 as usize]
    }

    /// The raw interner index (stable for the lifetime of the process; used
    /// by fingerprinting).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl Deref for PartitionId {
    type Target = Partition;

    fn deref(&self) -> &Partition {
        self.get()
    }
}

impl From<Partition> for PartitionId {
    fn from(p: Partition) -> PartitionId {
        PartitionId::intern(&p)
    }
}

impl From<&Partition> for PartitionId {
    fn from(p: &Partition) -> PartitionId {
        PartitionId::intern(p)
    }
}

impl PartialEq<Partition> for PartitionId {
    fn eq(&self, other: &Partition) -> bool {
        self.get() == other
    }
}

impl PartialEq<PartitionId> for Partition {
    fn eq(&self, other: &PartitionId) -> bool {
        self == other.get()
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

/// An interned store shape: a small `Copy` id standing for a `[u64]` of
/// per-dimension extents. [`ShapeId::UNKNOWN`] marks an argument whose shape
/// has not been stamped yet (the Diffuse context stamps shapes at submit
/// time); dereferencing it panics.
///
/// # Example
///
/// ```
/// use ir::ShapeId;
///
/// let s = ShapeId::intern(&[4, 8]);
/// assert_eq!(&*s, &[4, 8]);
/// assert_eq!(s, ShapeId::intern(&[4, 8]));
/// assert!(ShapeId::UNKNOWN.is_unknown());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(u32);

impl ShapeId {
    /// The not-yet-stamped sentinel. Equal only to itself; dereferencing
    /// panics.
    pub const UNKNOWN: ShapeId = ShapeId(u32::MAX);

    /// Interns a shape, returning its id. Only clones the slice on first
    /// interning.
    pub fn intern(shape: &[u64]) -> ShapeId {
        let lock = shapes();
        if let Some(&id) = lock.read().unwrap().map.get(shape) {
            return ShapeId(id);
        }
        let mut w = lock.write().unwrap();
        if let Some(&id) = w.map.get(shape) {
            return ShapeId(id);
        }
        let leaked: &'static [u64] = Box::leak(shape.to_vec().into_boxed_slice());
        let id = u32::try_from(w.items.len()).expect("shape interner overflow");
        assert_ne!(id, u32::MAX, "shape interner overflow");
        w.items.push(leaked);
        w.map.insert(leaked, id);
        ShapeId(id)
    }

    /// The interned shape.
    ///
    /// # Panics
    ///
    /// Panics on [`ShapeId::UNKNOWN`] (an argument whose shape was never
    /// stamped).
    pub fn get(self) -> &'static [u64] {
        assert!(
            !self.is_unknown(),
            "store shape was never stamped (ShapeId::UNKNOWN)"
        );
        shapes().read().unwrap().items[self.0 as usize]
    }

    /// The interned shape as a slice (alias of [`ShapeId::get`]).
    pub fn as_slice(self) -> &'static [u64] {
        self.get()
    }

    /// Whether this is the not-yet-stamped sentinel.
    pub fn is_unknown(self) -> bool {
        self.0 == u32::MAX
    }

    /// The raw interner index (used by fingerprinting).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl Deref for ShapeId {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.get()
    }
}

impl From<Vec<u64>> for ShapeId {
    fn from(shape: Vec<u64>) -> ShapeId {
        ShapeId::intern(&shape)
    }
}

impl From<&[u64]> for ShapeId {
    fn from(shape: &[u64]) -> ShapeId {
        ShapeId::intern(shape)
    }
}

impl std::fmt::Display for ShapeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unknown() {
            write!(f, "shape(?)")
        } else {
            write!(f, "shape{:?}", self.get())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Projection;

    #[test]
    fn partition_interning_dedups() {
        let a = PartitionId::intern(&Partition::block(vec![2, 2]));
        let b = PartitionId::from(Partition::block(vec![2, 2]));
        let c = PartitionId::intern(&Partition::tiling(
            vec![2, 2],
            vec![0, 1],
            Projection::Identity,
        ));
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_ne!(a, c);
        assert_eq!(a, Partition::block(vec![2, 2]));
        assert_eq!(Partition::block(vec![2, 2]), a);
        assert_ne!(a, Partition::Replicate);
    }

    #[test]
    fn partition_id_derefs_to_structure() {
        let p = PartitionId::intern(&Partition::Replicate);
        assert!(p.is_replicate());
        assert!(p.may_alias_across_points());
        assert_eq!(p.to_string(), "Replicate");
    }

    #[test]
    fn shape_interning_dedups_and_derefs() {
        let a = ShapeId::intern(&[16]);
        let b: ShapeId = vec![16u64].into();
        assert_eq!(a, b);
        assert_eq!(a.as_slice(), &[16]);
        assert_eq!(a.iter().product::<u64>(), 16);
        assert_ne!(a, ShapeId::intern(&[64]));
        assert!(a.to_string().contains("16"));
    }

    #[test]
    fn unknown_shape_is_distinct() {
        assert!(ShapeId::UNKNOWN.is_unknown());
        assert_ne!(ShapeId::UNKNOWN, ShapeId::intern(&[1]));
        assert_eq!(ShapeId::UNKNOWN.to_string(), "shape(?)");
    }

    #[test]
    #[should_panic]
    fn unknown_shape_deref_panics() {
        let _ = ShapeId::UNKNOWN.get();
    }
}
