//! First-class, structured partitions of stores.
//!
//! Partitions map points of a launch domain to sub-stores (Figure 3). The two
//! kinds from the paper are implemented: replication (`None` in the paper,
//! [`Partition::Replicate`] here to avoid clashing with `Option::None`) and
//! affine tilings with projection functions. The critical property is that two
//! partitions can be compared for equality (the conservative alias check used
//! by the fusion constraints) in constant time, without enumerating
//! sub-stores.

use crate::domain::{Point, Rect};

/// A projection function applied to a launch-domain point before the tile
/// bounds are computed (Figure 3d–3e).
///
/// Projections are represented structurally so that equality is syntactic and
/// constant-time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Projection {
    /// The identity projection.
    Identity,
    /// Keep only the listed dimensions of the point, in order. For example
    /// `SelectDims([0])` maps `(i, j)` to `(i,)`, producing a partition of a
    /// vector that is aliased along the second launch-domain dimension.
    SelectDims(Vec<usize>),
    /// Map every point to a fixed point (full aliasing).
    Constant(Point),
    /// Pad the point with trailing zeros up to `rank` dimensions, e.g. mapping
    /// `(g,)` to `(g, 0)`. Used to tile a 2-D store by row blocks over a 1-D
    /// launch domain. This projection is injective, so the resulting tiling is
    /// still disjoint across points.
    PadZeros {
        /// Target rank of the projected point.
        rank: usize,
    },
}

impl Projection {
    /// Applies the projection to a point.
    pub fn apply(&self, point: &[i64]) -> Point {
        match self {
            Projection::Identity => point.to_vec(),
            Projection::SelectDims(dims) => dims.iter().map(|&d| point[d]).collect(),
            Projection::Constant(p) => p.clone(),
            Projection::PadZeros { rank } => {
                let mut p = point.to_vec();
                p.resize(*rank, 0);
                p
            }
        }
    }

    /// The rank of the projected point given an input of rank `input_rank`.
    pub fn output_rank(&self, input_rank: usize) -> usize {
        match self {
            Projection::Identity => input_rank,
            Projection::SelectDims(dims) => dims.len(),
            Projection::Constant(p) => p.len(),
            Projection::PadZeros { rank } => *rank,
        }
    }

    /// Whether the projection is injective (distinct points map to distinct
    /// projected points). Injective projections keep tilings disjoint across
    /// launch-domain points.
    pub fn is_injective(&self) -> bool {
        matches!(self, Projection::Identity | Projection::PadZeros { .. })
    }
}

/// A partition of a store: a scale-free mapping from launch-domain points to
/// sub-stores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Every point maps to the entire store (the paper's `None` partition).
    Replicate,
    /// An affine tiling: point `p` maps to the rectangle
    /// `[proj(p) * tile, proj(p + 1) * tile) + offset`, clamped to the store
    /// bounds (Figure 3e).
    Tiling {
        /// Shape of each tile.
        tile: Vec<u64>,
        /// Offset of the tiling from the store origin.
        offset: Vec<i64>,
        /// Projection applied to launch-domain points.
        proj: Projection,
    },
}

impl Partition {
    /// Convenience constructor for a tiling partition.
    pub fn tiling(tile: Vec<u64>, offset: Vec<i64>, proj: Projection) -> Self {
        assert_eq!(
            tile.len(),
            offset.len(),
            "tile shape and offset must have the same rank"
        );
        Partition::Tiling { tile, offset, proj }
    }

    /// An identity-projection tiling with zero offset: the standard block
    /// decomposition used by the dense library.
    pub fn block(tile: Vec<u64>) -> Self {
        let offset = vec![0; tile.len()];
        Partition::tiling(tile, offset, Projection::Identity)
    }

    /// Whether this is the replicated partition.
    pub fn is_replicate(&self) -> bool {
        matches!(self, Partition::Replicate)
    }

    /// Whether two *different* launch-domain points may map to overlapping
    /// sub-stores. Replication and tilings with non-identity projection
    /// functions alias across points; identity tilings are disjoint.
    ///
    /// The fusion constraints use this: a write through a partition that
    /// aliases across points can never be part of a point-wise dependence with
    /// a later access, even through the identical partition.
    pub fn may_alias_across_points(&self) -> bool {
        match self {
            Partition::Replicate => true,
            Partition::Tiling { proj, .. } => !proj.is_injective(),
        }
    }

    /// Computes the sub-store bounds for launch-domain point `point` of a
    /// store with shape `store_shape` (Figure 3e). The result is clamped to
    /// the store bounds and may be empty for points that fall outside the
    /// store.
    pub fn sub_store_bounds(&self, store_shape: &[u64], point: &[i64]) -> Rect {
        let store_rect = Rect::new(
            vec![0; store_shape.len()],
            store_shape.iter().map(|&s| s as i64).collect(),
        );
        match self {
            Partition::Replicate => store_rect,
            Partition::Tiling { tile, offset, proj } => {
                let p = proj.apply(point);
                let p_next: Point = p.iter().map(|&x| x + 1).collect();
                assert_eq!(
                    p.len(),
                    tile.len(),
                    "projected point rank must match tile rank"
                );
                let lo: Vec<i64> = p
                    .iter()
                    .zip(tile)
                    .zip(offset)
                    .map(|((&pi, &ti), &oi)| pi * ti as i64 + oi)
                    .collect();
                let hi: Vec<i64> = p_next
                    .iter()
                    .zip(tile)
                    .zip(offset)
                    .map(|((&pi, &ti), &oi)| pi * ti as i64 + oi)
                    .collect();
                Rect::new(lo, hi).intersect(&store_rect)
            }
        }
    }

    /// Whether the partition covers every element of a store with shape
    /// `store_shape` when launched over `launch_domain` — the `covers`
    /// predicate used by temporary-store elimination (Definition 4).
    pub fn covers(&self, store_shape: &[u64], launch_domain: &crate::Domain) -> bool {
        match self {
            Partition::Replicate => true,
            Partition::Tiling { .. } => {
                let total: u64 = store_shape.iter().product();
                let mut covered: u64 = 0;
                // Tilings produced by the libraries are disjoint; summing
                // clamped tile volumes is exact for disjoint tiles and a safe
                // underestimate otherwise (covers() may return false
                // negatives, never false positives, for aliased tilings this
                // conservative answer is acceptable).
                let mut rects: Vec<Rect> = Vec::new();
                for p in launch_domain.points() {
                    let r = self.sub_store_bounds(store_shape, &p);
                    if rects.iter().any(|prev| prev.overlaps(&r)) {
                        return false;
                    }
                    covered += r.volume();
                    rects.push(r);
                }
                covered == total
            }
        }
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partition::Replicate => write!(f, "Replicate"),
            Partition::Tiling { tile, offset, proj } => {
                write!(f, "Tiling(tile={tile:?}, offset={offset:?}, proj={proj:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    #[test]
    fn projection_apply() {
        assert_eq!(Projection::Identity.apply(&[1, 2]), vec![1, 2]);
        assert_eq!(Projection::SelectDims(vec![0]).apply(&[1, 2]), vec![1]);
        assert_eq!(Projection::SelectDims(vec![1, 0]).apply(&[1, 2]), vec![2, 1]);
        assert_eq!(Projection::Constant(vec![0]).apply(&[5, 7]), vec![0]);
        assert_eq!(Projection::Identity.output_rank(3), 3);
        assert_eq!(Projection::SelectDims(vec![0]).output_rank(2), 1);
        assert_eq!(Projection::Constant(vec![0, 0]).output_rank(1), 2);
    }

    #[test]
    fn figure3a_2x2_tiling_of_4x4_store() {
        // 2x2 tiles of a 4x4 store over a (2,2) domain.
        let p = Partition::block(vec![2, 2]);
        assert_eq!(
            p.sub_store_bounds(&[4, 4], &[0, 0]),
            Rect::new(vec![0, 0], vec![2, 2])
        );
        assert_eq!(
            p.sub_store_bounds(&[4, 4], &[1, 1]),
            Rect::new(vec![2, 2], vec![4, 4])
        );
        assert!(p.covers(&[4, 4], &Domain::new(vec![2, 2])));
    }

    #[test]
    fn figure3b_row_tiling() {
        // 1x4 tiles of a 4x4 store over a (4,1) domain.
        let p = Partition::block(vec![1, 4]);
        assert_eq!(
            p.sub_store_bounds(&[4, 4], &[2, 0]),
            Rect::new(vec![2, 0], vec![3, 4])
        );
        assert!(p.covers(&[4, 4], &Domain::new(vec![4, 1])));
    }

    #[test]
    fn figure3c_offset_tiling() {
        // 1x1 tiles offset by (1,1): sub-stores sit in the interior.
        let p = Partition::tiling(vec![1, 1], vec![1, 1], Projection::Identity);
        assert_eq!(
            p.sub_store_bounds(&[4, 4], &[0, 0]),
            Rect::new(vec![1, 1], vec![2, 2])
        );
        // Offset tilings do not cover the store.
        assert!(!p.covers(&[4, 4], &Domain::new(vec![2, 2])));
    }

    #[test]
    fn figure3d_aliased_projection_tiling() {
        // A length-4 vector tiled over a (2,2) domain with a projection that
        // drops the second dimension: points (i, 0) and (i, 1) alias.
        let p = Partition::tiling(vec![2], vec![0], Projection::SelectDims(vec![0]));
        let a = p.sub_store_bounds(&[4], &[1, 0]);
        let b = p.sub_store_bounds(&[4], &[1, 1]);
        assert_eq!(a, b);
        assert_eq!(a, Rect::new(vec![2], vec![4]));
        assert!(!p.covers(&[4], &Domain::new(vec![2, 2])));
    }

    #[test]
    fn replicate_maps_everything() {
        let p = Partition::Replicate;
        assert!(p.is_replicate());
        assert_eq!(
            p.sub_store_bounds(&[8], &[3]),
            Rect::new(vec![0], vec![8])
        );
        assert!(p.covers(&[8], &Domain::linear(4)));
    }

    #[test]
    fn out_of_store_tiles_clamp_to_empty() {
        let p = Partition::block(vec![4]);
        let r = p.sub_store_bounds(&[8], &[5]);
        assert!(r.is_empty());
    }

    #[test]
    fn padzeros_projection_tiles_2d_by_row_blocks() {
        // A (8, 4) store tiled by 2-row blocks over a 1-D launch domain of 4.
        let p = Partition::tiling(vec![2, 4], vec![0, 0], Projection::PadZeros { rank: 2 });
        assert_eq!(
            p.sub_store_bounds(&[8, 4], &[1]),
            Rect::new(vec![2, 0], vec![4, 4])
        );
        assert_eq!(
            p.sub_store_bounds(&[8, 4], &[3]),
            Rect::new(vec![6, 0], vec![8, 4])
        );
        assert!(p.covers(&[8, 4], &Domain::linear(4)));
        assert!(!p.may_alias_across_points());
        assert!(Projection::PadZeros { rank: 2 }.is_injective());
        assert_eq!(Projection::PadZeros { rank: 2 }.apply(&[3]), vec![3, 0]);
        assert_eq!(Projection::PadZeros { rank: 2 }.output_rank(1), 2);
    }

    #[test]
    fn aliasing_across_points() {
        assert!(Partition::Replicate.may_alias_across_points());
        assert!(!Partition::block(vec![4]).may_alias_across_points());
        assert!(!Partition::tiling(vec![4], vec![1], Projection::Identity)
            .may_alias_across_points());
        assert!(Partition::tiling(vec![2], vec![0], Projection::SelectDims(vec![0]))
            .may_alias_across_points());
        assert!(Partition::tiling(vec![2], vec![0], Projection::Constant(vec![0]))
            .may_alias_across_points());
    }

    #[test]
    fn partition_equality_is_the_alias_check() {
        let a = Partition::block(vec![2, 2]);
        let b = Partition::block(vec![2, 2]);
        let c = Partition::tiling(vec![2, 2], vec![0, 1], Projection::Identity);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Partition::Replicate);
    }

    #[test]
    #[should_panic]
    fn tile_offset_rank_mismatch_panics() {
        let _ = Partition::tiling(vec![2, 2], vec![0], Projection::Identity);
    }
}
