//! The dense library context: generator registration and array creation.
//!
//! The dense library is a *peer library* over the Diffuse core: it registers
//! the `dense` [`Library`] namespace on a [`Context`] and submits every
//! operation through the typed launch builder. It holds no special access —
//! any library written against `docs/LIBRARIES.md` composes with it through
//! store handles alone.

use std::rc::Rc;

use diffuse::{Context, Library, StoreHandle, TaskSignature};
use kernel::{BinaryOp, BufferId, BufferRole, KernelModule, LoopBuilder, OpaqueOp, ReduceOp, TaskKind, UnaryOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::array::DArray;

/// Task kinds registered by the dense library, one per operation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Kinds {
    pub add: TaskKind,
    pub sub: TaskKind,
    pub mul: TaskKind,
    pub div: TaskKind,
    pub max: TaskKind,
    pub min: TaskKind,
    pub sqrt: TaskKind,
    pub exp: TaskKind,
    pub ln: TaskKind,
    pub erf: TaskKind,
    pub neg: TaskKind,
    pub abs: TaskKind,
    pub copy: TaskKind,
    pub scalar_mul: TaskKind,
    pub scalar_add: TaskKind,
    pub scalar_pow: TaskKind,
    pub scalar_rsub: TaskKind,
    pub fill: TaskKind,
    pub axpy: TaskKind,
    pub scale_by_store: TaskKind,
    pub dot: TaskKind,
    pub sum: TaskKind,
    pub sum_sq: TaskKind,
    pub gemv: TaskKind,
}

fn binary_generator(op: BinaryOp) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("binary", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let v = b.binary(op, x, y);
        b.store(BufferId(2), v);
        m.push_loop(b.finish());
        m
    }
}

fn unary_generator(op: UnaryOp) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut b = LoopBuilder::new("unary", BufferId(1));
        let x = b.load(BufferId(0));
        let v = b.unary(op, x);
        b.store(BufferId(1), v);
        m.push_loop(b.finish());
        m
    }
}

/// out = f(a, param) where `f` is the given binary operator and `param` is the
/// task's first scalar. `swapped` computes f(param, a) instead.
fn scalar_generator(op: BinaryOp, swapped: bool) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut b = LoopBuilder::new("scalar", BufferId(1));
        let x = b.load(BufferId(0));
        let p = b.param(0);
        let v = if swapped {
            b.binary(op, p, x)
        } else {
            b.binary(op, x, p)
        };
        b.store(BufferId(1), v);
        m.push_loop(b.finish());
        m
    }
}

fn reduce_generator(two_inputs: bool, square: bool) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let nbuf = if two_inputs { 3 } else { 2 };
        let out = BufferId(nbuf - 1);
        let mut m = KernelModule::new(nbuf);
        m.set_role(out, BufferRole::Reduction);
        let mut b = LoopBuilder::new("reduce", BufferId(0));
        let x = b.load(BufferId(0));
        let v = if two_inputs {
            let y = b.load(BufferId(1));
            b.mul(x, y)
        } else if square {
            b.mul(x, x)
        } else {
            x
        };
        b.reduce(out, ReduceOp::Sum, v);
        m.push_loop(b.finish());
        m
    }
}

impl Kinds {
    fn register(lib: &Library) -> Kinds {
        // Signature shorthands: the roles each operation family declares.
        let binary = || TaskSignature::new().read().read().write();
        let unary = || TaskSignature::new().read().write();
        let scalar_op = || TaskSignature::new().read().write().scalars(1);
        Kinds {
            add: lib.register("add", binary(), binary_generator(BinaryOp::Add)),
            sub: lib.register("sub", binary(), binary_generator(BinaryOp::Sub)),
            mul: lib.register("mul", binary(), binary_generator(BinaryOp::Mul)),
            div: lib.register("div", binary(), binary_generator(BinaryOp::Div)),
            max: lib.register("maximum", binary(), binary_generator(BinaryOp::Max)),
            min: lib.register("minimum", binary(), binary_generator(BinaryOp::Min)),
            sqrt: lib.register("sqrt", unary(), unary_generator(UnaryOp::Sqrt)),
            exp: lib.register("exp", unary(), unary_generator(UnaryOp::Exp)),
            ln: lib.register("log", unary(), unary_generator(UnaryOp::Ln)),
            erf: lib.register("erf", unary(), unary_generator(UnaryOp::Erf)),
            neg: lib.register("negative", unary(), unary_generator(UnaryOp::Neg)),
            abs: lib.register("absolute", unary(), unary_generator(UnaryOp::Abs)),
            copy: lib.register("copy", unary(), |_args| {
                let mut m = KernelModule::new(2);
                m.set_role(BufferId(1), BufferRole::Output);
                let mut b = LoopBuilder::new("copy", BufferId(1));
                let x = b.load(BufferId(0));
                b.store(BufferId(1), x);
                m.push_loop(b.finish());
                m
            }),
            scalar_mul: lib.register("scalar_mul", scalar_op(), scalar_generator(BinaryOp::Mul, false)),
            scalar_add: lib.register("scalar_add", scalar_op(), scalar_generator(BinaryOp::Add, false)),
            scalar_pow: lib.register("scalar_pow", scalar_op(), scalar_generator(BinaryOp::Pow, false)),
            scalar_rsub: lib.register("scalar_rsub", scalar_op(), scalar_generator(BinaryOp::Sub, true)),
            fill: lib.register("fill", TaskSignature::new().write().scalars(1), |_args| {
                let mut m = KernelModule::new(1);
                m.set_role(BufferId(0), BufferRole::Output);
                let mut b = LoopBuilder::new("fill", BufferId(0));
                let p = b.param(0);
                b.store(BufferId(0), p);
                m.push_loop(b.finish());
                m
            }),
            // out = a + sign * s * b, with s a scalar store and sign a scalar
            // parameter (the paper's AXPY building block).
            axpy: lib.register(
                "axpy",
                TaskSignature::new().read().read().read().write().scalars(1),
                |_args| {
                    let mut m = KernelModule::new(4);
                    m.set_role(BufferId(3), BufferRole::Output);
                    let mut b = LoopBuilder::new("axpy", BufferId(3));
                    let a = b.load(BufferId(0));
                    let x = b.load(BufferId(1));
                    let s = b.load_scalar(BufferId(2));
                    let sign = b.param(0);
                    let sx = b.mul(s, x);
                    let signed = b.mul(sign, sx);
                    let v = b.add(a, signed);
                    b.store(BufferId(3), v);
                    m.push_loop(b.finish());
                    m
                },
            ),
            // out = s * a with s a scalar store.
            scale_by_store: lib.register("scale_by_store", binary(), |_args| {
                let mut m = KernelModule::new(3);
                m.set_role(BufferId(2), BufferRole::Output);
                let mut b = LoopBuilder::new("scale_by_store", BufferId(2));
                let a = b.load(BufferId(0));
                let s = b.load_scalar(BufferId(1));
                let v = b.mul(a, s);
                b.store(BufferId(2), v);
                m.push_loop(b.finish());
                m
            }),
            dot: lib.register(
                "dot",
                TaskSignature::new().read().read().reduce(),
                reduce_generator(true, false),
            ),
            sum: lib.register(
                "sum",
                TaskSignature::new().read().reduce(),
                reduce_generator(false, false),
            ),
            sum_sq: lib.register(
                "sum_sq",
                TaskSignature::new().read().reduce(),
                reduce_generator(false, true),
            ),
            gemv: lib.register("gemv", binary(), |_args| {
                let mut m = KernelModule::new(3);
                m.set_role(BufferId(2), BufferRole::Output);
                m.push_opaque(OpaqueOp::Gemv {
                    a: BufferId(0),
                    x: BufferId(1),
                    y: BufferId(2),
                });
                m
            }),
        }
    }
}

/// The dense array library: a NumPy-like front end that lowers to Diffuse
/// index tasks.
#[derive(Clone, Debug)]
pub struct DenseContext {
    ctx: Context,
    lib: Library,
    pub(crate) kinds: Rc<Kinds>,
}

impl DenseContext {
    /// Creates the library over a Diffuse context, registering the `dense`
    /// library namespace and its kernel generators.
    pub fn new(ctx: Context) -> Self {
        let lib = ctx.register_library("dense");
        let kinds = Rc::new(Kinds::register(&lib));
        DenseContext { ctx, lib, kinds }
    }

    /// The underlying Diffuse context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The library namespace this context registered.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Wraps a foreign store handle (e.g. one produced by the sparse or
    /// stencil library) into a dense array over its full store — the
    /// handle-based cross-library sharing of Section 2.
    pub fn wrap(&self, handle: StoreHandle) -> DArray {
        DArray::full_store(self.clone(), handle)
    }

    /// Number of GPUs in the simulated machine.
    pub fn gpus(&self) -> u64 {
        self.ctx.gpus() as u64
    }

    /// Creates an array of zeros.
    pub fn zeros(&self, shape: &[u64]) -> DArray {
        let handle = self.ctx.create_store(shape.to_vec(), "zeros");
        // Stores materialize as zeros, so no fill task is needed; this mirrors
        // deferred initialization in cuPyNumeric.
        DArray::full_store(self.clone(), handle)
    }

    /// Creates an array filled with a value (issues a fill task).
    pub fn full(&self, shape: &[u64], value: f64) -> DArray {
        let arr = self.zeros(shape);
        arr.fill(value);
        arr
    }

    /// Creates an array of ones.
    pub fn ones(&self, shape: &[u64]) -> DArray {
        self.full(shape, 1.0)
    }

    /// Creates an array with uniformly random contents in `[0, 1)`
    /// (host-initialized, deterministic in the seed).
    pub fn random(&self, shape: &[u64], seed: u64) -> DArray {
        let arr = self.zeros(shape);
        let volume: u64 = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..volume).map(|_| rng.gen::<f64>()).collect();
        self.ctx.write_store(arr.handle(), data);
        arr
    }

    /// Creates an array from explicit row-major data.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the shape.
    pub fn from_vec(&self, shape: &[u64], data: Vec<f64>) -> DArray {
        assert_eq!(
            data.len() as u64,
            shape.iter().product::<u64>(),
            "data length must match shape"
        );
        let arr = self.zeros(shape);
        self.ctx.write_store(arr.handle(), data);
        arr
    }

    /// Creates a scalar store holding `value`.
    pub fn scalar(&self, value: f64) -> DArray {
        self.from_vec(&[1], vec![value])
    }

    /// Flushes the Diffuse task window (the `flush_window` of Figure 6).
    pub fn flush(&self) {
        self.ctx.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse::DiffuseConfig;
    use machine::MachineConfig;

    fn np() -> DenseContext {
        DenseContext::new(Context::new(DiffuseConfig::fused(MachineConfig::single_node(4))))
    }

    #[test]
    fn creation_helpers() {
        let np = np();
        let z = np.zeros(&[16]);
        assert_eq!(z.to_vec().unwrap(), vec![0.0; 16]);
        let o = np.ones(&[8]);
        assert_eq!(o.to_vec().unwrap(), vec![1.0; 8]);
        let f = np.full(&[4, 4], 2.5);
        assert_eq!(f.to_vec().unwrap(), vec![2.5; 16]);
        let v = np.from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.to_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        let s = np.scalar(7.0);
        assert_eq!(s.scalar_value().unwrap(), 7.0);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let np = np();
        let a = np.random(&[32], 42);
        let b = np.random(&[32], 42);
        let c = np.random(&[32], 7);
        assert_eq!(a.to_vec().unwrap(), b.to_vec().unwrap());
        assert_ne!(a.to_vec().unwrap(), c.to_vec().unwrap());
        assert!(a.to_vec().unwrap().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let np = np();
        let _ = np.from_vec(&[4], vec![1.0]);
    }
}
