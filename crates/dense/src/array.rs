//! Distributed dense arrays and their NumPy-like operations.

use std::ops::Range;

use diffuse::{LaunchBuilder, StoreHandle};
use ir::{Partition, PartitionId, Projection, ReductionOp};
use kernel::TaskKind;

use crate::context::DenseContext;

/// A distributed dense array (or a view of one).
///
/// A `DArray` wraps a Diffuse store handle plus view metadata. Full arrays own
/// their store; slices share the parent store and are represented as offset
/// tilings of it, so aliasing between views is visible to the fusion analysis
/// exactly as in Figure 1.
#[derive(Clone, Debug)]
pub struct DArray {
    ctx: DenseContext,
    handle: StoreHandle,
    view_offset: Vec<i64>,
    view_shape: Vec<u64>,
    /// Lazily computed interned partition id (see [`DArray::partition_id`]).
    partition_cache: std::cell::Cell<Option<PartitionId>>,
}

impl DArray {
    pub(crate) fn full_store(ctx: DenseContext, handle: StoreHandle) -> DArray {
        let shape = handle.shape().to_vec();
        DArray {
            ctx,
            handle,
            view_offset: vec![0; shape.len()],
            view_shape: shape,
            partition_cache: std::cell::Cell::new(None),
        }
    }

    /// The view's shape.
    pub fn shape(&self) -> &[u64] {
        &self.view_shape
    }

    /// Number of elements in the view.
    pub fn len(&self) -> u64 {
        self.view_shape.iter().product()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this array is a view of a larger parent store.
    pub fn is_view(&self) -> bool {
        self.view_shape != self.handle.shape() || self.view_offset.iter().any(|&o| o != 0)
    }

    /// The underlying store handle (shared with all views of the same data).
    pub fn handle(&self) -> &StoreHandle {
        &self.handle
    }

    /// The dense library context this array belongs to.
    pub fn dense_context(&self) -> &DenseContext {
        &self.ctx
    }

    /// The partition through which index tasks access this array: a block
    /// tiling of the parent store covering exactly this view, with one block
    /// per GPU (rows are blocked for 2-D arrays). Scalars are replicated.
    ///
    /// # Panics
    ///
    /// Panics if a strict view's leading dimension is not divisible by the
    /// number of GPUs (blocks would spill outside the view).
    pub fn partition(&self) -> Partition {
        let gpus = self.ctx.gpus().max(1);
        if self.len() <= 1 {
            return Partition::Replicate;
        }
        let rows = self.view_shape[0];
        if self.is_view() {
            assert!(
                rows.is_multiple_of(gpus) || gpus == 1,
                "view leading dimension {rows} must be divisible by the GPU count {gpus}"
            );
        }
        let rows_per_gpu = rows.div_ceil(gpus).max(1);
        match self.view_shape.len() {
            1 => Partition::tiling(
                vec![rows_per_gpu],
                vec![self.view_offset[0]],
                Projection::Identity,
            ),
            2 => Partition::tiling(
                vec![rows_per_gpu, self.view_shape[1]],
                self.view_offset.clone(),
                Projection::PadZeros { rank: 2 },
            ),
            rank => panic!("unsupported array rank {rank}"),
        }
    }

    /// The interned id of [`DArray::partition`]: what the store-argument
    /// builders actually hand to the window, so submissions carry a `Copy`
    /// id rather than an owned partition structure. The id is a pure
    /// function of the view and GPU count (both fixed at creation), so it
    /// is computed once and cached — repeated operations on the same array
    /// never rebuild or re-hash the partition.
    pub fn partition_id(&self) -> PartitionId {
        if let Some(id) = self.partition_cache.get() {
            return id;
        }
        let id = PartitionId::intern(&self.partition());
        self.partition_cache.set(Some(id));
        id
    }

    fn fresh_like(&self) -> DArray {
        let handle = self
            .ctx
            .context()
            .create_store(self.view_shape.clone(), "tmp");
        DArray::full_store(self.ctx.clone(), handle)
    }

    fn fresh_scalar(&self) -> DArray {
        let handle = self.ctx.context().create_store(vec![1], "scalar");
        DArray::full_store(self.ctx.clone(), handle)
    }

    /// Starts a typed launch of `kind` on the library's context. All array
    /// operations lower through this one entry point.
    fn task(&self, kind: TaskKind, name: &str) -> LaunchBuilder {
        self.ctx.context().task(kind).name(name)
    }

    fn binary(&self, other: &DArray, kind: TaskKind, name: &str) -> DArray {
        assert_eq!(
            self.view_shape, other.view_shape,
            "elementwise operands must have equal shapes"
        );
        let out = self.fresh_like();
        self.task(kind, name)
            .read(&self.handle, self.partition_id())
            .read(&other.handle, other.partition_id())
            .write(&out.handle, out.partition_id())
            .launch();
        out
    }

    fn unary(&self, kind: TaskKind, name: &str) -> DArray {
        let out = self.fresh_like();
        self.task(kind, name)
            .read(&self.handle, self.partition_id())
            .write(&out.handle, out.partition_id())
            .launch();
        out
    }

    fn scalar_op(&self, kind: TaskKind, name: &str, value: f64) -> DArray {
        let out = self.fresh_like();
        self.task(kind, name)
            .read(&self.handle, self.partition_id())
            .write(&out.handle, out.partition_id())
            .scalar(value)
            .launch();
        out
    }

    /// Fills the array (or view) with a constant value.
    pub fn fill(&self, value: f64) {
        self.task(self.ctx.kinds.fill, "fill")
            .write(&self.handle, self.partition_id())
            .scalar(value)
            .launch();
    }

    /// Elementwise addition.
    pub fn add(&self, other: &DArray) -> DArray {
        self.binary(other, self.ctx.kinds.add, "add")
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &DArray) -> DArray {
        self.binary(other, self.ctx.kinds.sub, "sub")
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &DArray) -> DArray {
        self.binary(other, self.ctx.kinds.mul, "mul")
    }

    /// Elementwise division.
    pub fn div(&self, other: &DArray) -> DArray {
        self.binary(other, self.ctx.kinds.div, "div")
    }

    /// Elementwise maximum.
    pub fn maximum(&self, other: &DArray) -> DArray {
        self.binary(other, self.ctx.kinds.max, "maximum")
    }

    /// Elementwise minimum.
    pub fn minimum(&self, other: &DArray) -> DArray {
        self.binary(other, self.ctx.kinds.min, "minimum")
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> DArray {
        self.unary(self.ctx.kinds.sqrt, "sqrt")
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> DArray {
        self.unary(self.ctx.kinds.exp, "exp")
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> DArray {
        self.unary(self.ctx.kinds.ln, "log")
    }

    /// Elementwise error function.
    pub fn erf(&self) -> DArray {
        self.unary(self.ctx.kinds.erf, "erf")
    }

    /// Elementwise negation.
    pub fn neg(&self) -> DArray {
        self.unary(self.ctx.kinds.neg, "negative")
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> DArray {
        self.unary(self.ctx.kinds.abs, "absolute")
    }

    /// Multiply every element by a constant.
    pub fn scalar_mul(&self, value: f64) -> DArray {
        self.scalar_op(self.ctx.kinds.scalar_mul, "scalar_mul", value)
    }

    /// Add a constant to every element.
    pub fn scalar_add(&self, value: f64) -> DArray {
        self.scalar_op(self.ctx.kinds.scalar_add, "scalar_add", value)
    }

    /// Subtract a constant from every element.
    pub fn scalar_sub(&self, value: f64) -> DArray {
        self.scalar_op(self.ctx.kinds.scalar_add, "scalar_sub", -value)
    }

    /// Raise every element to a constant power.
    pub fn powf(&self, value: f64) -> DArray {
        self.scalar_op(self.ctx.kinds.scalar_pow, "power", value)
    }

    /// Compute `value - self` elementwise.
    pub fn rsub_scalar(&self, value: f64) -> DArray {
        self.scalar_op(self.ctx.kinds.scalar_rsub, "scalar_rsub", value)
    }

    /// Copy this array into a fresh array.
    pub fn copy(&self) -> DArray {
        self.unary(self.ctx.kinds.copy, "copy")
    }

    /// Assign `src` into this array or view (`self[:] = src`).
    pub fn assign(&self, src: &DArray) {
        assert_eq!(
            self.view_shape, src.view_shape,
            "assignment operands must have equal shapes"
        );
        self.task(self.ctx.kinds.copy, "copy")
            .read(&src.handle, src.partition_id())
            .write(&self.handle, self.partition_id())
            .launch();
    }

    /// `self + sign * alpha * x`, where `alpha` is a scalar array (the AXPY
    /// building block of the Krylov solvers).
    pub fn axpy(&self, alpha: &DArray, x: &DArray, sign: f64) -> DArray {
        assert_eq!(alpha.len(), 1, "alpha must be a scalar array");
        let out = self.fresh_like();
        self.task(self.ctx.kinds.axpy, "axpy")
            .read(&self.handle, self.partition_id())
            .read(&x.handle, x.partition_id())
            .read(&alpha.handle, Partition::Replicate)
            .write(&out.handle, out.partition_id())
            .scalar(sign)
            .launch();
        out
    }

    /// `s * self`, where `s` is a scalar array.
    pub fn scale_by(&self, s: &DArray) -> DArray {
        assert_eq!(s.len(), 1, "scale factor must be a scalar array");
        let out = self.fresh_like();
        self.task(self.ctx.kinds.scale_by_store, "scale_by_store")
            .read(&self.handle, self.partition_id())
            .read(&s.handle, Partition::Replicate)
            .write(&out.handle, out.partition_id())
            .launch();
        out
    }

    /// Dot product, returning a scalar array.
    pub fn dot(&self, other: &DArray) -> DArray {
        assert_eq!(self.view_shape, other.view_shape, "dot operands must match");
        let out = self.fresh_scalar();
        self.task(self.ctx.kinds.dot, "dot")
            .read(&self.handle, self.partition_id())
            .read(&other.handle, other.partition_id())
            .reduce(&out.handle, Partition::Replicate, ReductionOp::Sum)
            .launch();
        out
    }

    /// Sum of all elements, returning a scalar array.
    pub fn sum(&self) -> DArray {
        let out = self.fresh_scalar();
        self.task(self.ctx.kinds.sum, "sum")
            .read(&self.handle, self.partition_id())
            .reduce(&out.handle, Partition::Replicate, ReductionOp::Sum)
            .launch();
        out
    }

    /// Sum of squares, returning a scalar array.
    pub fn sum_sq(&self) -> DArray {
        let out = self.fresh_scalar();
        self.task(self.ctx.kinds.sum_sq, "sum_sq")
            .read(&self.handle, self.partition_id())
            .reduce(&out.handle, Partition::Replicate, ReductionOp::Sum)
            .launch();
        out
    }

    /// Euclidean norm, returning a scalar array (`sqrt(sum(self^2))`, as
    /// `numpy.linalg.norm` would).
    pub fn norm2(&self) -> DArray {
        self.sum_sq().sqrt()
    }

    /// Dense matrix-vector product `self @ x`, where `self` is a 2-D array.
    pub fn matvec(&self, x: &DArray) -> DArray {
        assert_eq!(self.view_shape.len(), 2, "matvec needs a matrix");
        assert_eq!(self.view_shape[1], x.len(), "dimension mismatch in matvec");
        let y_handle = self
            .ctx
            .context()
            .create_store(vec![self.view_shape[0]], "matvec");
        let y = DArray::full_store(self.ctx.clone(), y_handle);
        self.task(self.ctx.kinds.gemv, "gemv")
            .read(&self.handle, self.partition_id())
            .read(&x.handle, Partition::Replicate)
            .write(&y.handle, y.partition_id())
            .launch();
        y
    }

    /// A one-dimensional slice view `self[range]`.
    ///
    /// # Panics
    ///
    /// Panics if the array is not one-dimensional or the range is out of
    /// bounds.
    pub fn slice_1d(&self, range: Range<u64>) -> DArray {
        assert_eq!(self.view_shape.len(), 1, "slice_1d needs a vector");
        assert!(range.end <= self.view_shape[0] && range.start <= range.end);
        DArray {
            ctx: self.ctx.clone(),
            handle: self.handle.clone(),
            view_offset: vec![self.view_offset[0] + range.start as i64],
            view_shape: vec![range.end - range.start],
            partition_cache: std::cell::Cell::new(None),
        }
    }

    /// A two-dimensional slice view `self[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the array is not two-dimensional or a range is out of bounds.
    pub fn slice_2d(&self, rows: Range<u64>, cols: Range<u64>) -> DArray {
        assert_eq!(self.view_shape.len(), 2, "slice_2d needs a matrix");
        assert!(rows.end <= self.view_shape[0] && cols.end <= self.view_shape[1]);
        DArray {
            ctx: self.ctx.clone(),
            handle: self.handle.clone(),
            view_offset: vec![
                self.view_offset[0] + rows.start as i64,
                self.view_offset[1] + cols.start as i64,
            ],
            view_shape: vec![rows.end - rows.start, cols.end - cols.start],
            partition_cache: std::cell::Cell::new(None),
        }
    }

    /// Reads back the view's contents (functional mode only).
    pub fn to_vec(&self) -> Option<Vec<f64>> {
        let parent = self.ctx.context().read_store(&self.handle)?;
        if !self.is_view() {
            return Some(parent);
        }
        let parent_shape = self.handle.shape();
        let rect = ir::Rect::new(
            self.view_offset.clone(),
            self.view_offset
                .iter()
                .zip(&self.view_shape)
                .map(|(&o, &s)| o + s as i64)
                .collect(),
        );
        let mut out = Vec::with_capacity(self.len() as usize);
        // Row-major walk over the view rect.
        let strides: Vec<usize> = {
            let mut s = vec![1usize; parent_shape.len()];
            for d in (0..parent_shape.len().saturating_sub(1)).rev() {
                s[d] = s[d + 1] * parent_shape[d + 1] as usize;
            }
            s
        };
        let volume = rect.volume() as usize;
        for mut flat in 0..volume {
            let mut idx = 0usize;
            for d in (0..rect.rank()).rev() {
                let extent = (rect.hi[d] - rect.lo[d]) as usize;
                let coord = rect.lo[d] as usize + (flat % extent.max(1));
                flat /= extent.max(1);
                idx += coord * strides[d];
            }
            out.push(parent[idx]);
        }
        Some(out)
    }

    /// Reads back a scalar array's value (functional mode only).
    pub fn scalar_value(&self) -> Option<f64> {
        self.ctx.context().read_scalar(&self.handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse::{Context, DiffuseConfig};
    use machine::MachineConfig;

    fn np(gpus: usize) -> DenseContext {
        DenseContext::new(Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(gpus))))
    }

    #[test]
    fn elementwise_arithmetic() {
        let np = np(4);
        let a = np.from_vec(&[8], (0..8).map(|i| i as f64).collect());
        let b = np.full(&[8], 2.0);
        assert_eq!(a.add(&b).to_vec().unwrap()[3], 5.0);
        assert_eq!(a.sub(&b).to_vec().unwrap()[3], 1.0);
        assert_eq!(a.mul(&b).to_vec().unwrap()[3], 6.0);
        assert_eq!(a.div(&b).to_vec().unwrap()[3], 1.5);
        assert_eq!(a.maximum(&b).to_vec().unwrap()[0], 2.0);
        assert_eq!(a.minimum(&b).to_vec().unwrap()[7], 2.0);
    }

    #[test]
    fn unary_and_scalar_ops() {
        let np = np(2);
        let a = np.from_vec(&[4], vec![1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.sqrt().to_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.scalar_mul(2.0).to_vec().unwrap()[1], 8.0);
        assert_eq!(a.scalar_add(1.0).to_vec().unwrap()[0], 2.0);
        assert_eq!(a.scalar_sub(1.0).to_vec().unwrap()[0], 0.0);
        assert_eq!(a.rsub_scalar(20.0).to_vec().unwrap()[3], 4.0);
        assert_eq!(a.powf(2.0).to_vec().unwrap()[1], 16.0);
        assert_eq!(a.neg().to_vec().unwrap()[0], -1.0);
        assert_eq!(a.neg().abs().to_vec().unwrap()[0], 1.0);
        assert!((a.exp().to_vec().unwrap()[0] - std::f64::consts::E).abs() < 1e-12);
        assert!((a.ln().to_vec().unwrap()[0]).abs() < 1e-12);
        assert_eq!(a.copy().to_vec().unwrap(), a.to_vec().unwrap());
    }

    #[test]
    fn reductions_and_axpy() {
        let np = np(4);
        let a = np.from_vec(&[8], vec![1.0; 8]);
        let b = np.from_vec(&[8], (1..=8).map(|i| i as f64).collect());
        assert_eq!(a.dot(&b).scalar_value().unwrap(), 36.0);
        assert_eq!(b.sum().scalar_value().unwrap(), 36.0);
        assert_eq!(a.sum_sq().scalar_value().unwrap(), 8.0);
        assert!((a.norm2().scalar_value().unwrap() - 8.0f64.sqrt()).abs() < 1e-12);
        let alpha = np.scalar(2.0);
        // a + 2 * b
        let y = a.axpy(&alpha, &b, 1.0);
        assert_eq!(y.to_vec().unwrap()[2], 1.0 + 2.0 * 3.0);
        // a - 2 * b
        let y = a.axpy(&alpha, &b, -1.0);
        assert_eq!(y.to_vec().unwrap()[2], 1.0 - 2.0 * 3.0);
        let s = b.scale_by(&alpha);
        assert_eq!(s.to_vec().unwrap()[3], 8.0);
    }

    #[test]
    fn matvec_matches_reference() {
        let np = np(2);
        // [[1, 2], [3, 4]] @ [1, 1] = [3, 7]
        let a = np.from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let x = np.from_vec(&[2], vec![1.0, 1.0]);
        assert_eq!(a.matvec(&x).to_vec().unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn views_alias_their_parent() {
        let np = np(2);
        let grid = np.from_vec(&[4, 4], (0..16).map(|i| i as f64).collect());
        let interior = grid.slice_2d(1..3, 1..3);
        assert!(interior.is_view());
        assert_eq!(interior.to_vec().unwrap(), vec![5.0, 6.0, 9.0, 10.0]);
        // Writing through the view changes the parent.
        interior.fill(-1.0);
        np.flush();
        let parent = grid.to_vec().unwrap();
        assert_eq!(parent[5], -1.0);
        assert_eq!(parent[10], -1.0);
        assert_eq!(parent[0], 0.0);
        // Views of the same parent share a store but have different partitions.
        let other = grid.slice_2d(0..2, 1..3);
        assert_eq!(other.handle().id(), interior.handle().id());
        assert_ne!(other.partition(), interior.partition());
    }

    #[test]
    fn slice_1d_assign_round_trip() {
        let np = np(2);
        let v = np.from_vec(&[8], vec![0.0; 8]);
        let left = v.slice_1d(0..4);
        let right = v.slice_1d(4..8);
        let ones = np.ones(&[4]);
        left.assign(&ones);
        np.flush();
        assert_eq!(left.to_vec().unwrap(), vec![1.0; 4]);
        assert_eq!(right.to_vec().unwrap(), vec![0.0; 4]);
        assert_eq!(v.to_vec().unwrap()[..4], [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn figure1_stencil_iteration_is_correct_and_fuses() {
        let run = |fused: bool| {
            let machine = MachineConfig::with_gpus(4);
            let config = if fused {
                DiffuseConfig::fused(machine)
            } else {
                DiffuseConfig::unfused(machine)
            };
            let np = DenseContext::new(Context::new(config));
            let n = 16u64;
            let grid = np.from_vec(
                &[n + 2, n + 2],
                (0..(n + 2) * (n + 2)).map(|i| (i % 7) as f64).collect(),
            );
            let center = grid.slice_2d(1..n + 1, 1..n + 1);
            let north = grid.slice_2d(0..n, 1..n + 1);
            let south = grid.slice_2d(2..n + 2, 1..n + 1);
            let east = grid.slice_2d(1..n + 1, 2..n + 2);
            let west = grid.slice_2d(1..n + 1, 0..n);
            for _ in 0..3 {
                let avg = center.add(&north).add(&east).add(&west).add(&south);
                let work = avg.scalar_mul(0.2);
                center.assign(&work);
            }
            np.flush();
            let result = center.to_vec().unwrap();
            let stats = np.context().stats();
            (result, stats)
        };
        let (fused_result, fused_stats) = run(true);
        let (unfused_result, unfused_stats) = run(false);
        for (a, b) in fused_result.iter().zip(&unfused_result) {
            assert!((a - b).abs() < 1e-9, "fused and unfused stencil disagree");
        }
        assert!(
            fused_stats.tasks_launched < unfused_stats.tasks_launched,
            "fusion must reduce the number of launched tasks"
        );
        assert!(fused_stats.fused_tasks >= 1);
    }

    #[test]
    fn partition_shapes() {
        let np = np(4);
        let v = np.zeros(&[16]);
        assert_eq!(
            v.partition(),
            Partition::tiling(vec![4], vec![0], Projection::Identity)
        );
        let m = np.zeros(&[8, 4]);
        assert_eq!(
            m.partition(),
            Partition::tiling(vec![2, 4], vec![0, 0], Projection::PadZeros { rank: 2 })
        );
        let s = np.scalar(1.0);
        assert_eq!(s.partition(), Partition::Replicate);
    }
}
