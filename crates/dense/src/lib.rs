//! A cuPyNumeric-equivalent distributed dense array library targeting Diffuse.
//!
//! The paper's applications are written against cuPyNumeric, a drop-in NumPy
//! replacement that maps array operations onto index-task launches over
//! partitioned data. This crate plays that role for the reproduction: a
//! [`DenseContext`] registers one kernel generator per operation (Section 6.2)
//! and a [`DArray`] maps NumPy-style operations — elementwise arithmetic,
//! scalar broadcasting, reductions, matrix-vector products, slicing views and
//! view assignment — onto [`ir::IndexTask`]s submitted through the Diffuse
//! [`diffuse::Context`].
//!
//! Slices are *views*: they share the parent store and are expressed as offset
//! tilings of it, exactly like Figure 1's `center`/`north`/`east`/`west`/
//! `south` views of `grid`. Diffuse's fusion analysis therefore sees the real
//! aliasing structure of stencil codes.
//!
//! # Example: the Figure 1 stencil step
//!
//! ```
//! use dense::DenseContext;
//! use diffuse::{Context, DiffuseConfig};
//! use machine::MachineConfig;
//!
//! let np = DenseContext::new(Context::new(DiffuseConfig::fused(
//!     MachineConfig::single_node(4),
//! )));
//! let n = 16;
//! let grid = np.full(&[n + 2, n + 2], 1.0);
//! let center = grid.slice_2d(1..n + 1, 1..n + 1);
//! let north = grid.slice_2d(0..n, 1..n + 1);
//! let south = grid.slice_2d(2..n + 2, 1..n + 1);
//! let east = grid.slice_2d(1..n + 1, 2..n + 2);
//! let west = grid.slice_2d(1..n + 1, 0..n);
//! let avg = center.add(&north).add(&east).add(&west).add(&south);
//! let work = avg.scalar_mul(0.2);
//! center.assign(&work);
//! np.context().flush();
//! assert_eq!(center.to_vec().unwrap()[0], 1.0);
//! ```

pub mod array;
pub mod context;

pub use array::DArray;
pub use context::DenseContext;
