//! Kernel intermediate representation, compilation pipeline and interpreter.
//!
//! In the paper, Diffuse pairs distributed task fusion with a JIT compiler
//! built on MLIR: library developers register *generator functions* that emit
//! an MLIR fragment for each task's kernel, and Diffuse concatenates the
//! fragments of a fused task, eliminates temporaries, fuses loops, and
//! parallelizes the result (Section 6, Figure 8).
//!
//! MLIR is not available as a pure-Rust dependency, so this crate provides the
//! equivalent substrate: a small loop-nest IR ([`ir::KernelModule`]) standing
//! in for the `memref`/`affine`/`arith` dialects, a [`generator::GeneratorRegistry`]
//! for library-provided kernel bodies, a compilation [`passes::Pipeline`] that
//! mirrors Figure 8 (sequential composition → temporary demotion → loop
//! fusion + store-to-load forwarding → dead temporary elimination →
//! parallelization),
//! an [`interp::Interpreter`] that executes compiled kernels on real `f64`
//! buffers so fused and unfused executions can be checked for numerical
//! equality, and a [`cost`] module that estimates memory traffic, arithmetic
//! and kernel-launch counts for the simulated machine, plus a compile-time
//! model for reproducing Figure 13.
//!
//! Execution itself goes through the [`backend`] API: a [`KernelBackend`]
//! compiles an optimized module into a shareable [`CompiledKernel`] artifact.
//! The default [`InterpBackend`] wraps the interpreter; the
//! [`ClosureBackend`] lowers loop nests to pre-resolved composed closures (a
//! real JIT shape with one-time cost and faster steady state); the
//! [`SimdBackend`] lowers the same streams to lane-parallel arrays-of-lanes
//! kernels with masked tails. Each backend's simulated compile surcharge is
//! fitted from measured wall-clock ([`CompileTimeModel::calibrated`]). See
//! `docs/BACKENDS.md`.
//!
//! # Example
//!
//! ```
//! use kernel::builder::LoopBuilder;
//! use kernel::ir::{BufferId, BufferRole, KernelModule};
//! use kernel::passes::Pipeline;
//! use kernel::interp::Interpreter;
//!
//! // c = a + b, followed by e = c + d (Figure 8b), with c task-local.
//! let mut module = KernelModule::new(5);
//! module.set_role(BufferId(2), BufferRole::Local);
//! let mut add1 = LoopBuilder::new("add", BufferId(2));
//! let (x, y) = (add1.load(BufferId(0)), add1.load(BufferId(1)));
//! let s = add1.add(x, y);
//! add1.store(BufferId(2), s);
//! module.push_loop(add1.finish());
//! let mut add2 = LoopBuilder::new("add", BufferId(4));
//! let (x, y) = (add2.load(BufferId(2)), add2.load(BufferId(3)));
//! let s = add2.add(x, y);
//! add2.store(BufferId(4), s);
//! module.push_loop(add2.finish());
//!
//! let compiled = Pipeline::default().run(module, &[4, 4, 4, 4, 4]);
//! // The two loops fuse and the temporary c disappears entirely (Figure 8d).
//! assert_eq!(compiled.module.num_loop_stages(), 1);
//!
//! let mut bufs = vec![vec![1.0; 4], vec![2.0; 4], vec![0.0; 4], vec![3.0; 4], vec![0.0; 4]];
//! Interpreter::new().execute(&compiled.module, &mut bufs, &[]).unwrap();
//! assert_eq!(bufs[4], vec![6.0; 4]);
//! ```

pub mod analyze;
pub mod backend;
pub mod builder;
pub mod closure;
pub mod cost;
pub mod generator;
pub mod interp;
pub mod ir;
pub mod passes;
pub mod simd;
pub mod verify;

pub use analyze::{
    effective_signature, infer_footprint, EffectiveSignature, Interval, ModuleSummary,
    StageFootprint,
};
pub use backend::{compile_interp, BackendKind, CompiledKernel, InterpBackend, KernelBackend};
pub use builder::LoopBuilder;
pub use closure::ClosureBackend;
pub use cost::{host_compile_model, CompileTimeModel, HostCompileModel, KernelCost};
pub use simd::SimdBackend;
pub use generator::{
    ArgSpec, GenArgs, GeneratorFn, GeneratorRegistry, LibraryId, TaskKind, TaskSignature,
};
pub use interp::{ExecError, Interpreter};
pub use ir::{
    BinaryOp, BufferId, BufferRole, IndexWidth, KernelModule, KernelStage, LoopKernel, LoopOp,
    OpaqueOp, ReduceOp, UnaryOp, ValueId,
};
pub use passes::{Pipeline, PipelineConfig, PipelineResult};
pub use verify::{
    lint_privilege_precision, verify_against_signature, verify_lowering, verify_module,
    PrecisionLint, VerifyError,
};
