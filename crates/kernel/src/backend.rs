//! Kernel execution backends: how an optimized [`KernelModule`] becomes
//! something the runtime can run.
//!
//! The paper's Diffuse JIT-compiles fused kernels with MLIR and memoizes the
//! compiled artifact per canonical window (§5.2, §6). This crate's pipeline
//! ([`crate::passes::Pipeline`]) reproduces the *optimization* half of that
//! story; this module reproduces the *execution* half as an open-ended API so
//! interpreter-vs-JIT becomes a measurable ablation axis:
//!
//! * [`KernelBackend`] turns a module into an executable artifact
//!   ([`KernelBackend::compile`]) and prices that one-time work for the
//!   simulated clock ([`KernelBackend::compile_cost`], consulted together
//!   with the [`CompileTimeModel`] calibration).
//! * [`CompiledKernel`] is the artifact: stage-granular execution over host
//!   buffers, `Send + Sync` so executors can ship it across worker threads.
//!
//! Three backends ship: [`InterpBackend`] wraps the tree-walking
//! [`Interpreter`] (the default — compilation is a no-op wrap, execution
//! matches the historical behavior exactly),
//! [`crate::closure::ClosureBackend`] lowers each loop nest into pre-resolved,
//! composed Rust closures at compile time — a real JIT shape whose one-time
//! cost and faster steady-state the cost model can price per backend — and
//! [`crate::simd::SimdBackend`] takes the same lowering to lane-parallel
//! arrays-of-lanes kernels with masked tails (the fastest steady state and
//! the largest compile surcharge).
//!
//! Simulated kernel *execution* time comes from `machine::CostModel` and is
//! backend-invariant by design; only compile-time accounting and host
//! wall-clock differ between backends. See `docs/BACKENDS.md`.
//!
//! # Example
//!
//! ```
//! use kernel::{BackendKind, BufferId, BufferRole, KernelModule, LoopBuilder};
//!
//! let mut module = KernelModule::new(2);
//! module.set_role(BufferId(1), BufferRole::Output);
//! let mut lb = LoopBuilder::new("scale", BufferId(0));
//! let x = lb.load(BufferId(0));
//! let c = lb.constant(3.0);
//! let v = lb.mul(x, c);
//! lb.store(BufferId(1), v);
//! module.push_loop(lb.finish());
//!
//! // The same module, executed through every backend, is bitwise identical.
//! let mut results = Vec::new();
//! for kind in [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd] {
//!     let compiled = kind.backend().compile(&module).unwrap();
//!     let mut bufs = vec![vec![1.0, 2.0], vec![0.0, 0.0]];
//!     compiled.execute(&mut bufs, &[]).unwrap();
//!     results.push(bufs[1].clone());
//! }
//! assert_eq!(results[0], vec![3.0, 6.0]);
//! assert_eq!(results[0], results[1]);
//! assert_eq!(results[0], results[2]);
//! ```

use std::sync::Arc;

use crate::cost::CompileTimeModel;
use crate::interp::{ExecError, Interpreter};
use crate::ir::KernelModule;

/// An executable kernel artifact produced by a [`KernelBackend`].
///
/// Artifacts are shared (`Arc`) between the memoization cache, task launches
/// and executor workers, hence `Send + Sync`. Execution is exposed at stage
/// granularity because the runtime's coherence protocol copies region data in
/// and out *around each stage* (aliasing views of one region stay coherent
/// through the parent region between stages); [`CompiledKernel::execute`] is
/// the single-buffer-set convenience over that.
pub trait CompiledKernel: std::fmt::Debug + Send + Sync {
    /// The optimized module this artifact was compiled from. The runtime uses
    /// it for cost accounting (`kernel::cost::module_cost`) and to drive the
    /// per-stage copy protocol; backends must return the exact module they
    /// compiled.
    fn module(&self) -> &KernelModule;

    /// Identifier of the backend that produced this artifact (see
    /// [`KernelBackend::id`]).
    fn backend_id(&self) -> &'static str;

    /// Executes stage `stage` of the module over `buffers` (indexed by
    /// [`crate::BufferId`]) with the given scalar parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the stage references a buffer or scalar parameter
    /// that is not provided, or if buffer lengths are inconsistent with the
    /// stage's iteration domain — the same contract as
    /// [`Interpreter::execute`].
    fn execute_stage(
        &self,
        stage: usize,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError>;

    /// Executes every stage in order over one buffer set.
    ///
    /// # Errors
    ///
    /// First error of any stage, as in [`CompiledKernel::execute_stage`].
    fn execute(&self, buffers: &mut [Vec<f64>], scalars: &[f64]) -> Result<(), ExecError> {
        for stage in 0..self.module().num_stages() {
            self.execute_stage(stage, buffers, scalars)?;
        }
        Ok(())
    }
}

/// A strategy for turning optimized kernel modules into executable artifacts.
pub trait KernelBackend: std::fmt::Debug + Send + Sync {
    /// Stable identifier of the backend (`"interp"`, `"closure"`, …). Part of
    /// the memoization key: compiled artifacts are cached per
    /// `(canonical window, backend id)`, so two backends never share an
    /// artifact.
    fn id(&self) -> &'static str;

    /// Compiles a module into an executable artifact.
    ///
    /// # Errors
    ///
    /// Returns an error if the module is malformed in a way the backend
    /// detects at compile time (e.g. an SSA value used before definition,
    /// which the closure backend rejects while lowering). Well-formed modules
    /// produced by [`crate::builder::LoopBuilder`] always compile.
    fn compile(&self, module: &KernelModule) -> Result<Arc<dyn CompiledKernel>, ExecError>;

    /// Simulated seconds of one-time compilation work for `module`, consulted
    /// by the Diffuse layer on every memoization miss (hits charge nothing).
    /// `model` is the Figure 13 anchor of the paper's MLIR JIT; backends
    /// scale it by how much lowering work they actually do, via the fitted
    /// per-backend calibration ([`CompileTimeModel::calibrated`], measured by
    /// the `calibrate` binary) rather than asserted constants.
    fn compile_cost(&self, module: &KernelModule, model: &CompileTimeModel) -> f64;
}

/// Which kernel backend a context or runtime uses.
///
/// The kind can also be chosen through the `DIFFUSE_BACKEND` environment
/// variable (see [`BackendKind::from_env`]), mirroring `DIFFUSE_EXECUTOR`:
/// it is how the CI matrix and the benchmark binaries force one backend for
/// a whole process.
///
/// # Example
///
/// ```
/// use kernel::BackendKind;
///
/// assert_eq!(BackendKind::default(), BackendKind::Interp);
/// assert_eq!(BackendKind::Closure.id(), "closure");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The tree-walking interpreter (default; the historical behavior).
    #[default]
    Interp,
    /// The JIT-closure backend: loop nests lowered to composed closures.
    Closure,
    /// The SIMD backend: loop nests lowered to lane-parallel
    /// arrays-of-lanes kernels with masked tails.
    Simd,
}

impl BackendKind {
    /// Reads the backend choice from the `DIFFUSE_BACKEND` environment
    /// variable: `closure` or `jit` select [`BackendKind::Closure`], `simd`
    /// selects [`BackendKind::Simd`]; anything else (or the variable being
    /// unset) selects [`BackendKind::Interp`].
    ///
    /// # Example
    ///
    /// ```
    /// use kernel::BackendKind;
    ///
    /// // With DIFFUSE_BACKEND unset this is the interpreter default.
    /// let kind = BackendKind::from_env();
    /// assert!(matches!(
    ///     kind,
    ///     BackendKind::Interp | BackendKind::Closure | BackendKind::Simd
    /// ));
    /// ```
    pub fn from_env() -> Self {
        match std::env::var("DIFFUSE_BACKEND").as_deref() {
            Ok("closure") | Ok("jit") => BackendKind::Closure,
            Ok("simd") => BackendKind::Simd,
            Ok("interp") | Ok("interpreter") | Ok("") | Err(_) => BackendKind::Interp,
            Ok(other) => {
                // A typo silently running the wrong leg would invalidate any
                // backend comparison; warn once, then default.
                static WARNED: std::sync::Once = std::sync::Once::new();
                let other = other.to_string();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: unrecognized DIFFUSE_BACKEND value {other:?} \
                         (expected \"interp\", \"interpreter\", \"closure\", \
                         \"jit\" or \"simd\"); using the interpreter backend"
                    );
                });
                BackendKind::Interp
            }
        }
    }

    /// The backend's stable identifier.
    pub fn id(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Closure => "closure",
            BackendKind::Simd => "simd",
        }
    }

    /// The next backend in the graceful-degradation chain used when a
    /// backend's compilation fails (fault injection, `docs/RESILIENCE.md`):
    /// simd → closure → interp. The interpreter is the terminal fallback —
    /// its "compilation" is a module wrap that cannot fail — so the chain
    /// always ends with a working artifact.
    ///
    /// # Example
    ///
    /// ```
    /// use kernel::BackendKind;
    ///
    /// assert_eq!(BackendKind::Simd.fallback(), Some(BackendKind::Closure));
    /// assert_eq!(BackendKind::Closure.fallback(), Some(BackendKind::Interp));
    /// assert_eq!(BackendKind::Interp.fallback(), None);
    /// ```
    pub fn fallback(self) -> Option<BackendKind> {
        match self {
            BackendKind::Simd => Some(BackendKind::Closure),
            BackendKind::Closure => Some(BackendKind::Interp),
            BackendKind::Interp => None,
        }
    }

    /// Instantiates the backend.
    pub fn backend(self) -> Arc<dyn KernelBackend> {
        match self {
            BackendKind::Interp => Arc::new(InterpBackend),
            BackendKind::Closure => Arc::new(crate::closure::ClosureBackend),
            BackendKind::Simd => Arc::new(crate::simd::SimdBackend),
        }
    }
}

/// The interpreter backend: "compilation" wraps the module with a
/// tree-walking [`Interpreter`]; every element of every iteration re-matches
/// the IR ops. This is the default backend and preserves the historical
/// behavior (and compile-time accounting) of the reproduction exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpBackend;

impl KernelBackend for InterpBackend {
    fn id(&self) -> &'static str {
        BackendKind::Interp.id()
    }

    fn compile(&self, module: &KernelModule) -> Result<Arc<dyn CompiledKernel>, ExecError> {
        Ok(Arc::new(InterpCompiled {
            module: module.clone(),
            interp: Interpreter::new(),
        }))
    }

    fn compile_cost(&self, module: &KernelModule, model: &CompileTimeModel) -> f64 {
        // The interpreter stands in for the paper's JIT pipeline, so it keeps
        // the unscaled Figure 13 calibration (zero behavior change vs. the
        // pre-backend-API reproduction).
        model.compile_time(module)
    }
}

/// Artifact of the [`InterpBackend`]: the module plus an interpreter.
#[derive(Debug)]
struct InterpCompiled {
    module: KernelModule,
    interp: Interpreter,
}

impl CompiledKernel for InterpCompiled {
    fn module(&self) -> &KernelModule {
        &self.module
    }

    fn backend_id(&self) -> &'static str {
        BackendKind::Interp.id()
    }

    fn execute_stage(
        &self,
        stage: usize,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError> {
        self.interp
            .execute_stage(&self.module.stages[stage], buffers, scalars)
    }
}

/// Compiles a module with the default [`InterpBackend`]. Convenience for
/// tests, examples and callers that build launches by hand and do not care
/// about the backend axis.
///
/// # Example
///
/// ```
/// use kernel::{compile_interp, KernelModule};
///
/// let kernel = compile_interp(KernelModule::new(1));
/// assert_eq!(kernel.backend_id(), "interp");
/// ```
pub fn compile_interp(module: KernelModule) -> Arc<dyn CompiledKernel> {
    InterpBackend
        .compile(&module)
        .expect("interpreter compilation is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferId, BufferRole};

    fn scale_module(factor: f64) -> KernelModule {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        let c = lb.constant(factor);
        let v = lb.mul(x, c);
        lb.store(BufferId(1), v);
        m.push_loop(lb.finish());
        m
    }

    #[test]
    fn interp_backend_executes_like_the_interpreter() {
        let module = scale_module(2.0);
        let compiled = InterpBackend.compile(&module).unwrap();
        assert_eq!(compiled.backend_id(), "interp");
        assert_eq!(compiled.module().num_stages(), 1);
        let mut bufs = vec![vec![1.0, 2.0, 3.0], vec![0.0; 3]];
        compiled.execute(&mut bufs, &[]).unwrap();
        assert_eq!(bufs[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn interp_compile_cost_matches_the_calibration() {
        let module = scale_module(2.0);
        let model = CompileTimeModel::default();
        assert_eq!(
            InterpBackend.compile_cost(&module, &model),
            model.compile_time(&module)
        );
    }

    #[test]
    fn backend_kind_ids_and_instantiation() {
        assert_eq!(BackendKind::Interp.id(), "interp");
        assert_eq!(BackendKind::Closure.id(), "closure");
        assert_eq!(BackendKind::Simd.id(), "simd");
        assert_eq!(BackendKind::Interp.backend().id(), "interp");
        assert_eq!(BackendKind::Closure.backend().id(), "closure");
        assert_eq!(BackendKind::Simd.backend().id(), "simd");
    }

    #[test]
    fn compile_interp_helper_wraps_the_default_backend() {
        let kernel = compile_interp(scale_module(1.5));
        let mut bufs = vec![vec![2.0], vec![0.0]];
        kernel.execute(&mut bufs, &[]).unwrap();
        assert_eq!(bufs[1], vec![3.0]);
    }
}
