//! Interpreter for kernel modules.
//!
//! The interpreter is the functional backend of the reproduction: it executes
//! compiled kernel modules over real `f64` buffers on the host. Fused and
//! unfused executions of the same program therefore produce comparable
//! numerical results, which the integration tests rely on.

use crate::ir::{
    BinaryOp, BufferId, KernelModule, KernelStage, LoopKernel, LoopOp, OpaqueOp, UnaryOp, ValueId,
};

/// Errors produced by kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A buffer id referenced by the module is not present in the buffer set.
    MissingBuffer(BufferId),
    /// A scalar parameter index is out of range.
    MissingParam(usize),
    /// Two buffers accessed in the same loop have incompatible lengths.
    LengthMismatch {
        /// The loop's domain buffer.
        domain: BufferId,
        /// The offending buffer.
        buffer: BufferId,
    },
    /// An SSA value was used before being defined.
    UndefinedValue(ValueId),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingBuffer(b) => write!(f, "buffer {} not provided", b.0),
            ExecError::MissingParam(i) => write!(f, "scalar parameter {i} not provided"),
            ExecError::LengthMismatch { domain, buffer } => write!(
                f,
                "buffer {} is shorter than loop domain buffer {}",
                buffer.0, domain.0
            ),
            ExecError::UndefinedValue(v) => write!(f, "value {} used before definition", v.0),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes kernel modules over host buffers.
#[derive(Debug, Clone, Default)]
pub struct Interpreter;

impl Interpreter {
    /// Creates an interpreter.
    pub fn new() -> Self {
        Interpreter
    }

    /// Executes `module` over `buffers` (indexed by [`BufferId`]) with the
    /// given scalar parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the module references a buffer or parameter that is
    /// not provided, if buffer lengths are inconsistent with a loop's domain,
    /// or if the module is malformed (a value used before definition).
    pub fn execute(
        &self,
        module: &KernelModule,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError> {
        for stage in &module.stages {
            self.execute_stage(stage, buffers, scalars)?;
        }
        Ok(())
    }

    /// Executes one stage of a module. The runtime's copy-in/copy-out
    /// coherence protocol runs stages one at a time, so backends expose
    /// stage-granular execution; this is the interpreter's implementation.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::execute`], restricted to one stage.
    pub fn execute_stage(
        &self,
        stage: &KernelStage,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError> {
        match stage {
            KernelStage::Loop(l) => self.execute_loop(l, buffers, scalars),
            KernelStage::Opaque(op) => run_opaque(op, buffers),
        }
    }

    fn execute_loop(
        &self,
        l: &LoopKernel,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError> {
        let n = buffer_len(buffers, l.domain)?;
        // Validate lengths of every elementwise-accessed buffer up front.
        for b in l.loaded_buffers().into_iter().chain(l.written_buffers()) {
            let is_reduction_target = l.ops.iter().any(
                |op| matches!(op, LoopOp::Reduce { buffer, .. } if *buffer == b),
            );
            let len = buffer_len(buffers, b)?;
            if !is_reduction_target && len < n {
                return Err(ExecError::LengthMismatch {
                    domain: l.domain,
                    buffer: b,
                });
            }
        }
        for b in l.scalar_loaded_buffers() {
            if buffer_len(buffers, b)? == 0 {
                return Err(ExecError::LengthMismatch {
                    domain: l.domain,
                    buffer: b,
                });
            }
        }
        let mut values = vec![f64::NAN; l.num_values()];
        let mut defined = vec![false; l.num_values()];
        for i in 0..n {
            for op in &l.ops {
                match op {
                    LoopOp::Load { dst, buffer } => {
                        values[dst.0 as usize] = buffers[buffer.0 as usize][i];
                        defined[dst.0 as usize] = true;
                    }
                    LoopOp::LoadScalar { dst, buffer } => {
                        values[dst.0 as usize] = buffers[buffer.0 as usize][0];
                        defined[dst.0 as usize] = true;
                    }
                    LoopOp::Const { dst, value } => {
                        values[dst.0 as usize] = *value;
                        defined[dst.0 as usize] = true;
                    }
                    LoopOp::Param { dst, index } => {
                        values[dst.0 as usize] =
                            *scalars.get(*index).ok_or(ExecError::MissingParam(*index))?;
                        defined[dst.0 as usize] = true;
                    }
                    LoopOp::Unary { dst, op, a } => {
                        let a = Self::read_value(&values, &defined, *a)?;
                        values[dst.0 as usize] = apply_unary(*op, a);
                        defined[dst.0 as usize] = true;
                    }
                    LoopOp::Binary { dst, op, a, b } => {
                        let a = Self::read_value(&values, &defined, *a)?;
                        let b = Self::read_value(&values, &defined, *b)?;
                        values[dst.0 as usize] = apply_binary(*op, a, b);
                        defined[dst.0 as usize] = true;
                    }
                    LoopOp::Store { buffer, src } => {
                        let v = Self::read_value(&values, &defined, *src)?;
                        buffers[buffer.0 as usize][i] = v;
                    }
                    LoopOp::Reduce { buffer, op, src } => {
                        let v = Self::read_value(&values, &defined, *src)?;
                        let acc = buffers[buffer.0 as usize][0];
                        buffers[buffer.0 as usize][0] = op.apply(acc, v);
                    }
                }
            }
        }
        Ok(())
    }

    fn read_value(values: &[f64], defined: &[bool], v: ValueId) -> Result<f64, ExecError> {
        if !defined
            .get(v.0 as usize)
            .copied()
            .unwrap_or(false)
        {
            return Err(ExecError::UndefinedValue(v));
        }
        Ok(values[v.0 as usize])
    }

}

/// Length of a buffer, or [`ExecError::MissingBuffer`] if it is not provided.
pub(crate) fn buffer_len(buffers: &[Vec<f64>], b: BufferId) -> Result<usize, ExecError> {
    buffers
        .get(b.0 as usize)
        .map(Vec::len)
        .ok_or(ExecError::MissingBuffer(b))
}

/// Executes one opaque builtin over host buffers. Shared by every backend —
/// opaque stages dispatch once per stage (their inner loops are already native
/// Rust), so there is nothing for a compiling backend to specialize and all
/// backends are bitwise-identical on them by construction.
pub(crate) fn run_opaque(op: &OpaqueOp, buffers: &mut [Vec<f64>]) -> Result<(), ExecError> {
    {
        match op {
            OpaqueOp::SpMvCsr {
                pos,
                crd,
                vals,
                x,
                y,
                ..
            } => {
                let rows = buffer_len(buffers, *y)?;
                buffer_len(buffers, *pos)?;
                buffer_len(buffers, *crd)?;
                buffer_len(buffers, *vals)?;
                buffer_len(buffers, *x)?;
                for r in 0..rows {
                    let start = buffers[pos.0 as usize][r] as usize;
                    let end = buffers[pos.0 as usize][r + 1] as usize;
                    let mut acc = 0.0;
                    for k in start..end {
                        let c = buffers[crd.0 as usize][k] as usize;
                        acc += buffers[vals.0 as usize][k] * buffers[x.0 as usize][c];
                    }
                    buffers[y.0 as usize][r] = acc;
                }
            }
            OpaqueOp::Gemv { a, x, y } => {
                let rows = buffer_len(buffers, *y)?;
                let cols = buffer_len(buffers, *x)?;
                buffer_len(buffers, *a)?;
                for r in 0..rows {
                    let mut acc = 0.0;
                    for c in 0..cols {
                        acc += buffers[a.0 as usize][r * cols + c] * buffers[x.0 as usize][c];
                    }
                    buffers[y.0 as usize][r] = acc;
                }
            }
            OpaqueOp::Restrict { fine, coarse } => {
                let nc = buffer_len(buffers, *coarse)?;
                let nf = buffer_len(buffers, *fine)?;
                for i in 0..nc {
                    let j = (2 * i).min(nf.saturating_sub(1));
                    buffers[coarse.0 as usize][i] = buffers[fine.0 as usize][j];
                }
            }
            OpaqueOp::Prolong { coarse, fine } => {
                let nc = buffer_len(buffers, *coarse)?;
                let nf = buffer_len(buffers, *fine)?;
                for i in 0..nf {
                    let c = (i / 2).min(nc.saturating_sub(1));
                    if i % 2 == 0 {
                        buffers[fine.0 as usize][i] = buffers[coarse.0 as usize][c];
                    } else {
                        let c2 = (c + 1).min(nc.saturating_sub(1));
                        buffers[fine.0 as usize][i] =
                            0.5 * (buffers[coarse.0 as usize][c] + buffers[coarse.0 as usize][c2]);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Resolves a unary operator to its host function. Every backend evaluates
/// ops through these resolvers, so backends agree bitwise by construction:
/// the interpreter calls the resolved function per element, the closure
/// backend binds it once at compile time.
pub(crate) fn unary_fn(op: UnaryOp) -> fn(f64) -> f64 {
    match op {
        UnaryOp::Neg => |a| -a,
        UnaryOp::Sqrt => f64::sqrt,
        UnaryOp::Exp => f64::exp,
        UnaryOp::Ln => f64::ln,
        UnaryOp::Abs => f64::abs,
        UnaryOp::Erf => erf,
        UnaryOp::Recip => |a| 1.0 / a,
    }
}

/// Resolves a binary operator to its host function (see [`unary_fn`]).
pub(crate) fn binary_fn(op: BinaryOp) -> fn(f64, f64) -> f64 {
    match op {
        BinaryOp::Add => |a, b| a + b,
        BinaryOp::Sub => |a, b| a - b,
        BinaryOp::Mul => |a, b| a * b,
        BinaryOp::Div => |a, b| a / b,
        BinaryOp::Max => f64::max,
        BinaryOp::Min => f64::min,
        BinaryOp::Pow => f64::powf,
    }
}

fn apply_unary(op: UnaryOp, a: f64) -> f64 {
    unary_fn(op)(a)
}

fn apply_binary(op: BinaryOp, a: f64, b: f64) -> f64 {
    binary_fn(op)(a, b)
}

/// Abramowitz–Stegun approximation of the error function (maximum absolute
/// error about 1.5e-7), sufficient for the Black-Scholes workload.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferRole, IndexWidth, ReduceOp};

    #[test]
    fn elementwise_add_executes() {
        let mut module = KernelModule::new(3);
        module.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        module.push_loop(b.finish());
        let mut bufs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 0.0]];
        Interpreter::new().execute(&module, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[2], vec![4.0, 6.0]);
    }

    #[test]
    fn reduction_accumulates() {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Reduction);
        let mut b = LoopBuilder::new("sum", BufferId(0));
        let x = b.load(BufferId(0));
        b.reduce(BufferId(1), ReduceOp::Sum, x);
        module.push_loop(b.finish());
        let mut bufs = vec![vec![1.0, 2.0, 3.0], vec![0.0]];
        Interpreter::new().execute(&module, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[1][0], 6.0);
    }

    #[test]
    fn scalar_broadcast_load() {
        let mut module = KernelModule::new(3);
        let mut b = LoopBuilder::new("scale", BufferId(0));
        let x = b.load(BufferId(0));
        let s = b.load_scalar(BufferId(1));
        let v = b.mul(x, s);
        b.store(BufferId(2), v);
        module.push_loop(b.finish());
        let mut bufs = vec![vec![1.0, 2.0], vec![10.0], vec![0.0, 0.0]];
        Interpreter::new().execute(&module, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[2], vec![10.0, 20.0]);
    }

    #[test]
    fn scalar_params_are_read() {
        let mut module = KernelModule::new(2);
        let mut b = LoopBuilder::new("scale", BufferId(0));
        let x = b.load(BufferId(0));
        let p = b.param(0);
        let v = b.mul(x, p);
        b.store(BufferId(1), v);
        module.push_loop(b.finish());
        let mut bufs = vec![vec![2.0], vec![0.0]];
        Interpreter::new()
            .execute(&module, &mut bufs, &[3.5])
            .unwrap();
        assert_eq!(bufs[1], vec![7.0]);
        let err = Interpreter::new().execute(&module, &mut bufs, &[]);
        assert_eq!(err, Err(ExecError::MissingParam(0)));
    }

    #[test]
    fn spmv_matches_dense_reference() {
        // 2x2 matrix [[1, 2], [0, 3]] in CSR.
        let module = {
            let mut m = KernelModule::new(5);
            m.push_opaque(OpaqueOp::SpMvCsr {
                pos: BufferId(0),
                crd: BufferId(1),
                vals: BufferId(2),
                x: BufferId(3),
                y: BufferId(4),
                index_width: IndexWidth::U32,
            });
            m
        };
        let mut bufs = vec![
            vec![0.0, 2.0, 3.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0],
            vec![0.0, 0.0],
        ];
        Interpreter::new().execute(&module, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[4], vec![14.0, 15.0]);
    }

    #[test]
    fn gemv_matches_reference() {
        let module = {
            let mut m = KernelModule::new(3);
            m.push_opaque(OpaqueOp::Gemv {
                a: BufferId(0),
                x: BufferId(1),
                y: BufferId(2),
            });
            m
        };
        let mut bufs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0], vec![0.0, 0.0]];
        Interpreter::new().execute(&module, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[2], vec![3.0, 7.0]);
    }

    #[test]
    fn restrict_and_prolong_roundtrip_shape() {
        let mut m = KernelModule::new(2);
        m.push_opaque(OpaqueOp::Restrict {
            fine: BufferId(0),
            coarse: BufferId(1),
        });
        let mut bufs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.0, 0.0]];
        Interpreter::new().execute(&m, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[1], vec![1.0, 3.0]);

        let mut m = KernelModule::new(2);
        m.push_opaque(OpaqueOp::Prolong {
            coarse: BufferId(0),
            fine: BufferId(1),
        });
        let mut bufs = vec![vec![1.0, 3.0], vec![0.0; 4]];
        Interpreter::new().execute(&m, &mut bufs, &[]).unwrap();
        assert_eq!(bufs[1], vec![1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn missing_buffer_is_an_error() {
        let mut module = KernelModule::new(3);
        let mut b = LoopBuilder::new("id", BufferId(2));
        let x = b.load(BufferId(0));
        b.store(BufferId(2), x);
        module.push_loop(b.finish());
        let mut bufs = vec![vec![1.0]];
        let err = Interpreter::new().execute(&module, &mut bufs, &[]);
        assert!(matches!(err, Err(ExecError::MissingBuffer(_))));
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let mut module = KernelModule::new(2);
        let mut b = LoopBuilder::new("id", BufferId(0));
        let x = b.load(BufferId(1));
        b.store(BufferId(0), x);
        module.push_loop(b.finish());
        let mut bufs = vec![vec![0.0; 4], vec![0.0; 2]];
        let err = Interpreter::new().execute(&module, &mut bufs, &[]);
        assert!(matches!(err, Err(ExecError::LengthMismatch { .. })));
    }

    #[test]
    fn erf_is_accurate() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn unary_and_binary_ops_evaluate() {
        assert_eq!(apply_unary(UnaryOp::Neg, 2.0), -2.0);
        assert_eq!(apply_unary(UnaryOp::Sqrt, 4.0), 2.0);
        assert_eq!(apply_unary(UnaryOp::Abs, -3.0), 3.0);
        assert_eq!(apply_unary(UnaryOp::Recip, 4.0), 0.25);
        assert!((apply_unary(UnaryOp::Exp, 0.0) - 1.0).abs() < 1e-12);
        assert!((apply_unary(UnaryOp::Ln, 1.0)).abs() < 1e-12);
        assert_eq!(apply_binary(BinaryOp::Sub, 3.0, 1.0), 2.0);
        assert_eq!(apply_binary(BinaryOp::Div, 6.0, 2.0), 3.0);
        assert_eq!(apply_binary(BinaryOp::Max, 1.0, 2.0), 2.0);
        assert_eq!(apply_binary(BinaryOp::Min, 1.0, 2.0), 1.0);
        assert_eq!(apply_binary(BinaryOp::Pow, 2.0, 3.0), 8.0);
    }
}
