//! Generator functions: library-provided kernel bodies.
//!
//! To use Diffuse, library developers register a *generator function* per task
//! kind that returns the kernel body for that task (Section 6.2). The dense
//! and sparse libraries in this reproduction register their generators with a
//! [`GeneratorRegistry`]; the Diffuse core invokes them when building the
//! module for a fused task and when executing single tasks functionally.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ir::KernelModule;

/// Identifies a task kind (one library operation such as `ADD` or `SPMV`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskKind(pub u32);

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task_kind({})", self.0)
    }
}

/// Arguments passed to a generator function.
///
/// Buffer ids `0..buffer_lens.len()` refer to the task's store arguments in
/// argument order; the generator may add task-local buffers beyond that range
/// via [`KernelModule::add_local`].
#[derive(Debug, Clone, Copy)]
pub struct GenArgs<'a> {
    /// Element count of each store argument, in argument order.
    pub buffer_lens: &'a [usize],
    /// Scalar parameters of the task (e.g. the 0.2 in Figure 1).
    pub scalars: &'a [f64],
}

/// A generator function: produces a kernel module describing one task kind's
/// computation over its arguments.
pub type GeneratorFn = Arc<dyn Fn(&GenArgs<'_>) -> KernelModule + Send + Sync>;

/// Registry of generator functions, keyed by task kind.
#[derive(Clone, Default)]
pub struct GeneratorRegistry {
    generators: HashMap<TaskKind, (String, GeneratorFn)>,
    next_kind: u32,
}

impl std::fmt::Debug for GeneratorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<_> = self.generators.values().map(|(n, _)| n.clone()).collect();
        names.sort();
        f.debug_struct("GeneratorRegistry")
            .field("tasks", &names)
            .finish()
    }
}

impl GeneratorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a generator under a fresh task kind and returns the kind.
    pub fn register(&mut self, name: impl Into<String>, generator: GeneratorFn) -> TaskKind {
        let kind = TaskKind(self.next_kind);
        self.next_kind += 1;
        self.generators.insert(kind, (name.into(), generator));
        kind
    }

    /// Registers a generator built from a plain function or closure.
    pub fn register_fn<F>(&mut self, name: impl Into<String>, generator: F) -> TaskKind
    where
        F: Fn(&GenArgs<'_>) -> KernelModule + Send + Sync + 'static,
    {
        self.register(name, Arc::new(generator))
    }

    /// The human-readable name of a task kind, if registered.
    pub fn name(&self, kind: TaskKind) -> Option<&str> {
        self.generators.get(&kind).map(|(n, _)| n.as_str())
    }

    /// Whether a generator is registered for the kind.
    pub fn contains(&self, kind: TaskKind) -> bool {
        self.generators.contains_key(&kind)
    }

    /// Number of registered generators.
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    /// Invokes the generator for `kind`, returning `None` if no generator is
    /// registered.
    pub fn generate(&self, kind: TaskKind, args: &GenArgs<'_>) -> Option<KernelModule> {
        self.generators.get(&kind).map(|(_, g)| g(args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferId, BufferRole};

    fn add_generator(args: &GenArgs<'_>) -> KernelModule {
        assert_eq!(args.buffer_lens.len(), 3);
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        m.push_loop(b.finish());
        m
    }

    #[test]
    fn register_and_generate() {
        let mut reg = GeneratorRegistry::new();
        assert!(reg.is_empty());
        let kind = reg.register_fn("add", add_generator);
        assert_eq!(reg.len(), 1);
        assert!(reg.contains(kind));
        assert_eq!(reg.name(kind), Some("add"));
        let args = GenArgs {
            buffer_lens: &[4, 4, 4],
            scalars: &[],
        };
        let module = reg.generate(kind, &args).expect("generator registered");
        assert_eq!(module.num_loop_stages(), 1);
        assert!(reg.generate(TaskKind(99), &args).is_none());
    }

    #[test]
    fn kinds_are_unique() {
        let mut reg = GeneratorRegistry::new();
        let a = reg.register_fn("a", add_generator);
        let b = reg.register_fn("b", add_generator);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_lists_names() {
        let mut reg = GeneratorRegistry::new();
        reg.register_fn("mult", add_generator);
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("mult"));
    }
}
