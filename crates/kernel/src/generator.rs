//! Generator functions: library-provided kernel bodies, organized by library.
//!
//! To use Diffuse, a library developer registers a *library* (a namespace
//! such as `dense` or `sparse`) and then one *generator function* per task
//! kind inside it (Section 6.2). A generator returns the kernel body for that
//! task; the Diffuse core invokes it when building the module for a fused
//! task and when executing single tasks functionally.
//!
//! Task kinds are **namespaced**: a [`TaskKind`] is a `(LibraryId, op index)`
//! pair, so independently written libraries can both register an `add`
//! operation without sharing or clobbering a kind. Each operation also
//! declares a [`TaskSignature`] — the argument roles and scalar arity the
//! kernel expects — which the submission layer validates launches against.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ir::KernelModule;

/// Identifies a registered library (a namespace of task kinds).
///
/// Library ids are assigned sequentially by the [`GeneratorRegistry`] they
/// were registered in; two instances of the same library registered twice get
/// two distinct ids, so their operations can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LibraryId(pub u16);

impl std::fmt::Display for LibraryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lib{}", self.0)
    }
}

/// Identifies a task kind (one library operation such as `ADD` or `SPMV`),
/// scoped to the library that registered it.
///
/// The pair packs losslessly into a `u32` ([`TaskKind::encode`]), which is
/// what [`ir::IndexTask`](../ir) carries through the fusion analyses — the
/// canonical window and fingerprint machinery see an opaque integer and two
/// ops from different libraries can never canonicalize to the same kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskKind {
    /// The library that registered the operation.
    pub library: LibraryId,
    /// Index of the operation within its library, in registration order.
    pub op: u16,
}

impl TaskKind {
    /// Packs the kind into the `u32` carried by `ir::IndexTask`.
    pub fn encode(self) -> u32 {
        ((self.library.0 as u32) << 16) | self.op as u32
    }

    /// Recovers the kind from its encoded form.
    pub fn decode(raw: u32) -> TaskKind {
        TaskKind {
            library: LibraryId((raw >> 16) as u16),
            op: (raw & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task_kind({}:{})", self.library.0, self.op)
    }
}

/// The role one store argument plays in an operation's signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSpec {
    /// The argument is read.
    Read,
    /// The argument is written.
    Write,
    /// The argument is read and written.
    ReadWrite,
    /// The argument is reduced to (with any reduction operator).
    Reduce,
}

/// The declared shape of an operation: argument roles in kernel-buffer order
/// plus the number of scalar parameters.
///
/// Signatures let the submission layer reject malformed launches (wrong
/// arity, a read where the kernel writes, a missing scalar) at submission
/// time instead of deep inside the kernel pipeline.
///
/// ```
/// use kernel::{ArgSpec, TaskSignature};
///
/// // out = a + b
/// let sig = TaskSignature::new().read().read().write();
/// assert_eq!(sig.args(), &[ArgSpec::Read, ArgSpec::Read, ArgSpec::Write]);
/// assert_eq!(sig.num_scalars(), 0);
/// // out = a * param
/// let sig = TaskSignature::new().read().write().scalars(1);
/// assert_eq!(sig.num_scalars(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskSignature {
    args: Vec<ArgSpec>,
    scalars: usize,
}

impl TaskSignature {
    /// An empty signature (no arguments, no scalars).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an argument with the given role.
    pub fn arg(mut self, spec: ArgSpec) -> Self {
        self.args.push(spec);
        self
    }

    /// Appends a read argument.
    pub fn read(self) -> Self {
        self.arg(ArgSpec::Read)
    }

    /// Appends a written argument.
    pub fn write(self) -> Self {
        self.arg(ArgSpec::Write)
    }

    /// Appends a read-write argument.
    pub fn read_write(self) -> Self {
        self.arg(ArgSpec::ReadWrite)
    }

    /// Appends a reduction argument.
    pub fn reduce(self) -> Self {
        self.arg(ArgSpec::Reduce)
    }

    /// Sets the number of scalar parameters.
    pub fn scalars(mut self, n: usize) -> Self {
        self.scalars = n;
        self
    }

    /// The declared argument roles, in kernel-buffer order.
    pub fn args(&self) -> &[ArgSpec] {
        &self.args
    }

    /// The declared scalar-parameter count.
    pub fn num_scalars(&self) -> usize {
        self.scalars
    }
}

/// Arguments passed to a generator function.
///
/// Buffer ids `0..buffer_lens.len()` refer to the task's store arguments in
/// argument order; the generator may add task-local buffers beyond that range
/// via [`KernelModule::add_local`].
#[derive(Debug, Clone, Copy)]
pub struct GenArgs<'a> {
    /// Element count of each store argument, in argument order.
    pub buffer_lens: &'a [usize],
    /// Scalar parameters of the task (e.g. the 0.2 in Figure 1).
    pub scalars: &'a [f64],
}

/// A generator function: produces a kernel module describing one task kind's
/// computation over its arguments.
pub type GeneratorFn = Arc<dyn Fn(&GenArgs<'_>) -> KernelModule + Send + Sync>;

/// One registered operation: its name, declared signature and generator.
struct OpEntry {
    name: String,
    signature: TaskSignature,
    generator: GeneratorFn,
}

/// One registered library: its name and operations in registration order.
struct LibraryEntry {
    name: String,
    ops: Vec<OpEntry>,
    by_name: HashMap<String, u16>,
}

/// Registry of libraries and their generator functions, keyed by namespaced
/// task kind.
#[derive(Default)]
pub struct GeneratorRegistry {
    libraries: Vec<LibraryEntry>,
}

impl std::fmt::Debug for GeneratorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<String> = self
            .libraries
            .iter()
            .flat_map(|lib| lib.ops.iter().map(move |op| format!("{}.{}", lib.name, op.name)))
            .collect();
        names.sort();
        f.debug_struct("GeneratorRegistry")
            .field("tasks", &names)
            .finish()
    }
}

impl GeneratorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a library namespace and returns its id. Registering the same
    /// name twice creates two distinct libraries (two instances of a library
    /// over one context never collide).
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` libraries are registered.
    pub fn register_library(&mut self, name: impl Into<String>) -> LibraryId {
        let id = u16::try_from(self.libraries.len()).expect("too many libraries registered");
        self.libraries.push(LibraryEntry {
            name: name.into(),
            ops: Vec::new(),
            by_name: HashMap::new(),
        });
        LibraryId(id)
    }

    /// Registers an operation in `library` under `name` with a declared
    /// signature, returning its namespaced kind. Op indices are assigned in
    /// registration order.
    ///
    /// # Panics
    ///
    /// Panics if `library` is unknown, if `name` is already registered in the
    /// *same* library (the same name in a different library is fine), or if
    /// the library exceeds `u16::MAX` operations.
    pub fn register_op(
        &mut self,
        library: LibraryId,
        name: impl Into<String>,
        signature: TaskSignature,
        generator: GeneratorFn,
    ) -> TaskKind {
        let name = name.into();
        let lib = self
            .libraries
            .get_mut(library.0 as usize)
            .unwrap_or_else(|| panic!("unknown library {library}"));
        assert!(
            !lib.by_name.contains_key(&name),
            "operation `{}` is already registered in library `{}`",
            name,
            lib.name
        );
        let op = u16::try_from(lib.ops.len())
            .unwrap_or_else(|_| panic!("library `{}` has too many operations", lib.name));
        lib.by_name.insert(name.clone(), op);
        lib.ops.push(OpEntry {
            name,
            signature,
            generator,
        });
        TaskKind { library, op }
    }

    /// Registers an operation built from a plain function or closure.
    ///
    /// # Panics
    ///
    /// As [`GeneratorRegistry::register_op`].
    pub fn register_op_fn<F>(
        &mut self,
        library: LibraryId,
        name: impl Into<String>,
        signature: TaskSignature,
        generator: F,
    ) -> TaskKind
    where
        F: Fn(&GenArgs<'_>) -> KernelModule + Send + Sync + 'static,
    {
        self.register_op(library, name, signature, Arc::new(generator))
    }

    fn op(&self, kind: TaskKind) -> Option<&OpEntry> {
        self.libraries
            .get(kind.library.0 as usize)
            .and_then(|lib| lib.ops.get(kind.op as usize))
    }

    /// The name of a registered library.
    pub fn library_name(&self, library: LibraryId) -> Option<&str> {
        self.libraries.get(library.0 as usize).map(|l| l.name.as_str())
    }

    /// Ids and names of every registered library, in registration order.
    pub fn libraries(&self) -> impl Iterator<Item = (LibraryId, &str)> {
        self.libraries
            .iter()
            .enumerate()
            .map(|(i, l)| (LibraryId(i as u16), l.name.as_str()))
    }

    /// The unqualified operation name of a task kind, if registered.
    pub fn name(&self, kind: TaskKind) -> Option<&str> {
        self.op(kind).map(|op| op.name.as_str())
    }

    /// The `library.op` qualified name of a task kind, if registered.
    pub fn qualified_name(&self, kind: TaskKind) -> Option<String> {
        let lib = self.libraries.get(kind.library.0 as usize)?;
        let op = lib.ops.get(kind.op as usize)?;
        Some(format!("{}.{}", lib.name, op.name))
    }

    /// The declared signature of a task kind, if registered.
    pub fn signature(&self, kind: TaskKind) -> Option<&TaskSignature> {
        self.op(kind).map(|op| &op.signature)
    }

    /// Looks up an operation by name within a library.
    pub fn lookup(&self, library: LibraryId, name: &str) -> Option<TaskKind> {
        let lib = self.libraries.get(library.0 as usize)?;
        lib.by_name.get(name).map(|&op| TaskKind { library, op })
    }

    /// Whether a generator is registered for the kind.
    pub fn contains(&self, kind: TaskKind) -> bool {
        self.op(kind).is_some()
    }

    /// Number of registered generators across all libraries.
    pub fn len(&self) -> usize {
        self.libraries.iter().map(|l| l.ops.len()).sum()
    }

    /// Whether the registry has no registered generators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invokes the generator for `kind`, returning `None` if no generator is
    /// registered.
    pub fn generate(&self, kind: TaskKind, args: &GenArgs<'_>) -> Option<KernelModule> {
        self.op(kind).map(|op| (op.generator)(args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferId, BufferRole};

    fn add_generator(args: &GenArgs<'_>) -> KernelModule {
        assert_eq!(args.buffer_lens.len(), 3);
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        m.push_loop(b.finish());
        m
    }

    fn add_signature() -> TaskSignature {
        TaskSignature::new().read().read().write()
    }

    #[test]
    fn register_and_generate() {
        let mut reg = GeneratorRegistry::new();
        assert!(reg.is_empty());
        let lib = reg.register_library("testlib");
        let kind = reg.register_op_fn(lib, "add", add_signature(), add_generator);
        assert_eq!(reg.len(), 1);
        assert!(reg.contains(kind));
        assert_eq!(reg.name(kind), Some("add"));
        assert_eq!(reg.qualified_name(kind), Some("testlib.add".to_string()));
        assert_eq!(reg.signature(kind), Some(&add_signature()));
        assert_eq!(reg.lookup(lib, "add"), Some(kind));
        assert_eq!(reg.lookup(lib, "mul"), None);
        let args = GenArgs {
            buffer_lens: &[4, 4, 4],
            scalars: &[],
        };
        let module = reg.generate(kind, &args).expect("generator registered");
        assert_eq!(module.num_loop_stages(), 1);
        let unknown = TaskKind { library: LibraryId(9), op: 0 };
        assert!(reg.generate(unknown, &args).is_none());
    }

    #[test]
    fn kinds_are_scoped_to_their_library() {
        let mut reg = GeneratorRegistry::new();
        let a = reg.register_library("a");
        let b = reg.register_library("b");
        // The same op name in two libraries yields two distinct kinds.
        let ka = reg.register_op_fn(a, "add", add_signature(), add_generator);
        let kb = reg.register_op_fn(b, "add", add_signature(), add_generator);
        assert_ne!(ka, kb);
        assert_ne!(ka.encode(), kb.encode());
        assert_eq!(reg.qualified_name(ka), Some("a.add".to_string()));
        assert_eq!(reg.qualified_name(kb), Some("b.add".to_string()));
    }

    #[test]
    fn encode_round_trips() {
        let kind = TaskKind { library: LibraryId(7), op: 513 };
        assert_eq!(TaskKind::decode(kind.encode()), kind);
        assert_eq!(TaskKind::decode(0), TaskKind { library: LibraryId(0), op: 0 });
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_op_in_one_library_panics() {
        let mut reg = GeneratorRegistry::new();
        let lib = reg.register_library("dup");
        reg.register_op_fn(lib, "add", add_signature(), add_generator);
        reg.register_op_fn(lib, "add", add_signature(), add_generator);
    }

    #[test]
    fn same_library_name_twice_is_two_namespaces() {
        let mut reg = GeneratorRegistry::new();
        let a = reg.register_library("sparse");
        let b = reg.register_library("sparse");
        assert_ne!(a, b);
        // Both instances can register the same op without clobbering.
        let ka = reg.register_op_fn(a, "spmv", add_signature(), add_generator);
        let kb = reg.register_op_fn(b, "spmv", add_signature(), add_generator);
        assert_ne!(ka, kb);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn debug_lists_qualified_names() {
        let mut reg = GeneratorRegistry::new();
        let lib = reg.register_library("mylib");
        reg.register_op_fn(lib, "mult", add_signature(), add_generator);
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("mylib.mult"));
    }

    #[test]
    fn libraries_iterates_in_registration_order() {
        let mut reg = GeneratorRegistry::new();
        let a = reg.register_library("first");
        let b = reg.register_library("second");
        let listed: Vec<_> = reg.libraries().collect();
        assert_eq!(listed, vec![(a, "first"), (b, "second")]);
        assert_eq!(reg.library_name(a), Some("first"));
        assert_eq!(reg.library_name(LibraryId(5)), None);
    }
}
