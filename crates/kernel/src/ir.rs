//! The kernel IR: buffers, loop kernels, opaque kernels and modules.
//!
//! A [`KernelModule`] is the unit the JIT compiles: a sequence of stages, each
//! of which is either a dense loop over the elements of one buffer
//! ([`LoopKernel`], standing in for an `affine.for` nest over `memref`s) or an
//! opaque builtin with an irregular access pattern ([`OpaqueOp`], e.g. CSR
//! SpMV), which cannot be loop-fused but can still be sequenced inside a fused
//! task.

/// Identifies one buffer (a `memref` argument or task-local allocation) of a
/// kernel module. Buffers `0..num_args` are the fused task's store arguments
/// in order; higher ids are task-local temporaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u32);

/// Identifies an SSA value inside one loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// How a buffer is used by the module, mirroring task privileges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferRole {
    /// Read-only input.
    #[default]
    Input,
    /// Write-only output.
    Output,
    /// Read and written.
    InOut,
    /// Reduction target (e.g. the scalar output of a dot product).
    Reduction,
    /// Task-local temporary: not visible outside the fused task and therefore
    /// a candidate for elimination by the pipeline.
    Local,
}

/// Unary arithmetic operators (a subset of the `arith`/`math` dialects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Absolute value.
    Abs,
    /// Error function (used by the Black-Scholes normal CDF).
    Erf,
    /// Reciprocal `1/x`.
    Recip,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Power `a^b`.
    Pow,
}

/// Reduction operators for scalar accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum reduction.
    Sum,
    /// Max reduction.
    Max,
    /// Min reduction.
    Min,
}

impl ReduceOp {
    /// Identity element of the reduction.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Applies the reduction to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// One operation in a loop body. Values are in SSA form: each `dst` is
/// assigned exactly once per iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopOp {
    /// Load element `i` of a buffer.
    Load { dst: ValueId, buffer: BufferId },
    /// Load element 0 of a buffer regardless of the loop index (a broadcast
    /// of a scalar store, e.g. the result of an earlier dot product).
    LoadScalar { dst: ValueId, buffer: BufferId },
    /// A floating point constant.
    Const { dst: ValueId, value: f64 },
    /// The `index`-th scalar parameter of the kernel.
    Param { dst: ValueId, index: usize },
    /// A unary arithmetic operation.
    Unary { dst: ValueId, op: UnaryOp, a: ValueId },
    /// A binary arithmetic operation.
    Binary {
        dst: ValueId,
        op: BinaryOp,
        a: ValueId,
        b: ValueId,
    },
    /// Store a value to element `i` of a buffer.
    Store { buffer: BufferId, src: ValueId },
    /// Accumulate a value into element 0 of a scalar reduction buffer.
    Reduce {
        buffer: BufferId,
        op: ReduceOp,
        src: ValueId,
    },
}

impl LoopOp {
    /// The value defined by this op, if any.
    pub fn dst(&self) -> Option<ValueId> {
        match self {
            LoopOp::Load { dst, .. }
            | LoopOp::LoadScalar { dst, .. }
            | LoopOp::Const { dst, .. }
            | LoopOp::Param { dst, .. }
            | LoopOp::Unary { dst, .. }
            | LoopOp::Binary { dst, .. } => Some(*dst),
            LoopOp::Store { .. } | LoopOp::Reduce { .. } => None,
        }
    }

    /// Whether this op performs arithmetic (counts toward the flop estimate).
    pub fn is_arith(&self) -> bool {
        matches!(
            self,
            LoopOp::Unary { .. } | LoopOp::Binary { .. } | LoopOp::Reduce { .. }
        )
    }
}

/// A dense loop over `0..len(domain)` whose body is a straight-line sequence
/// of [`LoopOp`]s. Stands in for an `affine.for`/`affine.parallel` nest.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopKernel {
    /// Human-readable name (the originating task kind).
    pub name: String,
    /// The buffer whose length defines the iteration domain.
    pub domain: BufferId,
    /// The loop body.
    pub ops: Vec<LoopOp>,
    /// Whether the loop has been marked parallel by the pipeline.
    pub parallel: bool,
}

impl LoopKernel {
    /// Buffers loaded elementwise by the body (deduplicated, in first-use order).
    pub fn loaded_buffers(&self) -> Vec<BufferId> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let LoopOp::Load { buffer, .. } = op {
                if !out.contains(buffer) {
                    out.push(*buffer);
                }
            }
        }
        out
    }

    /// Buffers loaded as broadcast scalars by the body (deduplicated).
    pub fn scalar_loaded_buffers(&self) -> Vec<BufferId> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let LoopOp::LoadScalar { buffer, .. } = op {
                if !out.contains(buffer) {
                    out.push(*buffer);
                }
            }
        }
        out
    }

    /// Buffers stored or reduced into by the body (deduplicated).
    pub fn written_buffers(&self) -> Vec<BufferId> {
        let mut out = Vec::new();
        for op in &self.ops {
            let b = match op {
                LoopOp::Store { buffer, .. } | LoopOp::Reduce { buffer, .. } => Some(*buffer),
                _ => None,
            };
            if let Some(b) = b {
                if !out.contains(&b) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Number of arithmetic operations per iteration.
    pub fn arith_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_arith()).count()
    }

    /// The largest value id used plus one (the size of the scratch table the
    /// interpreter needs).
    pub fn num_values(&self) -> usize {
        self.ops
            .iter()
            .filter_map(LoopOp::dst)
            .map(|v| v.0 as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Width of the integer indices of a sparse matrix, mirroring the paper's
/// controlled comparison against PETSc (which stores coordinates as 32-bit
/// integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexWidth {
    /// 32-bit indices (4 bytes each).
    #[default]
    U32,
    /// 64-bit indices (8 bytes each).
    U64,
}

impl IndexWidth {
    /// Bytes per index.
    pub fn bytes(self) -> u64 {
        match self {
            IndexWidth::U32 => 4,
            IndexWidth::U64 => 8,
        }
    }
}

/// Builtin kernels with irregular access patterns. These cannot be loop-fused
/// with neighbouring stages but participate in fused tasks as-is.
#[derive(Debug, Clone, PartialEq)]
pub enum OpaqueOp {
    /// CSR sparse matrix-vector multiply `y = A * x`.
    SpMvCsr {
        /// Row offsets, length `rows + 1`, stored as f64 values.
        pos: BufferId,
        /// Column indices, length `nnz`, stored as f64 values.
        crd: BufferId,
        /// Nonzero values, length `nnz`.
        vals: BufferId,
        /// Input vector, length `cols`.
        x: BufferId,
        /// Output vector, length `rows`.
        y: BufferId,
        /// Width of the integer coordinates (for the cost model only).
        index_width: IndexWidth,
    },
    /// Dense matrix-vector multiply `y = A * x` with `A` stored row-major and
    /// flattened, `rows = len(y)`, `cols = len(x)`.
    Gemv {
        a: BufferId,
        x: BufferId,
        y: BufferId,
    },
    /// Injection restriction from a fine 1-D grid to a coarse grid of half the
    /// size (used by the geometric multigrid solver).
    Restrict {
        fine: BufferId,
        coarse: BufferId,
    },
    /// Linear prolongation from a coarse 1-D grid to a fine grid of twice the
    /// size.
    Prolong {
        coarse: BufferId,
        fine: BufferId,
    },
}

impl OpaqueOp {
    /// A short display name for profiles and plans.
    pub fn name(&self) -> &'static str {
        match self {
            OpaqueOp::SpMvCsr { .. } => "spmv_csr",
            OpaqueOp::Gemv { .. } => "gemv",
            OpaqueOp::Restrict { .. } => "restrict",
            OpaqueOp::Prolong { .. } => "prolong",
        }
    }

    /// Buffers read by the builtin.
    pub fn read_buffers(&self) -> Vec<BufferId> {
        match self {
            OpaqueOp::SpMvCsr {
                pos, crd, vals, x, ..
            } => vec![*pos, *crd, *vals, *x],
            OpaqueOp::Gemv { a, x, .. } => vec![*a, *x],
            OpaqueOp::Restrict { fine, .. } => vec![*fine],
            OpaqueOp::Prolong { coarse, .. } => vec![*coarse],
        }
    }

    /// Buffers written by the builtin.
    pub fn written_buffers(&self) -> Vec<BufferId> {
        match self {
            OpaqueOp::SpMvCsr { y, .. } => vec![*y],
            OpaqueOp::Gemv { y, .. } => vec![*y],
            OpaqueOp::Restrict { coarse, .. } => vec![*coarse],
            OpaqueOp::Prolong { fine, .. } => vec![*fine],
        }
    }
}

/// One stage of a kernel module.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelStage {
    /// A dense loop.
    Loop(LoopKernel),
    /// An opaque builtin.
    Opaque(OpaqueOp),
}

/// A compilable/executable kernel: a sequence of stages over a set of buffers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelModule {
    /// The stages, executed in order.
    pub stages: Vec<KernelStage>,
    /// Role of each buffer, indexed by [`BufferId`].
    pub roles: Vec<BufferRole>,
}

impl KernelModule {
    /// Creates a module over `num_buffers` buffers, all initially [`BufferRole::Input`].
    pub fn new(num_buffers: u32) -> Self {
        KernelModule {
            stages: Vec::new(),
            roles: vec![BufferRole::Input; num_buffers as usize],
        }
    }

    /// Number of buffers (arguments plus locals).
    pub fn num_buffers(&self) -> u32 {
        self.roles.len() as u32
    }

    /// Sets the role of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is out of range.
    pub fn set_role(&mut self, buffer: BufferId, role: BufferRole) {
        self.roles[buffer.0 as usize] = role;
    }

    /// Role of a buffer.
    pub fn role(&self, buffer: BufferId) -> BufferRole {
        self.roles[buffer.0 as usize]
    }

    /// Adds a fresh task-local buffer and returns its id.
    pub fn add_local(&mut self) -> BufferId {
        self.roles.push(BufferRole::Local);
        BufferId(self.roles.len() as u32 - 1)
    }

    /// Appends a loop stage.
    pub fn push_loop(&mut self, kernel: LoopKernel) {
        self.stages.push(KernelStage::Loop(kernel));
    }

    /// Appends an opaque stage.
    pub fn push_opaque(&mut self, op: OpaqueOp) {
        self.stages.push(KernelStage::Opaque(op));
    }

    /// Number of loop stages currently in the module.
    pub fn num_loop_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, KernelStage::Loop(_)))
            .count()
    }

    /// Number of stages overall (each stage becomes one GPU kernel launch).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total loop-body operations across all loop stages (a proxy for code
    /// size used by the compile-time model).
    pub fn total_ops(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                KernelStage::Loop(l) => l.ops.len(),
                KernelStage::Opaque(_) => 8,
            })
            .sum()
    }

    /// Returns a copy of this module with every buffer id rewritten through
    /// `map` (indexed by the old buffer id). Used when splicing a generated
    /// task body into a fused module whose argument order differs.
    ///
    /// # Panics
    ///
    /// Panics if the map does not cover every buffer referenced by the module.
    pub fn remap_buffers(&self, map: &[BufferId]) -> KernelModule {
        let remap = |b: BufferId| -> BufferId {
            *map.get(b.0 as usize)
                .unwrap_or_else(|| panic!("buffer {:?} missing from remap table", b))
        };
        let mut out = self.clone();
        for stage in &mut out.stages {
            match stage {
                KernelStage::Loop(l) => {
                    l.domain = remap(l.domain);
                    for op in &mut l.ops {
                        match op {
                            LoopOp::Load { buffer, .. }
                            | LoopOp::LoadScalar { buffer, .. }
                            | LoopOp::Store { buffer, .. }
                            | LoopOp::Reduce { buffer, .. } => *buffer = remap(*buffer),
                            _ => {}
                        }
                    }
                }
                KernelStage::Opaque(op) => {
                    let remap_all = |ids: &mut [&mut BufferId]| {
                        for id in ids {
                            **id = remap(**id);
                        }
                    };
                    match op {
                        OpaqueOp::SpMvCsr {
                            pos,
                            crd,
                            vals,
                            x,
                            y,
                            ..
                        } => remap_all(&mut [pos, crd, vals, x, y]),
                        OpaqueOp::Gemv { a, x, y } => remap_all(&mut [a, x, y]),
                        OpaqueOp::Restrict { fine, coarse } => remap_all(&mut [fine, coarse]),
                        OpaqueOp::Prolong { coarse, fine } => remap_all(&mut [coarse, fine]),
                    }
                }
            }
        }
        out
    }

    /// Appends all stages of `other` (whose buffer ids already refer to this
    /// module's buffer table) after this module's stages.
    pub fn append(&mut self, other: KernelModule) {
        self.stages.extend(other.stages);
    }

    /// Shifts every scalar-parameter index in the module by `offset`. Used
    /// when composing the bodies of several tasks into one fused kernel whose
    /// scalar parameter list is the concatenation of the constituent tasks'
    /// scalars.
    pub fn offset_params(&mut self, offset: usize) {
        for stage in &mut self.stages {
            if let KernelStage::Loop(l) = stage {
                for op in &mut l.ops {
                    if let LoopOp::Param { index, .. } = op {
                        *index += offset;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    fn simple_add(out: BufferId, a: BufferId, b: BufferId) -> LoopKernel {
        let mut lb = LoopBuilder::new("add", out);
        let (x, y) = (lb.load(a), lb.load(b));
        let s = lb.add(x, y);
        lb.store(out, s);
        lb.finish()
    }

    #[test]
    fn loop_kernel_buffer_queries() {
        let k = simple_add(BufferId(2), BufferId(0), BufferId(1));
        assert_eq!(k.loaded_buffers(), vec![BufferId(0), BufferId(1)]);
        assert_eq!(k.written_buffers(), vec![BufferId(2)]);
        assert_eq!(k.arith_ops(), 1);
        assert_eq!(k.num_values(), 3);
    }

    #[test]
    fn module_roles_and_locals() {
        let mut m = KernelModule::new(2);
        assert_eq!(m.role(BufferId(0)), BufferRole::Input);
        m.set_role(BufferId(1), BufferRole::Output);
        let local = m.add_local();
        assert_eq!(local, BufferId(2));
        assert_eq!(m.role(local), BufferRole::Local);
        assert_eq!(m.num_buffers(), 3);
    }

    #[test]
    fn remap_buffers_rewrites_everything() {
        let mut m = KernelModule::new(3);
        m.push_loop(simple_add(BufferId(2), BufferId(0), BufferId(1)));
        m.push_opaque(OpaqueOp::Gemv {
            a: BufferId(0),
            x: BufferId(1),
            y: BufferId(2),
        });
        let remapped = m.remap_buffers(&[BufferId(5), BufferId(6), BufferId(7)]);
        match &remapped.stages[0] {
            KernelStage::Loop(l) => {
                assert_eq!(l.domain, BufferId(7));
                assert_eq!(l.loaded_buffers(), vec![BufferId(5), BufferId(6)]);
            }
            _ => panic!("expected loop stage"),
        }
        match &remapped.stages[1] {
            KernelStage::Opaque(OpaqueOp::Gemv { a, x, y }) => {
                assert_eq!((*a, *x, *y), (BufferId(5), BufferId(6), BufferId(7)));
            }
            _ => panic!("expected gemv stage"),
        }
    }

    #[test]
    #[should_panic]
    fn remap_missing_entry_panics() {
        let mut m = KernelModule::new(2);
        m.push_loop(simple_add(BufferId(1), BufferId(0), BufferId(0)));
        let _ = m.remap_buffers(&[BufferId(0)]);
    }

    #[test]
    fn reduce_op_identities() {
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(ReduceOp::Min.apply(1.0, 2.0), 1.0);
    }

    #[test]
    fn index_width_bytes() {
        assert_eq!(IndexWidth::U32.bytes(), 4);
        assert_eq!(IndexWidth::U64.bytes(), 8);
    }

    #[test]
    fn opaque_read_write_sets() {
        let op = OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U32,
        };
        assert_eq!(op.read_buffers().len(), 4);
        assert_eq!(op.written_buffers(), vec![BufferId(4)]);
        assert_eq!(op.name(), "spmv_csr");
    }

    #[test]
    fn total_ops_counts_opaque_stages() {
        let mut m = KernelModule::new(3);
        m.push_opaque(OpaqueOp::Gemv {
            a: BufferId(0),
            x: BufferId(1),
            y: BufferId(2),
        });
        assert!(m.total_ops() > 0);
        assert_eq!(m.num_loop_stages(), 0);
        assert_eq!(m.num_stages(), 1);
    }
}
