//! The JIT-closure backend: loop nests lowered at compile time into
//! pre-resolved, bound execution bodies.
//!
//! Where the [`crate::Interpreter`] re-matches every [`LoopOp`] — and
//! re-resolves every buffer id, operator and SSA guard — for every element of
//! every iteration, this backend does all of that resolution **once per
//! module** at compile time:
//!
//! * buffer and value ids are resolved to raw slice indices,
//! * operators and reduction folds are resolved through the same host
//!   functions the interpreter evaluates with (bitwise-identical results by
//!   construction); the hot arithmetic ops (`Add`/`Sub`/`Mul`/`Div`/`Neg`)
//!   are specialized into dedicated micro-ops so the steady state performs
//!   them inline instead of through a function pointer,
//! * SSA well-formedness is checked while lowering (a value used before
//!   definition is a compile error here instead of a per-element check, and
//!   per-element `defined` bookkeeping disappears entirely),
//! * loop-invariant ops (constants, scalar parameters, broadcast-scalar
//!   loads of buffers the loop never writes) are **hoisted** into a prelude
//!   that runs once per stage execution instead of once per element,
//! * the remaining ops execute **chunked op-at-a-time**: the loop domain is
//!   processed in cache-resident chunks of [`CHUNK`] elements, and each
//!   micro-op streams over the whole chunk in a tight, vectorizable inner
//!   loop — dispatch cost is paid once per op per chunk instead of once per
//!   op per element, which is where the steady-state speedup over the
//!   interpreter comes from.
//!
//! Chunked execution reorders operations *across elements within a chunk*,
//! which is observable only through element-0 side channels (a broadcast
//! load of a buffer the same loop writes, or two reductions folding into one
//! accumulator, where float folds are order-sensitive). Lowering detects
//! those patterns and falls back to an exact per-element schedule, so every
//! module — including adversarial ones from the equivalence proptest —
//! remains bitwise-identical to the interpreter.
//!
//! Validation that depends on runtime information (buffer presence and
//! lengths) still happens at execute time, once per stage, from lists
//! precomputed at compile time — mirroring the interpreter's error contract.
//!
//! This is the "real JIT" of the ROADMAP's multi-backend item: it has a
//! genuine one-time compilation cost (priced by
//! [`KernelBackend::compile_cost`] above the interpreter's calibration) and a
//! measurably faster steady state (`cargo run --release --bin
//! kernel_backends`), which memoization then amortizes exactly as §5.2 of
//! the paper describes.

use std::sync::Arc;

use crate::backend::{BackendKind, CompiledKernel, KernelBackend};
use crate::cost::CompileTimeModel;
use crate::interp::{self, buffer_len, ExecError};
use crate::ir::{
    BinaryOp, BufferId, KernelModule, KernelStage, LoopKernel, LoopOp, OpaqueOp, ReduceOp,
    UnaryOp, ValueId,
};

/// Fallback surcharge over the interpreter's baseline calibration, used only
/// when `BENCH_compile_calibration.json` has no fitted entry for this backend
/// (see [`CompileTimeModel::calibrated`]): every op is resolved, specialized
/// and bound at compile time, historically asserted as a 25% surcharge before
/// the `calibrate` binary measured the real ratio.
pub const CLOSURE_COMPILE_FACTOR: f64 = 1.25;

/// Elements processed per op-at-a-time chunk. Sized so a fused window's SSA
/// value rows (`num_values × CHUNK × 8` bytes) stay L1-resident while still
/// amortizing dispatch ~64×.
pub const CHUNK: usize = 64;

/// One pre-resolved micro-op. All ids are raw indices; operator variants the
/// steady state hits hardest are specialized so they execute inline.
///
/// Shared with [`crate::simd::SimdBackend`], which reuses this lowering (and
/// its hoisting + schedule-selection analysis) and re-executes the same
/// micro-op streams over arrays-of-lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    /// `values[dst] = buffers[buf][i]`
    Load { dst: u32, buf: u32 },
    /// `values[dst] = buffers[buf][0]` (non-hoistable broadcast: the loop
    /// also writes `buf`, so the interpreter would observe updates).
    LoadScalar { dst: u32, buf: u32 },
    /// `values[dst] = imm` (constants; prelude only).
    Set { dst: u32, imm: f64 },
    /// `values[dst] = scalars[idx]` (prelude only; presence checked first).
    Param { dst: u32, idx: u32 },
    /// Specialized inline arithmetic.
    Neg { dst: u32, a: u32 },
    Add { dst: u32, a: u32, b: u32 },
    Sub { dst: u32, a: u32, b: u32 },
    Mul { dst: u32, a: u32, b: u32 },
    Div { dst: u32, a: u32, b: u32 },
    /// Remaining unary operators through a pre-resolved function pointer.
    Unary { dst: u32, a: u32, f: fn(f64) -> f64 },
    /// Remaining binary operators through a pre-resolved function pointer.
    Binary {
        dst: u32,
        a: u32,
        b: u32,
        f: fn(f64, f64) -> f64,
    },
    /// `buffers[buf][i] = values[src]`
    Store { buf: u32, src: u32 },
    /// `buffers[buf][0] = fold(buffers[buf][0], values[src])`
    Reduce { buf: u32, src: u32, op: ReduceOp },
}

#[inline]
pub(crate) fn run_instr(
    instr: Instr,
    values: &mut [f64],
    buffers: &mut [Vec<f64>],
    scalars: &[f64],
    i: usize,
) {
    match instr {
        Instr::Load { dst, buf } => values[dst as usize] = buffers[buf as usize][i],
        Instr::LoadScalar { dst, buf } => values[dst as usize] = buffers[buf as usize][0],
        Instr::Set { dst, imm } => values[dst as usize] = imm,
        Instr::Param { dst, idx } => values[dst as usize] = scalars[idx as usize],
        Instr::Neg { dst, a } => values[dst as usize] = -values[a as usize],
        Instr::Add { dst, a, b } => {
            values[dst as usize] = values[a as usize] + values[b as usize]
        }
        Instr::Sub { dst, a, b } => {
            values[dst as usize] = values[a as usize] - values[b as usize]
        }
        Instr::Mul { dst, a, b } => {
            values[dst as usize] = values[a as usize] * values[b as usize]
        }
        Instr::Div { dst, a, b } => {
            values[dst as usize] = values[a as usize] / values[b as usize]
        }
        Instr::Unary { dst, a, f } => values[dst as usize] = f(values[a as usize]),
        Instr::Binary { dst, a, b, f } => {
            values[dst as usize] = f(values[a as usize], values[b as usize])
        }
        Instr::Store { buf, src } => buffers[buf as usize][i] = values[src as usize],
        Instr::Reduce { buf, src, op } => {
            buffers[buf as usize][0] = op.apply(buffers[buf as usize][0], values[src as usize])
        }
    }
}

/// Chunked op-at-a-time execution (the fast path): invariants are splatted
/// across a chunk row once, then every micro-op streams over CHUNK-element
/// slices of the SSA scratch table. Fold order inside reductions is the
/// element order, so results stay bitwise-identical to the interpreter for
/// every module this schedule is selected for (see the lowering conditions).
fn run_vectorized(l: &CompiledLoop, buffers: &mut [Vec<f64>], scalars: &[f64], n: usize) {
    let mut scratch = vec![f64::NAN; l.num_values.max(1) * CHUNK];
    for &instr in &l.prelude {
        let (dst, v) = match instr {
            Instr::Set { dst, imm } => (dst, imm),
            Instr::Param { dst, idx } => (dst, scalars[idx as usize]),
            Instr::LoadScalar { dst, buf } => (dst, buffers[buf as usize][0]),
            _ => unreachable!("only invariant ops are hoisted"),
        };
        let off = dst as usize * CHUNK;
        scratch[off..off + CHUNK].fill(v);
    }
    let mut base = 0usize;
    while base < n {
        let len = CHUNK.min(n - base);
        for &instr in &l.body {
            match instr {
                Instr::Load { dst, buf } => {
                    let off = dst as usize * CHUNK;
                    scratch[off..off + len]
                        .copy_from_slice(&buffers[buf as usize][base..base + len]);
                }
                Instr::Neg { dst, a } => {
                    let (d, a) = (dst as usize * CHUNK, a as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = -scratch[a + j];
                    }
                }
                Instr::Add { dst, a, b } => {
                    let (d, a, b) = (dst as usize * CHUNK, a as usize * CHUNK, b as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = scratch[a + j] + scratch[b + j];
                    }
                }
                Instr::Sub { dst, a, b } => {
                    let (d, a, b) = (dst as usize * CHUNK, a as usize * CHUNK, b as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = scratch[a + j] - scratch[b + j];
                    }
                }
                Instr::Mul { dst, a, b } => {
                    let (d, a, b) = (dst as usize * CHUNK, a as usize * CHUNK, b as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = scratch[a + j] * scratch[b + j];
                    }
                }
                Instr::Div { dst, a, b } => {
                    let (d, a, b) = (dst as usize * CHUNK, a as usize * CHUNK, b as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = scratch[a + j] / scratch[b + j];
                    }
                }
                Instr::Unary { dst, a, f } => {
                    let (d, a) = (dst as usize * CHUNK, a as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = f(scratch[a + j]);
                    }
                }
                Instr::Binary { dst, a, b, f } => {
                    let (d, a, b) = (dst as usize * CHUNK, a as usize * CHUNK, b as usize * CHUNK);
                    for j in 0..len {
                        scratch[d + j] = f(scratch[a + j], scratch[b + j]);
                    }
                }
                Instr::Store { buf, src } => {
                    let off = src as usize * CHUNK;
                    buffers[buf as usize][base..base + len]
                        .copy_from_slice(&scratch[off..off + len]);
                }
                Instr::Reduce { buf, src, op } => {
                    let off = src as usize * CHUNK;
                    let mut acc = buffers[buf as usize][0];
                    match op {
                        ReduceOp::Sum => {
                            for j in 0..len {
                                acc += scratch[off + j];
                            }
                        }
                        ReduceOp::Max => {
                            for j in 0..len {
                                acc = acc.max(scratch[off + j]);
                            }
                        }
                        ReduceOp::Min => {
                            for j in 0..len {
                                acc = acc.min(scratch[off + j]);
                            }
                        }
                    }
                    buffers[buf as usize][0] = acc;
                }
                Instr::LoadScalar { .. } | Instr::Set { .. } | Instr::Param { .. } => {
                    unreachable!("invariant ops are always hoisted on the vectorized path")
                }
            }
        }
        base += len;
    }
}

/// A loop stage lowered to a hoisted prelude plus a body, with the
/// precomputed validation lists the interpreter would otherwise rebuild per
/// execution. Shared with the SIMD backend, which layers a lane-parallel
/// schedule on top of the same lowering.
#[derive(Debug)]
pub(crate) struct CompiledLoop {
    /// Buffer defining the iteration domain.
    pub(crate) domain: BufferId,
    /// Elementwise-accessed buffers with a "is reduction target" flag
    /// (reduction targets are exempt from the length check).
    pub(crate) elem_buffers: Vec<(BufferId, bool)>,
    /// Buffers read as broadcast scalars (must be non-empty).
    pub(crate) scalar_buffers: Vec<BufferId>,
    /// Scalar-parameter indices in first-use order (checked before the loop
    /// runs, so the error matches the interpreter's first failing `Param`).
    pub(crate) params_in_order: Vec<usize>,
    /// Size of the SSA scratch table.
    pub(crate) num_values: usize,
    /// Loop-invariant micro-ops, run once per stage execution.
    pub(crate) prelude: Vec<Instr>,
    /// The body micro-ops.
    pub(crate) body: Vec<Instr>,
    /// Whether the body may be reordered across elements within a chunk (the
    /// fast path) or must run one element at a time (exact interpreter
    /// interleaving for modules with element-0 side channels).
    pub(crate) vectorized: bool,
}

impl CompiledLoop {
    /// Runtime validation shared by the chunked backends: checks buffer
    /// presence, lengths against the iteration domain, broadcast-scalar
    /// non-emptiness and (for non-empty domains) scalar-parameter presence —
    /// the same contract, in the same order, as the interpreter. Returns the
    /// domain length; `0` means the stage is a no-op.
    pub(crate) fn check(&self, buffers: &[Vec<f64>]) -> Result<usize, ExecError> {
        let n = buffer_len(buffers, self.domain)?;
        for &(b, is_reduction_target) in &self.elem_buffers {
            let len = buffer_len(buffers, b)?;
            if !is_reduction_target && len < n {
                return Err(ExecError::LengthMismatch {
                    domain: self.domain,
                    buffer: b,
                });
            }
        }
        for &b in &self.scalar_buffers {
            if buffer_len(buffers, b)? == 0 {
                return Err(ExecError::LengthMismatch {
                    domain: self.domain,
                    buffer: b,
                });
            }
        }
        Ok(n)
    }

    /// Checks scalar-parameter presence in first-use order. Like the
    /// interpreter, a missing scalar only errors once the loop actually reads
    /// it, so this runs only for non-empty domains.
    pub(crate) fn check_params(&self, scalars: &[f64]) -> Result<(), ExecError> {
        for &p in &self.params_in_order {
            if p >= scalars.len() {
                return Err(ExecError::MissingParam(p));
            }
        }
        Ok(())
    }

    /// The exact per-element schedule: interpreter interleaving for modules
    /// with element-0 side channels (and the shared fallback of the SIMD
    /// backend). The caller has already validated via [`Self::check`].
    pub(crate) fn run_elementwise(
        &self,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
        n: usize,
    ) {
        let mut values = vec![f64::NAN; self.num_values];
        for &instr in &self.prelude {
            run_instr(instr, &mut values, buffers, scalars, 0);
        }
        for i in 0..n {
            for &instr in &self.body {
                run_instr(instr, &mut values, buffers, scalars, i);
            }
        }
    }
}

/// One compiled stage.
#[derive(Debug)]
enum CompiledStage {
    Loop(CompiledLoop),
    /// Opaque builtins dispatch once per stage; their inner loops are already
    /// native Rust, so they are shared verbatim with the interpreter.
    Opaque(OpaqueOp),
}

/// Artifact of the [`ClosureBackend`].
#[derive(Debug)]
struct ClosureCompiled {
    module: KernelModule,
    stages: Vec<CompiledStage>,
}

/// The JIT-closure backend. See the module documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosureBackend;

impl KernelBackend for ClosureBackend {
    fn id(&self) -> &'static str {
        BackendKind::Closure.id()
    }

    fn compile(&self, module: &KernelModule) -> Result<Arc<dyn CompiledKernel>, ExecError> {
        let stages = module
            .stages
            .iter()
            .map(|stage| match stage {
                KernelStage::Loop(l) => lower_loop(l).map(CompiledStage::Loop),
                KernelStage::Opaque(op) => Ok(CompiledStage::Opaque(op.clone())),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(ClosureCompiled {
            module: module.clone(),
            stages,
        }))
    }

    fn compile_cost(&self, module: &KernelModule, model: &CompileTimeModel) -> f64 {
        // Surcharge over `model` (the Figure 13 anchor) taken from the fitted
        // per-backend calibration, not an asserted constant.
        model.calibrated(self.id()).compile_time(module)
    }
}

impl CompiledKernel for ClosureCompiled {
    fn module(&self) -> &KernelModule {
        &self.module
    }

    fn backend_id(&self) -> &'static str {
        BackendKind::Closure.id()
    }

    fn execute_stage(
        &self,
        stage: usize,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError> {
        match &self.stages[stage] {
            CompiledStage::Opaque(op) => interp::run_opaque(op, buffers),
            CompiledStage::Loop(l) => {
                let n = l.check(buffers)?;
                if n == 0 {
                    return Ok(());
                }
                l.check_params(scalars)?;
                if l.vectorized {
                    run_vectorized(l, buffers, scalars, n);
                } else {
                    l.run_elementwise(buffers, scalars, n);
                }
                Ok(())
            }
        }
    }
}

/// Lowers one loop body into a [`CompiledLoop`], checking SSA
/// well-formedness, hoisting loop-invariant ops and selecting the execution
/// schedule as it goes. Shared with the SIMD backend.
pub(crate) fn lower_loop(l: &LoopKernel) -> Result<CompiledLoop, ExecError> {
    let num_values = l.num_values();
    // Assignment counts: hoisting is only sound for values assigned exactly
    // once (true SSA); malformed double assignments take the exact
    // per-element schedule.
    let mut assignments = vec![0u32; num_values];
    for op in &l.ops {
        if let Some(dst) = op.dst() {
            assignments[dst.0 as usize] += 1;
        }
    }
    // Gaps (ids assigned zero times) are fine — dead-code elimination leaves
    // them; only double assignments break single-assignment reasoning.
    let ssa = assignments.iter().all(|&c| c <= 1);
    let written = l.written_buffers();

    // Element-0 side channels that make chunked execution observable:
    // broadcast loads of written buffers, reduce targets that are otherwise
    // touched by the loop, or two folds sharing one accumulator (float folds
    // are order-sensitive).
    let mut reduce_targets: Vec<BufferId> = Vec::new();
    let mut shared_accumulator = false;
    for op in &l.ops {
        if let LoopOp::Reduce { buffer, .. } = op {
            if reduce_targets.contains(buffer) {
                shared_accumulator = true;
            }
            reduce_targets.push(*buffer);
        }
    }
    let scalar_load_of_written = l
        .ops
        .iter()
        .any(|op| matches!(op, LoopOp::LoadScalar { buffer, .. } if written.contains(buffer)));
    let reduce_target_touched = l.ops.iter().any(|op| match op {
        LoopOp::Load { buffer, .. }
        | LoopOp::LoadScalar { buffer, .. }
        | LoopOp::Store { buffer, .. } => reduce_targets.contains(buffer),
        _ => false,
    });
    let vectorized = ssa && !scalar_load_of_written && !shared_accumulator && !reduce_target_touched;

    let mut defined = vec![false; num_values];
    let mut params_in_order = Vec::new();
    let mut prelude = Vec::new();
    let mut body = Vec::new();
    for op in &l.ops {
        let read = |v: ValueId| -> Result<u32, ExecError> {
            if !defined.get(v.0 as usize).copied().unwrap_or(false) {
                return Err(ExecError::UndefinedValue(v));
            }
            Ok(v.0)
        };
        // On the per-element path a value may only be hoisted if it is
        // assigned exactly once; the vectorized path requires full SSA, so
        // there every invariant hoists.
        let once = |dst: ValueId| assignments[dst.0 as usize] == 1;
        match *op {
            LoopOp::Load { dst, buffer } => {
                defined[dst.0 as usize] = true;
                body.push(Instr::Load {
                    dst: dst.0,
                    buf: buffer.0,
                });
            }
            LoopOp::LoadScalar { dst, buffer } => {
                defined[dst.0 as usize] = true;
                let instr = Instr::LoadScalar {
                    dst: dst.0,
                    buf: buffer.0,
                };
                // Broadcast loads are invariant unless this loop writes the
                // buffer (a store or a reduction would be observed by later
                // elements under the interpreter).
                if once(dst) && !written.contains(&buffer) {
                    prelude.push(instr);
                } else {
                    body.push(instr);
                }
            }
            LoopOp::Const { dst, value } => {
                defined[dst.0 as usize] = true;
                let instr = Instr::Set {
                    dst: dst.0,
                    imm: value,
                };
                if once(dst) {
                    prelude.push(instr);
                } else {
                    body.push(instr);
                }
            }
            LoopOp::Param { dst, index } => {
                defined[dst.0 as usize] = true;
                params_in_order.push(index);
                let instr = Instr::Param {
                    dst: dst.0,
                    idx: index as u32,
                };
                if once(dst) {
                    prelude.push(instr);
                } else {
                    body.push(instr);
                }
            }
            LoopOp::Unary { dst, op, a } => {
                let a = read(a)?;
                defined[dst.0 as usize] = true;
                body.push(match op {
                    UnaryOp::Neg => Instr::Neg { dst: dst.0, a },
                    other => Instr::Unary {
                        dst: dst.0,
                        a,
                        f: interp::unary_fn(other),
                    },
                });
            }
            LoopOp::Binary { dst, op, a, b } => {
                let a = read(a)?;
                let b = read(b)?;
                defined[dst.0 as usize] = true;
                body.push(match op {
                    BinaryOp::Add => Instr::Add { dst: dst.0, a, b },
                    BinaryOp::Sub => Instr::Sub { dst: dst.0, a, b },
                    BinaryOp::Mul => Instr::Mul { dst: dst.0, a, b },
                    BinaryOp::Div => Instr::Div { dst: dst.0, a, b },
                    other => Instr::Binary {
                        dst: dst.0,
                        a,
                        b,
                        f: interp::binary_fn(other),
                    },
                });
            }
            LoopOp::Store { buffer, src } => {
                let src = read(src)?;
                body.push(Instr::Store {
                    buf: buffer.0,
                    src,
                });
            }
            LoopOp::Reduce { buffer, op, src } => {
                let src = read(src)?;
                body.push(Instr::Reduce {
                    buf: buffer.0,
                    src,
                    op,
                });
            }
        }
    }
    let elem_buffers = l
        .loaded_buffers()
        .into_iter()
        .chain(l.written_buffers())
        .map(|b| {
            let is_reduction_target = l
                .ops
                .iter()
                .any(|op| matches!(op, LoopOp::Reduce { buffer, .. } if *buffer == b));
            (b, is_reduction_target)
        })
        .collect();
    Ok(CompiledLoop {
        domain: l.domain,
        elem_buffers,
        scalar_buffers: l.scalar_loaded_buffers(),
        params_in_order,
        num_values,
        prelude,
        body,
        vectorized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::interp::Interpreter;
    use crate::ir::{BufferRole, IndexWidth};

    fn both(module: &KernelModule, bufs: &[Vec<f64>], scalars: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut a = bufs.to_vec();
        Interpreter::new().execute(module, &mut a, scalars).unwrap();
        let mut b = bufs.to_vec();
        ClosureBackend
            .compile(module)
            .unwrap()
            .execute(&mut b, scalars)
            .unwrap();
        (a, b)
    }

    #[test]
    fn closure_matches_interpreter_on_arithmetic() {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut lb = LoopBuilder::new("mix", BufferId(0));
        let x = lb.load(BufferId(0));
        let y = lb.load(BufferId(1));
        let s = lb.param(0);
        let e = lb.unary(UnaryOp::Exp, x);
        let d = lb.binary(BinaryOp::Div, y, e);
        let v = lb.mul(d, s);
        lb.store(BufferId(2), v);
        m.push_loop(lb.finish());
        let bufs = vec![vec![0.5, -1.0, 2.0], vec![3.0, 4.0, 5.0], vec![0.0; 3]];
        let (a, b) = both(&m, &bufs, &[1.25]);
        assert_eq!(a, b);
        assert!(a[2].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn closure_matches_interpreter_on_reductions_and_scalars() {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("dot", BufferId(0));
        let x = lb.load(BufferId(0));
        let s = lb.load_scalar(BufferId(1));
        let p = lb.mul(x, s);
        lb.reduce(BufferId(2), ReduceOp::Sum, p);
        m.push_loop(lb.finish());
        let bufs = vec![vec![1.0, 2.0, 3.0], vec![2.0], vec![0.5]];
        let (a, b) = both(&m, &bufs, &[]);
        assert_eq!(a, b);
        assert_eq!(a[2][0], 0.5 + 12.0);
    }

    #[test]
    fn scalar_load_of_reduced_buffer_is_not_hoisted() {
        // A loop that reduces into a buffer *and* broadcast-loads it: each
        // element must observe the running accumulator, exactly like the
        // interpreter (this is the case hoisting must not break).
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("prefixy", BufferId(0));
        let acc = lb.load_scalar(BufferId(1)); // running value
        let x = lb.load(BufferId(0));
        let contrib = lb.mul(x, acc);
        lb.reduce(BufferId(1), ReduceOp::Sum, contrib);
        m.push_loop(lb.finish());
        let bufs = vec![vec![1.0, 2.0, 3.0], vec![1.0]];
        let (a, b) = both(&m, &bufs, &[]);
        assert_eq!(a, b);
        // acc evolves: 1 + 1*1 = 2; 2 + 2*2 = 6; 6 + 3*6 = 24.
        assert_eq!(a[1][0], 24.0);
    }

    #[test]
    fn closure_matches_interpreter_on_opaque_stages() {
        let mut m = KernelModule::new(5);
        m.push_opaque(OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U32,
        });
        let bufs = vec![
            vec![0.0, 2.0, 3.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0],
            vec![0.0, 0.0],
        ];
        let (a, b) = both(&m, &bufs, &[]);
        assert_eq!(a, b);
        assert_eq!(a[4], vec![14.0, 15.0]);
    }

    #[test]
    fn error_contract_matches_the_interpreter() {
        // Missing scalar parameter.
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        let p = lb.param(0);
        let v = lb.mul(x, p);
        lb.store(BufferId(1), v);
        m.push_loop(lb.finish());
        let compiled = ClosureBackend.compile(&m).unwrap();
        let mut bufs = vec![vec![1.0], vec![0.0]];
        assert_eq!(
            compiled.execute(&mut bufs, &[]),
            Err(ExecError::MissingParam(0))
        );
        // Missing buffer.
        let mut short = vec![vec![1.0]];
        assert!(matches!(
            compiled.execute(&mut short, &[1.0]),
            Err(ExecError::MissingBuffer(_))
        ));
        // Length mismatch.
        let mut mismatched = vec![vec![1.0, 2.0], vec![0.0]];
        assert!(matches!(
            compiled.execute(&mut mismatched, &[1.0]),
            Err(ExecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn malformed_ssa_is_a_compile_error() {
        let mut m = KernelModule::new(2);
        let kernel = LoopKernel {
            name: "bad".into(),
            domain: BufferId(0),
            ops: vec![LoopOp::Store {
                buffer: BufferId(1),
                src: ValueId(3), // never defined
            }],
            parallel: false,
        };
        m.push_loop(kernel);
        assert_eq!(
            ClosureBackend.compile(&m).err(),
            Some(ExecError::UndefinedValue(ValueId(3)))
        );
    }

    #[test]
    fn compile_cost_is_above_the_interpreter_calibration() {
        let mut m = KernelModule::new(2);
        let mut lb = LoopBuilder::new("id", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.store(BufferId(1), x);
        m.push_loop(lb.finish());
        let model = CompileTimeModel::default();
        assert!(
            ClosureBackend.compile_cost(&m, &model)
                > crate::backend::InterpBackend.compile_cost(&m, &model)
        );
    }
}
