//! Convenience builder for loop kernels.
//!
//! Generator functions (registered by the dense and sparse libraries) use
//! [`LoopBuilder`] to assemble the straight-line body of an elementwise loop
//! without manually numbering SSA values.

use crate::ir::{BinaryOp, BufferId, LoopKernel, LoopOp, ReduceOp, UnaryOp, ValueId};

/// Builds a [`LoopKernel`] one operation at a time.
///
/// ```
/// use kernel::builder::LoopBuilder;
/// use kernel::ir::BufferId;
///
/// // out[i] = 0.2 * (a[i] + b[i])
/// let mut b = LoopBuilder::new("scaled_add", BufferId(2));
/// let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
/// let sum = b.add(x, y);
/// let scale = b.constant(0.2);
/// let result = b.mul(scale, sum);
/// b.store(BufferId(2), result);
/// let kernel = b.finish();
/// assert_eq!(kernel.arith_ops(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    domain: BufferId,
    ops: Vec<LoopOp>,
    next_value: u32,
}

impl LoopBuilder {
    /// Starts a loop named `name` iterating over the length of `domain`.
    pub fn new(name: impl Into<String>, domain: BufferId) -> Self {
        LoopBuilder {
            name: name.into(),
            domain,
            ops: Vec::new(),
            next_value: 0,
        }
    }

    fn fresh(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        v
    }

    /// Loads element `i` of `buffer`.
    pub fn load(&mut self, buffer: BufferId) -> ValueId {
        let dst = self.fresh();
        self.ops.push(LoopOp::Load { dst, buffer });
        dst
    }

    /// Loads element 0 of `buffer` as a broadcast scalar (e.g. the result of
    /// an earlier reduction).
    pub fn load_scalar(&mut self, buffer: BufferId) -> ValueId {
        let dst = self.fresh();
        self.ops.push(LoopOp::LoadScalar { dst, buffer });
        dst
    }

    /// Materializes a constant.
    pub fn constant(&mut self, value: f64) -> ValueId {
        let dst = self.fresh();
        self.ops.push(LoopOp::Const { dst, value });
        dst
    }

    /// Reads the `index`-th scalar parameter of the kernel.
    pub fn param(&mut self, index: usize) -> ValueId {
        let dst = self.fresh();
        self.ops.push(LoopOp::Param { dst, index });
        dst
    }

    /// Emits a unary operation.
    pub fn unary(&mut self, op: UnaryOp, a: ValueId) -> ValueId {
        let dst = self.fresh();
        self.ops.push(LoopOp::Unary { dst, op, a });
        dst
    }

    /// Emits a binary operation.
    pub fn binary(&mut self, op: BinaryOp, a: ValueId, b: ValueId) -> ValueId {
        let dst = self.fresh();
        self.ops.push(LoopOp::Binary { dst, op, a, b });
        dst
    }

    /// `a + b`.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Mul, a, b)
    }

    /// `a / b`.
    pub fn div(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Div, a, b)
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Max, a, b)
    }

    /// `min(a, b)`.
    pub fn min(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Min, a, b)
    }

    /// `a^b`.
    pub fn pow(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(BinaryOp::Pow, a, b)
    }

    /// `-a`.
    pub fn neg(&mut self, a: ValueId) -> ValueId {
        self.unary(UnaryOp::Neg, a)
    }

    /// `sqrt(a)`.
    pub fn sqrt(&mut self, a: ValueId) -> ValueId {
        self.unary(UnaryOp::Sqrt, a)
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: ValueId) -> ValueId {
        self.unary(UnaryOp::Exp, a)
    }

    /// `ln(a)`.
    pub fn ln(&mut self, a: ValueId) -> ValueId {
        self.unary(UnaryOp::Ln, a)
    }

    /// `erf(a)`.
    pub fn erf(&mut self, a: ValueId) -> ValueId {
        self.unary(UnaryOp::Erf, a)
    }

    /// `|a|`.
    pub fn abs(&mut self, a: ValueId) -> ValueId {
        self.unary(UnaryOp::Abs, a)
    }

    /// Stores `src` into element `i` of `buffer`.
    pub fn store(&mut self, buffer: BufferId, src: ValueId) {
        self.ops.push(LoopOp::Store { buffer, src });
    }

    /// Accumulates `src` into element 0 of the scalar buffer `buffer`.
    pub fn reduce(&mut self, buffer: BufferId, op: ReduceOp, src: ValueId) {
        self.ops.push(LoopOp::Reduce { buffer, op, src });
    }

    /// Finishes the loop.
    pub fn finish(self) -> LoopKernel {
        LoopKernel {
            name: self.name,
            domain: self.domain,
            ops: self.ops,
            parallel: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sequential_value_ids() {
        let mut b = LoopBuilder::new("k", BufferId(0));
        let v0 = b.load(BufferId(0));
        let v1 = b.constant(1.0);
        let v2 = b.add(v0, v1);
        assert_eq!((v0, v1, v2), (ValueId(0), ValueId(1), ValueId(2)));
        b.store(BufferId(1), v2);
        let k = b.finish();
        assert_eq!(k.ops.len(), 4);
        assert_eq!(k.num_values(), 3);
        assert!(!k.parallel);
    }

    #[test]
    fn all_helpers_emit_ops() {
        let mut b = LoopBuilder::new("k", BufferId(0));
        let x = b.load(BufferId(0));
        let y = b.param(0);
        let _ = b.sub(x, y);
        let _ = b.mul(x, y);
        let _ = b.div(x, y);
        let _ = b.max(x, y);
        let _ = b.min(x, y);
        let _ = b.pow(x, y);
        let _ = b.neg(x);
        let _ = b.sqrt(x);
        let _ = b.exp(x);
        let _ = b.ln(x);
        let _ = b.erf(x);
        let _ = b.abs(x);
        b.reduce(BufferId(1), ReduceOp::Sum, x);
        let k = b.finish();
        assert_eq!(k.arith_ops(), 13);
    }
}
