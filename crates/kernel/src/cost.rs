//! Traffic, arithmetic and compile-time estimates for kernel modules.

use crate::ir::{KernelModule, KernelStage, LoopKernel, OpaqueOp};

/// Estimated execution resources of one kernel module on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Bytes moved through device memory.
    pub bytes: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Number of kernel launches (one per stage).
    pub launches: u64,
}

impl KernelCost {
    /// Adds another cost component.
    pub fn add(&mut self, other: KernelCost) {
        self.bytes += other.bytes;
        self.flops += other.flops;
        self.launches += other.launches;
    }
}

/// Bytes per double-precision element.
const F64_BYTES: u64 = 8;

/// Estimates the cost of a single loop stage over buffers of the given
/// lengths. Each distinct elementwise-accessed buffer contributes one
/// streaming pass over the loop domain; broadcast scalar loads and reduction
/// accumulators are negligible.
pub fn loop_cost(kernel: &LoopKernel, buffer_lens: &[usize]) -> KernelCost {
    let n = buffer_lens
        .get(kernel.domain.0 as usize)
        .copied()
        .unwrap_or(0) as u64;
    let mut streams: u64 = 0;
    let loaded = kernel.loaded_buffers();
    streams += loaded.len() as u64;
    for b in kernel.written_buffers() {
        // A buffer both loaded and stored is still a read stream plus a write
        // stream; count the write stream here.
        let is_reduction = kernel
            .ops
            .iter()
            .any(|op| matches!(op, crate::ir::LoopOp::Reduce { buffer, .. } if *buffer == b));
        if !is_reduction {
            streams += 1;
        }
    }
    KernelCost {
        bytes: streams * n * F64_BYTES,
        flops: kernel.arith_ops() as u64 * n,
        launches: 1,
    }
}

/// Estimates the cost of an opaque stage.
pub fn opaque_cost(op: &OpaqueOp, buffer_lens: &[usize]) -> KernelCost {
    let len = |b: crate::ir::BufferId| buffer_lens.get(b.0 as usize).copied().unwrap_or(0) as u64;
    match op {
        OpaqueOp::SpMvCsr {
            crd,
            x,
            y,
            index_width,
            ..
        } => {
            let nnz = len(*crd);
            let rows = len(*y);
            // Nonzero values and column indices stream once; row offsets and
            // the output stream once; the input vector is gathered.
            let bytes = nnz * (F64_BYTES + index_width.bytes())
                + (rows + 1) * index_width.bytes()
                + rows * F64_BYTES
                + len(*x) * F64_BYTES;
            KernelCost {
                bytes,
                flops: 2 * nnz,
                launches: 1,
            }
        }
        OpaqueOp::Gemv { a, x, y } => {
            let bytes = len(*a) * F64_BYTES + len(*x) * F64_BYTES + len(*y) * F64_BYTES;
            KernelCost {
                bytes,
                flops: 2 * len(*x) * len(*y),
                launches: 1,
            }
        }
        OpaqueOp::Restrict { fine, coarse } => KernelCost {
            bytes: (len(*fine) + len(*coarse)) * F64_BYTES,
            flops: len(*coarse),
            launches: 1,
        },
        OpaqueOp::Prolong { coarse, fine } => KernelCost {
            bytes: (len(*fine) + len(*coarse)) * F64_BYTES,
            flops: len(*fine),
            launches: 1,
        },
    }
}

/// Estimates the cost of executing a whole module over buffers of the given
/// lengths (one launch per stage).
pub fn module_cost(module: &KernelModule, buffer_lens: &[usize]) -> KernelCost {
    let mut total = KernelCost::default();
    for stage in &module.stages {
        let c = match stage {
            KernelStage::Loop(l) => loop_cost(l, buffer_lens),
            KernelStage::Opaque(op) => opaque_cost(op, buffer_lens),
        };
        total.add(c);
    }
    total
}

/// Model of JIT compilation time used to reproduce Figure 13.
///
/// Compilation cost grows with the size of the fused module: a fixed per-module
/// cost (pass setup, lowering, codegen to PTX/host code) plus a per-operation
/// cost. Compilation happens once per memoized window signature (Section 5.2),
/// so an application pays it only during warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileTimeModel {
    /// Fixed seconds per compiled module.
    pub base: f64,
    /// Seconds per loop-body operation in the module.
    pub per_op: f64,
    /// Seconds per stage (each stage lowers to a separate kernel).
    pub per_stage: f64,
}

impl Default for CompileTimeModel {
    fn default() -> Self {
        CompileTimeModel {
            base: 0.060,
            per_op: 0.0018,
            per_stage: 0.012,
        }
    }
}

impl CompileTimeModel {
    /// Estimated seconds to JIT-compile `module`.
    pub fn compile_time(&self, module: &KernelModule) -> f64 {
        self.base + self.per_op * module.total_ops() as f64 + self.per_stage * module.num_stages() as f64
    }

    /// The per-backend calibrated model: this model (the Figure 13 anchor,
    /// scaled to the paper's MLIR JIT) with each coefficient multiplied by
    /// the **measured** ratio of the backend's host compile cost to the
    /// interpreter's, taken from the fitted models in
    /// `BENCH_compile_calibration.json` (written by `cargo run --release
    /// --bin calibrate` and embedded at build time).
    ///
    /// The interpreter is the reference, so `calibrated("interp")` is exactly
    /// `self` (ratios of 1.0 multiply exactly). Ratios are floored at 1.0 —
    /// every lowering backend clones the module and then does strictly more
    /// work than the interpreter's wrap — and backends without a fitted entry
    /// fall back to their historical asserted surcharge factors.
    pub fn calibrated(&self, backend_id: &str) -> CompileTimeModel {
        let (reference, own) = (
            host_compile_model("interp"),
            host_compile_model(backend_id),
        );
        match (reference, own) {
            (Some(i), Some(o)) => CompileTimeModel {
                base: self.base * surcharge_ratio(o.base_ns, i.base_ns),
                per_op: self.per_op * surcharge_ratio(o.per_op_ns, i.per_op_ns),
                per_stage: self.per_stage * surcharge_ratio(o.per_stage_ns, i.per_stage_ns),
            },
            _ => {
                let f = fallback_factor(backend_id);
                CompileTimeModel {
                    base: self.base * f,
                    per_op: self.per_op * f,
                    per_stage: self.per_stage * f,
                }
            }
        }
    }
}

/// Host-measured compile-cost coefficients for one backend: mean wall-clock
/// nanoseconds of `KernelBackend::compile`, modeled as
/// `base_ns + per_op_ns · total_ops + per_stage_ns · num_stages` and fit by
/// least squares over a module-size grid (the `calibrate` binary in
/// `crates/bench`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCompileModel {
    /// Fixed nanoseconds per compiled module.
    pub base_ns: f64,
    /// Nanoseconds per loop-body operation.
    pub per_op_ns: f64,
    /// Nanoseconds per stage.
    pub per_stage_ns: f64,
}

impl HostCompileModel {
    /// Predicted host nanoseconds to compile a module of the given size.
    pub fn predict_ns(&self, total_ops: usize, num_stages: usize) -> f64 {
        self.base_ns + self.per_op_ns * total_ops as f64 + self.per_stage_ns * num_stages as f64
    }
}

/// The checked-in calibration, embedded at build time so `kernel` needs no
/// runtime file lookup (and no dependency on the `bench` crate, which
/// depends on this one). Regenerate with `cargo run --release --bin
/// calibrate`, then rebuild.
const CALIBRATION: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile_calibration.json"));

/// The fitted host compile model for `backend_id` from the embedded
/// calibration, or `None` if the file has no (finite, non-negative) entry.
/// The last matching line wins, mirroring `bench::parse_metric`.
pub fn host_compile_model(backend_id: &str) -> Option<HostCompileModel> {
    let needle = format!("\"backend\":\"{backend_id}\"");
    let line = CALIBRATION.lines().rev().find(|l| l.contains(&needle))?;
    let model = HostCompileModel {
        base_ns: json_num_field(line, "base_ns")?,
        per_op_ns: json_num_field(line, "per_op_ns")?,
        per_stage_ns: json_num_field(line, "per_stage_ns")?,
    };
    let sane = [model.base_ns, model.per_op_ns, model.per_stage_ns]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0);
    sane.then_some(model)
}

/// Extracts `"key":<number>` from one flat JSON line (no JSON dependency in
/// the offline environment; the schema is the shared `BENCH_*.json` one).
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let field_key = format!("\"{key}\":");
    let at = line.find(&field_key)?;
    let tail = &line[at + field_key.len()..];
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

/// Measured coefficient ratio of a backend over the interpreter reference,
/// floored at 1.0 (a lowering backend never does less work than the
/// interpreter's clone-and-wrap) and guarded against degenerate fits.
fn surcharge_ratio(own_ns: f64, reference_ns: f64) -> f64 {
    let r = own_ns / reference_ns;
    if r.is_finite() && r > 1.0 {
        r
    } else {
        1.0
    }
}

/// Historical asserted surcharges, used only when the calibration file has
/// no fitted entry for a backend.
fn fallback_factor(backend_id: &str) -> f64 {
    match backend_id {
        "closure" => crate::closure::CLOSURE_COMPILE_FACTOR,
        "simd" => crate::simd::SIMD_COMPILE_FACTOR,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferId, IndexWidth};

    fn add_kernel() -> LoopKernel {
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        b.finish()
    }

    #[test]
    fn loop_cost_counts_streams() {
        let c = loop_cost(&add_kernel(), &[100, 100, 100]);
        // 2 loads + 1 store = 3 streams of 100 elements.
        assert_eq!(c.bytes, 3 * 100 * 8);
        assert_eq!(c.flops, 100);
        assert_eq!(c.launches, 1);
    }

    #[test]
    fn module_cost_sums_stages() {
        let mut m = KernelModule::new(3);
        m.push_loop(add_kernel());
        m.push_loop(add_kernel());
        let c = module_cost(&m, &[100, 100, 100]);
        assert_eq!(c.launches, 2);
        assert_eq!(c.bytes, 2 * 3 * 100 * 8);
    }

    #[test]
    fn fused_module_moves_fewer_bytes_than_unfused() {
        // a + b -> c ; c + d -> e, where fusion + forwarding removes c.
        use crate::ir::BufferRole;
        use crate::passes::Pipeline;
        let mut m = KernelModule::new(5);
        m.set_role(BufferId(2), BufferRole::Local);
        m.push_loop(add_kernel());
        let mut b = LoopBuilder::new("add", BufferId(4));
        let (x, y) = (b.load(BufferId(2)), b.load(BufferId(3)));
        let s = b.add(x, y);
        b.store(BufferId(4), s);
        m.push_loop(b.finish());
        let lens = [100usize, 100, 100, 100, 100];
        let unfused = module_cost(&m, &lens);
        let fused = module_cost(&Pipeline::default().run(m, &lens).module, &lens);
        assert!(fused.bytes < unfused.bytes);
        assert!(fused.launches < unfused.launches);
        // Fused: 3 loads (a, b, d) + 1 store (e) = 4 streams vs 6 unfused.
        assert_eq!(fused.bytes, 4 * 100 * 8);
    }

    #[test]
    fn spmv_cost_reflects_index_width() {
        let op32 = OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U32,
        };
        let op64 = OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U64,
        };
        let lens = [101usize, 500, 500, 100, 100];
        assert!(opaque_cost(&op64, &lens).bytes > opaque_cost(&op32, &lens).bytes);
        assert_eq!(opaque_cost(&op32, &lens).flops, 1000);
    }

    #[test]
    fn gemv_cost_dominated_by_matrix() {
        let op = OpaqueOp::Gemv {
            a: BufferId(0),
            x: BufferId(1),
            y: BufferId(2),
        };
        let c = opaque_cost(&op, &[10_000, 100, 100]);
        assert!(c.bytes >= 10_000 * 8);
        assert_eq!(c.flops, 2 * 100 * 100);
    }

    #[test]
    fn compile_time_grows_with_module_size() {
        let model = CompileTimeModel::default();
        let mut small = KernelModule::new(3);
        small.push_loop(add_kernel());
        let mut large = KernelModule::new(3);
        for _ in 0..20 {
            large.push_loop(add_kernel());
        }
        assert!(model.compile_time(&large) > model.compile_time(&small));
        assert!(model.compile_time(&small) > 0.0);
    }

    #[test]
    fn checked_in_calibration_has_fitted_entries_for_every_backend() {
        for backend in ["interp", "closure", "simd"] {
            let fitted = host_compile_model(backend)
                .unwrap_or_else(|| panic!("no fitted calibration entry for {backend}"));
            for c in [fitted.base_ns, fitted.per_op_ns, fitted.per_stage_ns] {
                assert!(c.is_finite() && c >= 0.0, "{backend}: bad coefficient {c}");
            }
            // The fit must be monotonic in module size: more ops or more
            // stages never predict cheaper compilation.
            assert!(fitted.predict_ns(64, 4) >= fitted.predict_ns(8, 4));
            assert!(fitted.predict_ns(64, 8) >= fitted.predict_ns(64, 4));
            assert!(fitted.predict_ns(1, 1) > 0.0);
        }
    }

    #[test]
    fn calibrated_interp_is_exactly_the_anchor() {
        let anchor = CompileTimeModel::default();
        // Ratios of the reference over itself are exactly 1.0, so the
        // interpreter's simulated charge is bitwise-unchanged from the
        // pre-calibration reproduction.
        assert_eq!(anchor.calibrated("interp"), anchor);
    }

    #[test]
    fn calibrated_models_are_finite_monotonic_and_at_least_the_anchor() {
        let anchor = CompileTimeModel::default();
        let mut small = KernelModule::new(3);
        small.push_loop(add_kernel());
        let mut large = KernelModule::new(3);
        for _ in 0..20 {
            large.push_loop(add_kernel());
        }
        for backend in ["interp", "closure", "simd"] {
            let m = anchor.calibrated(backend);
            for c in [m.base, m.per_op, m.per_stage] {
                assert!(c.is_finite() && c > 0.0, "{backend}: bad coefficient {c}");
            }
            // Lowering backends pay at least the interpreter's anchor on
            // every coefficient (the ratio floor).
            assert!(m.base >= anchor.base && m.per_op >= anchor.per_op);
            assert!(m.per_stage >= anchor.per_stage);
            assert!(m.compile_time(&large) > m.compile_time(&small));
        }
    }

    #[test]
    fn unknown_backends_fall_back_to_asserted_factors() {
        let anchor = CompileTimeModel::default();
        // No fitted entry: an unknown id gets the neutral 1.0 factor.
        assert_eq!(anchor.calibrated("cranelift"), anchor);
        assert!(host_compile_model("cranelift").is_none());
    }

    #[test]
    fn json_num_field_parses_the_flat_schema() {
        let line = "{\"bench\":\"x\",\"backend\":\"simd\",\"base_ns\":321.500,\"per_op_ns\":4.125}";
        assert_eq!(json_num_field(line, "base_ns"), Some(321.5));
        assert_eq!(json_num_field(line, "per_op_ns"), Some(4.125));
        assert_eq!(json_num_field(line, "per_stage_ns"), None);
    }
}
