//! Traffic, arithmetic and compile-time estimates for kernel modules.

use crate::ir::{KernelModule, KernelStage, LoopKernel, OpaqueOp};

/// Estimated execution resources of one kernel module on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Bytes moved through device memory.
    pub bytes: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Number of kernel launches (one per stage).
    pub launches: u64,
}

impl KernelCost {
    /// Adds another cost component.
    pub fn add(&mut self, other: KernelCost) {
        self.bytes += other.bytes;
        self.flops += other.flops;
        self.launches += other.launches;
    }
}

/// Bytes per double-precision element.
const F64_BYTES: u64 = 8;

/// Estimates the cost of a single loop stage over buffers of the given
/// lengths. Each distinct elementwise-accessed buffer contributes one
/// streaming pass over the loop domain; broadcast scalar loads and reduction
/// accumulators are negligible.
pub fn loop_cost(kernel: &LoopKernel, buffer_lens: &[usize]) -> KernelCost {
    let n = buffer_lens
        .get(kernel.domain.0 as usize)
        .copied()
        .unwrap_or(0) as u64;
    let mut streams: u64 = 0;
    let loaded = kernel.loaded_buffers();
    streams += loaded.len() as u64;
    for b in kernel.written_buffers() {
        // A buffer both loaded and stored is still a read stream plus a write
        // stream; count the write stream here.
        let is_reduction = kernel
            .ops
            .iter()
            .any(|op| matches!(op, crate::ir::LoopOp::Reduce { buffer, .. } if *buffer == b));
        if !is_reduction {
            streams += 1;
        }
    }
    KernelCost {
        bytes: streams * n * F64_BYTES,
        flops: kernel.arith_ops() as u64 * n,
        launches: 1,
    }
}

/// Estimates the cost of an opaque stage.
pub fn opaque_cost(op: &OpaqueOp, buffer_lens: &[usize]) -> KernelCost {
    let len = |b: crate::ir::BufferId| buffer_lens.get(b.0 as usize).copied().unwrap_or(0) as u64;
    match op {
        OpaqueOp::SpMvCsr {
            crd,
            x,
            y,
            index_width,
            ..
        } => {
            let nnz = len(*crd);
            let rows = len(*y);
            // Nonzero values and column indices stream once; row offsets and
            // the output stream once; the input vector is gathered.
            let bytes = nnz * (F64_BYTES + index_width.bytes())
                + (rows + 1) * index_width.bytes()
                + rows * F64_BYTES
                + len(*x) * F64_BYTES;
            KernelCost {
                bytes,
                flops: 2 * nnz,
                launches: 1,
            }
        }
        OpaqueOp::Gemv { a, x, y } => {
            let bytes = len(*a) * F64_BYTES + len(*x) * F64_BYTES + len(*y) * F64_BYTES;
            KernelCost {
                bytes,
                flops: 2 * len(*x) * len(*y),
                launches: 1,
            }
        }
        OpaqueOp::Restrict { fine, coarse } => KernelCost {
            bytes: (len(*fine) + len(*coarse)) * F64_BYTES,
            flops: len(*coarse),
            launches: 1,
        },
        OpaqueOp::Prolong { coarse, fine } => KernelCost {
            bytes: (len(*fine) + len(*coarse)) * F64_BYTES,
            flops: len(*fine),
            launches: 1,
        },
    }
}

/// Estimates the cost of executing a whole module over buffers of the given
/// lengths (one launch per stage).
pub fn module_cost(module: &KernelModule, buffer_lens: &[usize]) -> KernelCost {
    let mut total = KernelCost::default();
    for stage in &module.stages {
        let c = match stage {
            KernelStage::Loop(l) => loop_cost(l, buffer_lens),
            KernelStage::Opaque(op) => opaque_cost(op, buffer_lens),
        };
        total.add(c);
    }
    total
}

/// Model of JIT compilation time used to reproduce Figure 13.
///
/// Compilation cost grows with the size of the fused module: a fixed per-module
/// cost (pass setup, lowering, codegen to PTX/host code) plus a per-operation
/// cost. Compilation happens once per memoized window signature (Section 5.2),
/// so an application pays it only during warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileTimeModel {
    /// Fixed seconds per compiled module.
    pub base: f64,
    /// Seconds per loop-body operation in the module.
    pub per_op: f64,
    /// Seconds per stage (each stage lowers to a separate kernel).
    pub per_stage: f64,
}

impl Default for CompileTimeModel {
    fn default() -> Self {
        CompileTimeModel {
            base: 0.060,
            per_op: 0.0018,
            per_stage: 0.012,
        }
    }
}

impl CompileTimeModel {
    /// Estimated seconds to JIT-compile `module`.
    pub fn compile_time(&self, module: &KernelModule) -> f64 {
        self.base + self.per_op * module.total_ops() as f64 + self.per_stage * module.num_stages() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferId, IndexWidth};

    fn add_kernel() -> LoopKernel {
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        b.finish()
    }

    #[test]
    fn loop_cost_counts_streams() {
        let c = loop_cost(&add_kernel(), &[100, 100, 100]);
        // 2 loads + 1 store = 3 streams of 100 elements.
        assert_eq!(c.bytes, 3 * 100 * 8);
        assert_eq!(c.flops, 100);
        assert_eq!(c.launches, 1);
    }

    #[test]
    fn module_cost_sums_stages() {
        let mut m = KernelModule::new(3);
        m.push_loop(add_kernel());
        m.push_loop(add_kernel());
        let c = module_cost(&m, &[100, 100, 100]);
        assert_eq!(c.launches, 2);
        assert_eq!(c.bytes, 2 * 3 * 100 * 8);
    }

    #[test]
    fn fused_module_moves_fewer_bytes_than_unfused() {
        // a + b -> c ; c + d -> e, where fusion + forwarding removes c.
        use crate::ir::BufferRole;
        use crate::passes::Pipeline;
        let mut m = KernelModule::new(5);
        m.set_role(BufferId(2), BufferRole::Local);
        m.push_loop(add_kernel());
        let mut b = LoopBuilder::new("add", BufferId(4));
        let (x, y) = (b.load(BufferId(2)), b.load(BufferId(3)));
        let s = b.add(x, y);
        b.store(BufferId(4), s);
        m.push_loop(b.finish());
        let lens = [100usize, 100, 100, 100, 100];
        let unfused = module_cost(&m, &lens);
        let fused = module_cost(&Pipeline::default().run(m, &lens).module, &lens);
        assert!(fused.bytes < unfused.bytes);
        assert!(fused.launches < unfused.launches);
        // Fused: 3 loads (a, b, d) + 1 store (e) = 4 streams vs 6 unfused.
        assert_eq!(fused.bytes, 4 * 100 * 8);
    }

    #[test]
    fn spmv_cost_reflects_index_width() {
        let op32 = OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U32,
        };
        let op64 = OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U64,
        };
        let lens = [101usize, 500, 500, 100, 100];
        assert!(opaque_cost(&op64, &lens).bytes > opaque_cost(&op32, &lens).bytes);
        assert_eq!(opaque_cost(&op32, &lens).flops, 1000);
    }

    #[test]
    fn gemv_cost_dominated_by_matrix() {
        let op = OpaqueOp::Gemv {
            a: BufferId(0),
            x: BufferId(1),
            y: BufferId(2),
        };
        let c = opaque_cost(&op, &[10_000, 100, 100]);
        assert!(c.bytes >= 10_000 * 8);
        assert_eq!(c.flops, 2 * 100 * 100);
    }

    #[test]
    fn compile_time_grows_with_module_size() {
        let model = CompileTimeModel::default();
        let mut small = KernelModule::new(3);
        small.push_loop(add_kernel());
        let mut large = KernelModule::new(3);
        for _ in 0..20 {
            large.push_loop(add_kernel());
        }
        assert!(model.compile_time(&large) > model.compile_time(&small));
        assert!(model.compile_time(&small) > 0.0);
    }
}
