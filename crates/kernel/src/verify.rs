//! Static verification of kernel modules and backend lowerings.
//!
//! Every transformation between a generator's emitted module and the
//! instruction stream a backend actually executes is re-checked here after
//! the fact, independently of the code that produced it (translation
//! validation in the sense of the fusion layer's `fusion::verify`; see
//! `docs/VERIFY.md` for the invariant catalog):
//!
//! * [`verify_module`] — structural well-formedness of a [`KernelModule`]:
//!   SSA def-before-use and single assignment over each loop body, buffer
//!   references in range, role consistency (no stores into `Input` buffers,
//!   reductions only into reduction-capable roles), reduction-fold
//!   well-formedness (no mixed fold operators, no store/reduce overlap on
//!   one accumulator in one loop), and — when the compiled buffer layout is
//!   provided — load/store offsets in bounds for every buffer.
//! * [`verify_lowering`] — backend-specific invariants re-derived from an
//!   independent re-lowering of the module: micro-op def-before-use for the
//!   closure backend's streams, and the renumbered
//!   destination-register-strictly-above-operands invariant the SIMD
//!   backend's `split_at_mut` borrows rely on.
//! * [`verify_against_signature`] — consistency of a generated module with
//!   the [`TaskSignature`] the library declared for the task: argument
//!   arity, scalar-parameter arity, and access/privilege agreement (a
//!   `Read` argument is never written, a `Reduce` argument is never plainly
//!   stored, a non-`Reduce` argument is never reduced into).
//! * [`lint_privilege_precision`] — the over-broad-privilege lint: declared
//!   write/reduce arguments the kernel never actually exercises. Over-broad
//!   privileges are not unsound, but they silently inhibit fusion, so they
//!   are reported rather than rejected.
//!
//! All checkers return the number of individual invariant checks performed
//! (accumulated into `ExecutionStats::verification_checks` by the Diffuse
//! layer) or a structured [`VerifyError`] naming the violated invariant and
//! the offending stage/instruction.

use crate::backend::BackendKind;
use crate::closure::{lower_loop, Instr};
use crate::generator::{ArgSpec, TaskSignature};
use crate::ir::{BufferId, BufferRole, KernelModule, KernelStage, LoopKernel, LoopOp, ValueId};
use crate::simd;

/// A violated kernel-level invariant, naming the offending stage and (where
/// applicable) instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An SSA value is used before any op defines it.
    UseBeforeDef {
        /// Stage index within the module.
        stage: usize,
        /// Op index within the loop body.
        op: usize,
        /// The undefined value.
        value: ValueId,
    },
    /// An SSA value is assigned more than once in one loop body.
    MultipleAssignment {
        /// Stage index within the module.
        stage: usize,
        /// Op index of the second assignment.
        op: usize,
        /// The re-assigned value.
        value: ValueId,
    },
    /// A buffer id is not covered by the module's declared buffer count.
    UnknownBuffer {
        /// Stage index within the module.
        stage: usize,
        /// The out-of-range buffer.
        buffer: BufferId,
    },
    /// A buffer is accessed in a way its declared role forbids.
    RoleMismatch {
        /// Stage index within the module.
        stage: usize,
        /// The buffer.
        buffer: BufferId,
        /// The declared role.
        role: BufferRole,
        /// What the kernel did to it (`"store"` or `"reduce"`).
        access: &'static str,
    },
    /// A buffer is smaller than the loop's iteration domain requires.
    BufferTooSmall {
        /// Stage index within the module.
        stage: usize,
        /// The undersized buffer.
        buffer: BufferId,
        /// Elements the stage accesses.
        needed: usize,
        /// Elements the compiled layout provides.
        available: usize,
    },
    /// One loop both stores elementwise into and reduces into one buffer.
    StoreReduceOverlap {
        /// Stage index within the module.
        stage: usize,
        /// The buffer.
        buffer: BufferId,
    },
    /// One accumulator is folded with two different reduction operators in
    /// one loop (the fold would not be well-defined under reassociation).
    MixedReduceOps {
        /// Stage index within the module.
        stage: usize,
        /// The accumulator buffer.
        buffer: BufferId,
    },
    /// A lowered micro-op reads a register before any micro-op defines it.
    LoweredUseBeforeDef {
        /// Stage index within the module.
        stage: usize,
        /// Micro-op index (prelude followed by body).
        instr: usize,
        /// The undefined register.
        register: u32,
    },
    /// A renumbered SIMD micro-op's destination register does not strictly
    /// exceed one of its operands — the `split_at_mut` borrow in the lane
    /// executor would panic (or alias).
    RegisterNotDisjoint {
        /// Stage index within the module.
        stage: usize,
        /// Micro-op index (prelude followed by body).
        instr: usize,
        /// The destination register.
        dst: u32,
        /// The offending operand register.
        operand: u32,
    },
    /// A lowered micro-op references a register beyond the plan's register
    /// file.
    RegisterOutOfRange {
        /// Stage index within the module.
        stage: usize,
        /// Micro-op index (prelude followed by body).
        instr: usize,
        /// The out-of-range register.
        register: u32,
        /// Size of the register file.
        num_regs: usize,
    },
    /// The module does not cover the signature's declared store arguments.
    ArityMismatch {
        /// Arguments the signature declares.
        expected: usize,
        /// Buffers the module declares.
        found: usize,
    },
    /// A scalar parameter index is beyond the signature's declared arity.
    ScalarOutOfRange {
        /// Stage index within the module.
        stage: usize,
        /// The out-of-range parameter index.
        index: usize,
        /// Scalars the signature declares.
        declared: usize,
    },
    /// The kernel accesses an argument in a way its declared [`ArgSpec`]
    /// forbids.
    SignatureRoleConflict {
        /// Argument index within the signature.
        arg: usize,
        /// The declared spec.
        spec: ArgSpec,
        /// What the kernel did (`"store"`, `"reduce"`).
        access: &'static str,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UseBeforeDef { stage, op, value } => write!(
                f,
                "stage {stage} op {op}: value {} used before definition",
                value.0
            ),
            VerifyError::MultipleAssignment { stage, op, value } => write!(
                f,
                "stage {stage} op {op}: value {} assigned more than once",
                value.0
            ),
            VerifyError::UnknownBuffer { stage, buffer } => {
                write!(f, "stage {stage}: buffer {} out of range", buffer.0)
            }
            VerifyError::RoleMismatch {
                stage,
                buffer,
                role,
                access,
            } => write!(
                f,
                "stage {stage}: {access} into buffer {} violates its {role:?} role",
                buffer.0
            ),
            VerifyError::BufferTooSmall {
                stage,
                buffer,
                needed,
                available,
            } => write!(
                f,
                "stage {stage}: buffer {} holds {available} elements but the loop \
                 accesses {needed}",
                buffer.0
            ),
            VerifyError::StoreReduceOverlap { stage, buffer } => write!(
                f,
                "stage {stage}: buffer {} is both stored and reduced into in one loop",
                buffer.0
            ),
            VerifyError::MixedReduceOps { stage, buffer } => write!(
                f,
                "stage {stage}: buffer {} is folded with two different reduction operators",
                buffer.0
            ),
            VerifyError::LoweredUseBeforeDef {
                stage,
                instr,
                register,
            } => write!(
                f,
                "stage {stage} micro-op {instr}: register {register} read before definition"
            ),
            VerifyError::RegisterNotDisjoint {
                stage,
                instr,
                dst,
                operand,
            } => write!(
                f,
                "stage {stage} micro-op {instr}: destination register {dst} does not \
                 strictly exceed operand register {operand}"
            ),
            VerifyError::RegisterOutOfRange {
                stage,
                instr,
                register,
                num_regs,
            } => write!(
                f,
                "stage {stage} micro-op {instr}: register {register} beyond the \
                 {num_regs}-register file"
            ),
            VerifyError::ArityMismatch { expected, found } => write!(
                f,
                "signature declares {expected} store arguments but the module has \
                 {found} buffers"
            ),
            VerifyError::ScalarOutOfRange {
                stage,
                index,
                declared,
            } => write!(
                f,
                "stage {stage}: scalar parameter {index} beyond the {declared} the \
                 signature declares"
            ),
            VerifyError::SignatureRoleConflict { arg, spec, access } => write!(
                f,
                "argument {arg}: kernel performs {access} but the signature declares \
                 {spec:?}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// An over-broad privilege found by [`lint_privilege_precision`]: an argument
/// declared writable (or reducible) that the kernel never actually writes
/// (or reduces). Not unsound — but it makes the fusion analysis assume
/// dependences that cannot exist, silently inhibiting fusion.
///
/// Backed by the footprint analyzer ([`crate::analyze`]): `inferred` is the
/// exact privilege the abstract interpretation proves sufficient, so the
/// report shows the declared-vs-inferred delta rather than a heuristic flag.
/// Under `DIFFUSE_ANALYZE=inferred` the runtime applies exactly this delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionLint {
    /// Argument index within the signature.
    pub arg: usize,
    /// The declared spec the kernel never exercises.
    pub spec: ArgSpec,
    /// The tightened spec the analyzer proves sufficient.
    pub inferred: ArgSpec,
}

impl std::fmt::Display for PrecisionLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "argument {} declares {:?} but the analyzer infers {:?} \
             (over-broad privileges inhibit fusion)",
            self.arg, self.spec, self.inferred
        )
    }
}

/// Per-buffer access summary of one module, shared by the signature checks.
#[derive(Debug, Clone, Copy, Default)]
struct BufferUse {
    loaded: bool,
    stored: bool,
    reduced: bool,
}

fn buffer_uses(module: &KernelModule) -> Vec<BufferUse> {
    let mut uses = vec![BufferUse::default(); module.num_buffers() as usize];
    let mut mark = |b: BufferId, f: fn(&mut BufferUse)| {
        if let Some(u) = uses.get_mut(b.0 as usize) {
            f(u);
        }
    };
    for stage in &module.stages {
        match stage {
            KernelStage::Loop(l) => {
                for op in &l.ops {
                    match op {
                        LoopOp::Load { buffer, .. } | LoopOp::LoadScalar { buffer, .. } => {
                            mark(*buffer, |u| u.loaded = true)
                        }
                        LoopOp::Store { buffer, .. } => mark(*buffer, |u| u.stored = true),
                        LoopOp::Reduce { buffer, .. } => mark(*buffer, |u| u.reduced = true),
                        _ => {}
                    }
                }
            }
            KernelStage::Opaque(op) => {
                for b in op.read_buffers() {
                    mark(b, |u| u.loaded = true);
                }
                for b in op.written_buffers() {
                    mark(b, |u| u.stored = true);
                }
            }
        }
    }
    uses
}

/// Verifies one loop stage: SSA form, buffer ranges, role consistency and
/// reduction well-formedness; with `lens`, also access bounds. Returns the
/// number of checks performed.
fn verify_loop(
    stage: usize,
    l: &LoopKernel,
    roles: &[BufferRole],
    lens: Option<&[usize]>,
) -> Result<usize, VerifyError> {
    let num_buffers = roles.len();
    let mut checks = 0usize;
    let mut defined = vec![false; l.num_values()];
    let check_buf = |buffer: BufferId| {
        if (buffer.0 as usize) < num_buffers {
            Ok(())
        } else {
            Err(VerifyError::UnknownBuffer { stage, buffer })
        }
    };
    let check_use = |op_idx: usize, v: ValueId, defined: &[bool]| {
        if defined.get(v.0 as usize).copied().unwrap_or(false) {
            Ok(())
        } else {
            Err(VerifyError::UseBeforeDef {
                stage,
                op: op_idx,
                value: v,
            })
        }
    };
    // Reduction bookkeeping: accumulator -> fold operator, plus stored set.
    let mut reduce_ops: Vec<(BufferId, crate::ir::ReduceOp)> = Vec::new();
    let mut stored: Vec<BufferId> = Vec::new();

    check_buf(l.domain)?;
    checks += 1;
    for (op_idx, op) in l.ops.iter().enumerate() {
        match op {
            LoopOp::Load { buffer, .. } | LoopOp::LoadScalar { buffer, .. } => {
                check_buf(*buffer)?;
                checks += 1;
            }
            LoopOp::Const { .. } | LoopOp::Param { .. } => {}
            LoopOp::Unary { a, .. } => {
                check_use(op_idx, *a, &defined)?;
                checks += 1;
            }
            LoopOp::Binary { a, b, .. } => {
                check_use(op_idx, *a, &defined)?;
                check_use(op_idx, *b, &defined)?;
                checks += 2;
            }
            LoopOp::Store { buffer, src } => {
                check_buf(*buffer)?;
                check_use(op_idx, *src, &defined)?;
                checks += 2;
                let role = roles[buffer.0 as usize];
                if role == BufferRole::Input {
                    return Err(VerifyError::RoleMismatch {
                        stage,
                        buffer: *buffer,
                        role,
                        access: "store",
                    });
                }
                checks += 1;
                if !stored.contains(buffer) {
                    stored.push(*buffer);
                }
            }
            LoopOp::Reduce { buffer, op: rop, src } => {
                check_buf(*buffer)?;
                check_use(op_idx, *src, &defined)?;
                checks += 2;
                let role = roles[buffer.0 as usize];
                if role == BufferRole::Input {
                    return Err(VerifyError::RoleMismatch {
                        stage,
                        buffer: *buffer,
                        role,
                        access: "reduce",
                    });
                }
                checks += 1;
                match reduce_ops.iter().find(|(b, _)| b == buffer) {
                    Some((_, prev)) if prev != rop => {
                        return Err(VerifyError::MixedReduceOps {
                            stage,
                            buffer: *buffer,
                        })
                    }
                    Some(_) => {}
                    None => reduce_ops.push((*buffer, *rop)),
                }
                checks += 1;
            }
        }
        if let Some(dst) = op.dst() {
            let slot = &mut defined[dst.0 as usize];
            if *slot {
                return Err(VerifyError::MultipleAssignment {
                    stage,
                    op: op_idx,
                    value: dst,
                });
            }
            *slot = true;
            checks += 1;
        }
    }
    for (b, _) in &reduce_ops {
        if stored.contains(b) {
            return Err(VerifyError::StoreReduceOverlap { stage, buffer: *b });
        }
        checks += 1;
    }

    // Access bounds against the compiled buffer layout (when provided):
    // elementwise loads/stores need the full iteration domain, broadcast
    // loads and reduction accumulators need at least element 0. Reduction
    // targets are exempt from the domain-length requirement (mirroring the
    // executors, whose length validation exempts them too).
    if let Some(lens) = lens {
        let n = lens.get(l.domain.0 as usize).copied().unwrap_or(0);
        let reduce_target = |b: BufferId| reduce_ops.iter().any(|(rb, _)| *rb == b);
        for op in &l.ops {
            let (buffer, needed) = match op {
                LoopOp::Load { buffer, .. } | LoopOp::Store { buffer, .. } => {
                    (*buffer, if reduce_target(*buffer) { 1 } else { n })
                }
                LoopOp::LoadScalar { buffer, .. } | LoopOp::Reduce { buffer, .. } => (*buffer, 1),
                _ => continue,
            };
            let available = lens.get(buffer.0 as usize).copied().unwrap_or(0);
            // An empty iteration domain accesses nothing.
            if n > 0 && available < needed {
                return Err(VerifyError::BufferTooSmall {
                    stage,
                    buffer,
                    needed,
                    available,
                });
            }
            checks += 1;
        }
    }
    Ok(checks)
}

/// Verifies the structural invariants of a kernel module: SSA def-before-use
/// and single assignment per loop body, buffer references within the
/// declared buffer count, role consistency, and reduction-fold
/// well-formedness. When `lens` (the compiled per-buffer element counts, as
/// passed to the pipeline and the launch) is provided, every elementwise
/// access is additionally checked in-bounds.
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// The first violated invariant, naming the offending stage and instruction.
pub fn verify_module(
    module: &KernelModule,
    lens: Option<&[usize]>,
) -> Result<usize, VerifyError> {
    let mut checks = 0usize;
    for (si, stage) in module.stages.iter().enumerate() {
        match stage {
            KernelStage::Loop(l) => {
                checks += verify_loop(si, l, &module.roles, lens)?;
            }
            KernelStage::Opaque(op) => {
                for b in op.read_buffers().into_iter().chain(op.written_buffers()) {
                    if b.0 >= module.num_buffers() {
                        return Err(VerifyError::UnknownBuffer { stage: si, buffer: b });
                    }
                    checks += 1;
                }
            }
        }
    }
    Ok(checks)
}

/// Walks one lowered micro-op stream (prelude followed by body) checking
/// def-before-use and register ranges; with `strict_disjoint`, additionally
/// the SIMD invariant that every destination register strictly exceeds every
/// operand register.
fn verify_instrs(
    stage: usize,
    instrs: impl Iterator<Item = Instr>,
    num_regs: usize,
    strict_disjoint: bool,
) -> Result<usize, VerifyError> {
    let mut checks = 0usize;
    let mut defined = vec![false; num_regs];
    for (idx, instr) in instrs.enumerate() {
        let (dst, a, b) = match instr {
            Instr::Load { dst, .. }
            | Instr::LoadScalar { dst, .. }
            | Instr::Set { dst, .. }
            | Instr::Param { dst, .. } => (Some(dst), None, None),
            Instr::Neg { dst, a } | Instr::Unary { dst, a, .. } => (Some(dst), Some(a), None),
            Instr::Add { dst, a, b }
            | Instr::Sub { dst, a, b }
            | Instr::Mul { dst, a, b }
            | Instr::Div { dst, a, b }
            | Instr::Binary { dst, a, b, .. } => (Some(dst), Some(a), Some(b)),
            Instr::Store { src, .. } | Instr::Reduce { src, .. } => (None, Some(src), None),
        };
        for reg in [dst, a, b].into_iter().flatten() {
            if reg as usize >= num_regs {
                return Err(VerifyError::RegisterOutOfRange {
                    stage,
                    instr: idx,
                    register: reg,
                    num_regs,
                });
            }
            checks += 1;
        }
        for operand in [a, b].into_iter().flatten() {
            if !defined[operand as usize] {
                return Err(VerifyError::LoweredUseBeforeDef {
                    stage,
                    instr: idx,
                    register: operand,
                });
            }
            checks += 1;
            if strict_disjoint {
                if let Some(dst) = dst {
                    if dst <= operand {
                        return Err(VerifyError::RegisterNotDisjoint {
                            stage,
                            instr: idx,
                            dst,
                            operand,
                        });
                    }
                    checks += 1;
                }
            }
        }
        if let Some(dst) = dst {
            defined[dst as usize] = true;
        }
    }
    Ok(checks)
}

/// Re-lowers `module` exactly as `backend` would and verifies the invariants
/// its executor relies on: micro-op def-before-use for the closure and SIMD
/// streams, and — for SIMD lane plans — that renumbering produced
/// destination registers strictly above every operand register (the
/// precondition of the executor's `split_at_mut` borrows). The interpreter
/// backend has no lowering, so it verifies trivially.
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// The first violated invariant, naming the offending stage and micro-op, or
/// the lowering's own rejection mapped to [`VerifyError::UseBeforeDef`].
pub fn verify_lowering(module: &KernelModule, backend: BackendKind) -> Result<usize, VerifyError> {
    if backend == BackendKind::Interp {
        return Ok(0);
    }
    let mut checks = 0usize;
    for (si, stage) in module.stages.iter().enumerate() {
        let KernelStage::Loop(l) = stage else {
            continue;
        };
        let lowered = lower_loop(l).map_err(|e| match e {
            crate::interp::ExecError::UndefinedValue(v) => VerifyError::UseBeforeDef {
                stage: si,
                op: 0,
                value: v,
            },
            // lower_loop only fails on use-before-def; anything else would be
            // a new lowering error this verifier must learn about.
            other => panic!("unexpected lowering failure during verification: {other}"),
        })?;
        checks += verify_instrs(
            si,
            lowered.prelude.iter().chain(&lowered.body).copied(),
            lowered.num_values.max(1),
            false,
        )?;
        if backend == BackendKind::Simd && lowered.vectorized {
            if let Some(plan) = simd::renumber(&lowered) {
                checks += verify_instrs(
                    si,
                    plan.prelude.iter().chain(&plan.body).copied(),
                    plan.num_regs.max(1),
                    true,
                )?;
            }
        }
    }
    Ok(checks)
}

/// Checks a generated module against the task's declared [`TaskSignature`]:
/// the module covers every declared argument, scalar-parameter indices stay
/// within the declared arity, and no argument is accessed in a way its
/// [`ArgSpec`] forbids (writes into `Read` arguments, plain stores into
/// `Reduce` arguments, reductions into non-`Reduce` arguments).
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// The first violated invariant.
pub fn verify_against_signature(
    module: &KernelModule,
    sig: &TaskSignature,
) -> Result<usize, VerifyError> {
    let mut checks = 1usize;
    if (module.num_buffers() as usize) < sig.args().len() {
        return Err(VerifyError::ArityMismatch {
            expected: sig.args().len(),
            found: module.num_buffers() as usize,
        });
    }
    for (si, stage) in module.stages.iter().enumerate() {
        let KernelStage::Loop(l) = stage else {
            continue;
        };
        for op in &l.ops {
            if let LoopOp::Param { index, .. } = op {
                if *index >= sig.num_scalars() {
                    return Err(VerifyError::ScalarOutOfRange {
                        stage: si,
                        index: *index,
                        declared: sig.num_scalars(),
                    });
                }
                checks += 1;
            }
        }
    }
    let uses = buffer_uses(module);
    for (i, spec) in sig.args().iter().enumerate() {
        let u = uses[i];
        let conflict = match spec {
            ArgSpec::Read if u.stored => Some("store"),
            ArgSpec::Read if u.reduced => Some("reduce"),
            ArgSpec::Write | ArgSpec::ReadWrite if u.reduced => Some("reduce"),
            ArgSpec::Reduce if u.stored => Some("store"),
            _ => None,
        };
        if let Some(access) = conflict {
            return Err(VerifyError::SignatureRoleConflict {
                arg: i,
                spec: *spec,
                access,
            });
        }
        checks += 1;
    }
    Ok(checks)
}

/// The privilege-precision lint: arguments whose declared [`ArgSpec`] grants
/// write or reduce access the generated kernel never exercises. Such
/// privileges are sound but over-broad — the fusion analysis must assume
/// dependences that cannot occur, which silently shortens fusible prefixes.
///
/// The findings come from the abstract interpreter
/// ([`crate::analyze::infer_footprint`]): an argument is reported exactly
/// when its inferred footprint proves no store and no reduction can reach
/// the buffer (⊤ footprints from opaque stages are never reported), and the
/// lint carries the tightened spec the analysis derives. This is the same
/// delta `DIFFUSE_ANALYZE=inferred` applies at launch time, so the report
/// doubles as a preview of the analyzer's effect.
///
/// Returns one [`PrecisionLint`] per over-broad argument (empty when the
/// signature is precise). Arguments beyond the module's buffer count are
/// skipped (that inconsistency is [`verify_against_signature`]'s to report).
pub fn lint_privilege_precision(module: &KernelModule, sig: &TaskSignature) -> Vec<PrecisionLint> {
    let num_buffers = module.num_buffers() as usize;
    crate::analyze::effective_signature(module, sig)
        .tightened()
        .filter(|(i, _, _)| *i < num_buffers)
        .map(|(arg, spec, inferred)| PrecisionLint { arg, spec, inferred })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BinaryOp, ReduceOp};

    fn scale_module() -> KernelModule {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        let c = lb.constant(3.0);
        let v = lb.mul(x, c);
        lb.store(BufferId(1), v);
        m.push_loop(lb.finish());
        m
    }

    fn dot_module() -> KernelModule {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("dot", BufferId(0));
        let x = lb.load(BufferId(0));
        let y = lb.load(BufferId(1));
        let v = lb.mul(x, y);
        lb.reduce(BufferId(2), ReduceOp::Sum, v);
        m.push_loop(lb.finish());
        m
    }

    #[test]
    fn well_formed_modules_verify() {
        assert!(verify_module(&scale_module(), None).unwrap() > 0);
        assert!(verify_module(&dot_module(), Some(&[8, 8, 1])).unwrap() > 0);
    }

    #[test]
    fn use_before_def_is_rejected() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let kernel = LoopKernel {
            name: "bad".into(),
            domain: BufferId(0),
            ops: vec![LoopOp::Store {
                buffer: BufferId(1),
                src: ValueId(0),
            }],
            parallel: false,
        };
        m.push_loop(kernel);
        assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn double_assignment_is_rejected() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let kernel = LoopKernel {
            name: "bad".into(),
            domain: BufferId(0),
            ops: vec![
                LoopOp::Const {
                    dst: ValueId(0),
                    value: 1.0,
                },
                LoopOp::Const {
                    dst: ValueId(0),
                    value: 2.0,
                },
            ],
            parallel: false,
        };
        m.push_loop(kernel);
        assert_eq!(
            verify_module(&m, None),
            Err(VerifyError::MultipleAssignment {
                stage: 0,
                op: 1,
                value: ValueId(0)
            })
        );
    }

    #[test]
    fn store_into_input_role_is_rejected() {
        let mut m = KernelModule::new(2);
        // Buffer 1 keeps the default Input role but is stored into.
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.store(BufferId(1), x);
        m.push_loop(lb.finish());
        assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::RoleMismatch {
                access: "store",
                ..
            })
        ));
    }

    #[test]
    fn shrunken_buffer_is_rejected() {
        let m = scale_module();
        assert!(verify_module(&m, Some(&[8, 8])).is_ok());
        assert_eq!(
            verify_module(&m, Some(&[8, 4])),
            Err(VerifyError::BufferTooSmall {
                stage: 0,
                buffer: BufferId(1),
                needed: 8,
                available: 4
            })
        );
    }

    #[test]
    fn reduction_accumulator_is_exempt_from_domain_length() {
        assert!(verify_module(&dot_module(), Some(&[8, 8, 1])).is_ok());
    }

    #[test]
    fn mixed_reduce_ops_are_rejected() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.reduce(BufferId(1), ReduceOp::Sum, x);
        lb.reduce(BufferId(1), ReduceOp::Max, x);
        m.push_loop(lb.finish());
        assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::MixedReduceOps { .. })
        ));
    }

    #[test]
    fn store_reduce_overlap_is_rejected() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.store(BufferId(1), x);
        lb.reduce(BufferId(1), ReduceOp::Sum, x);
        m.push_loop(lb.finish());
        assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::StoreReduceOverlap { .. })
        ));
    }

    #[test]
    fn unknown_buffer_is_rejected() {
        let mut m = KernelModule::new(1);
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(7));
        lb.store(BufferId(0), x);
        m.push_loop(lb.finish());
        assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::UnknownBuffer { .. })
        ));
    }

    #[test]
    fn lowering_invariants_hold_for_real_modules() {
        for m in [scale_module(), dot_module()] {
            assert!(verify_lowering(&m, BackendKind::Interp).unwrap() == 0);
            assert!(verify_lowering(&m, BackendKind::Closure).unwrap() > 0);
            assert!(verify_lowering(&m, BackendKind::Simd).unwrap() > 0);
        }
    }

    #[test]
    fn signature_consistency_and_lint() {
        let sig = TaskSignature::new().read().write();
        let m = scale_module();
        assert!(verify_against_signature(&m, &sig).is_ok());
        assert!(lint_privilege_precision(&m, &sig).is_empty());

        // A signature declaring the input writable is over-broad, not wrong.
        let broad = TaskSignature::new().read_write().write();
        assert!(verify_against_signature(&m, &broad).is_ok());
        assert_eq!(
            lint_privilege_precision(&m, &broad),
            vec![PrecisionLint {
                arg: 0,
                spec: ArgSpec::ReadWrite,
                inferred: ArgSpec::Read
            }]
        );

        // A kernel writing a Read argument is rejected outright.
        let wrong = TaskSignature::new().write().read();
        assert!(matches!(
            verify_against_signature(&m, &wrong),
            Err(VerifyError::SignatureRoleConflict {
                arg: 1,
                access: "store",
                ..
            })
        ));
    }

    #[test]
    fn scalar_arity_is_checked() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("axpy", BufferId(0));
        let x = lb.load(BufferId(0));
        let a = lb.param(0);
        let v = lb.binary(BinaryOp::Mul, a, x);
        lb.store(BufferId(1), v);
        m.push_loop(lb.finish());
        assert!(verify_against_signature(&m, &TaskSignature::new().read().write().scalars(1))
            .is_ok());
        assert!(matches!(
            verify_against_signature(&m, &TaskSignature::new().read().write()),
            Err(VerifyError::ScalarOutOfRange { .. })
        ));
    }
}
