//! The kernel compilation pipeline.
//!
//! Mirrors the stages of Figure 8 in the paper: the fused module starts as the
//! sequential composition of the constituent task bodies (Figure 8b), then
//!
//! 1. temporary distributed stores have already been demoted to
//!    [`BufferRole::Local`] buffers by the task-fusion layer (Figure 8c),
//! 2. adjacent loops with equal iteration domains are fused,
//! 3. stores followed by loads of the same buffer inside a fused loop are
//!    forwarded through registers,
//! 4. stores to local buffers that are never read again are removed, and
//!    local buffers with no remaining uses are eliminated entirely
//!    (Figure 8d), and
//! 5. the surviving loops are marked parallel for the GPU/OpenMP backend.
//!
//! Every stage can be disabled individually through [`PipelineConfig`] so the
//! benchmark harness can run the ablations discussed in Section 7.

use std::collections::{HashMap, HashSet};

use crate::ir::{BufferId, BufferRole, KernelModule, KernelStage, LoopKernel, LoopOp, ValueId};

/// Configuration of the compilation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Fuse adjacent loops with equal iteration domains.
    pub loop_fusion: bool,
    /// Forward stored values to later loads within a fused loop.
    pub store_forwarding: bool,
    /// Remove dead stores to local buffers and eliminate unused locals.
    pub eliminate_locals: bool,
    /// Mark loops parallel.
    pub parallelize: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            loop_fusion: true,
            store_forwarding: true,
            eliminate_locals: true,
            parallelize: true,
        }
    }
}

impl PipelineConfig {
    /// A configuration with every optimization disabled — the module is
    /// executed exactly as composed (used for the unfused baseline and for
    /// ablations).
    pub fn disabled() -> Self {
        PipelineConfig {
            loop_fusion: false,
            store_forwarding: false,
            eliminate_locals: false,
            parallelize: false,
        }
    }
}

/// The result of compiling a module.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The optimized module.
    pub module: KernelModule,
    /// Local buffers that were eliminated entirely (their allocations never
    /// happen at execution time).
    pub eliminated_locals: Vec<BufferId>,
    /// Number of loop stages before optimization.
    pub loops_before: usize,
    /// Number of loop stages after optimization.
    pub loops_after: usize,
}

impl PipelineResult {
    /// Whether a buffer was eliminated by the pipeline.
    pub fn is_eliminated(&self, buffer: BufferId) -> bool {
        self.eliminated_locals.contains(&buffer)
    }
}

/// The kernel compilation pipeline. See the module documentation.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Runs the pipeline. `buffer_lens` gives the element count of every
    /// buffer (indexed by [`BufferId`]); loop fusion uses it to prove two
    /// loops share an iteration domain.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_lens` is shorter than the module's buffer table.
    pub fn run(&self, module: KernelModule, buffer_lens: &[usize]) -> PipelineResult {
        assert!(
            buffer_lens.len() >= module.num_buffers() as usize,
            "buffer_lens has {} entries but module has {} buffers",
            buffer_lens.len(),
            module.num_buffers()
        );
        let loops_before = module.num_loop_stages();
        let mut module = module;
        if self.config.loop_fusion {
            module = fuse_loops(module, buffer_lens);
        }
        if self.config.store_forwarding {
            module = forward_stores(module);
        }
        let mut eliminated = Vec::new();
        if self.config.eliminate_locals {
            let (m, e) = eliminate_dead_locals(module, buffer_lens);
            module = m;
            eliminated = e;
        }
        if self.config.parallelize {
            for stage in &mut module.stages {
                if let KernelStage::Loop(l) = stage {
                    l.parallel = true;
                }
            }
        }
        let loops_after = module.num_loop_stages();
        PipelineResult {
            module,
            eliminated_locals: eliminated,
            loops_before,
            loops_after,
        }
    }
}

/// Effect summary of one loop used for fusion legality.
#[derive(Debug, Default)]
struct LoopEffects {
    elem_loads: HashSet<BufferId>,
    scalar_loads: HashSet<BufferId>,
    stores: HashSet<BufferId>,
    reduces: HashSet<BufferId>,
}

fn effects(kernel: &LoopKernel) -> LoopEffects {
    let mut e = LoopEffects::default();
    for op in &kernel.ops {
        match op {
            LoopOp::Load { buffer, .. } => {
                e.elem_loads.insert(*buffer);
            }
            LoopOp::LoadScalar { buffer, .. } => {
                e.scalar_loads.insert(*buffer);
            }
            LoopOp::Store { buffer, .. } => {
                e.stores.insert(*buffer);
            }
            LoopOp::Reduce { buffer, .. } => {
                e.reduces.insert(*buffer);
            }
            _ => {}
        }
    }
    e
}

/// Whether loop `b` may be merged after loop `a` into a single loop.
///
/// Elementwise producer/consumer pairs are always legal because corresponding
/// iterations access the same element. Broadcast (scalar) reads of a value
/// written or reduced by the earlier loop, and writes to a value the earlier
/// loop reads as a broadcast, change observable semantics and block fusion —
/// mirroring the reduction constraint at the task level.
fn loops_fusible(a: &LoopEffects, b: &LoopEffects) -> bool {
    // b must not broadcast-read anything a writes or reduces.
    if b.scalar_loads
        .iter()
        .any(|s| a.stores.contains(s) || a.reduces.contains(s))
    {
        return false;
    }
    // b must not write anything a broadcast-reads.
    if b.stores.iter().any(|s| a.scalar_loads.contains(s)) {
        return false;
    }
    // Reduction accumulators may only be shared between reductions.
    if b.reduces.iter().any(|s| {
        a.stores.contains(s) || a.elem_loads.contains(s) || a.scalar_loads.contains(s)
    }) {
        return false;
    }
    if a.reduces
        .iter()
        .any(|s| b.stores.contains(s) || b.elem_loads.contains(s))
    {
        return false;
    }
    true
}

/// Concatenates the body of `b` after `a`, renumbering `b`'s SSA values.
fn merge_loops(a: &LoopKernel, b: &LoopKernel) -> LoopKernel {
    let offset = a.num_values() as u32;
    let shift = |v: ValueId| ValueId(v.0 + offset);
    let mut ops = a.ops.clone();
    for op in &b.ops {
        let shifted = match op.clone() {
            LoopOp::Load { dst, buffer } => LoopOp::Load {
                dst: shift(dst),
                buffer,
            },
            LoopOp::LoadScalar { dst, buffer } => LoopOp::LoadScalar {
                dst: shift(dst),
                buffer,
            },
            LoopOp::Const { dst, value } => LoopOp::Const {
                dst: shift(dst),
                value,
            },
            LoopOp::Param { dst, index } => LoopOp::Param {
                dst: shift(dst),
                index,
            },
            LoopOp::Unary { dst, op, a } => LoopOp::Unary {
                dst: shift(dst),
                op,
                a: shift(a),
            },
            LoopOp::Binary { dst, op, a, b } => LoopOp::Binary {
                dst: shift(dst),
                op,
                a: shift(a),
                b: shift(b),
            },
            LoopOp::Store { buffer, src } => LoopOp::Store {
                buffer,
                src: shift(src),
            },
            LoopOp::Reduce { buffer, op, src } => LoopOp::Reduce {
                buffer,
                op,
                src: shift(src),
            },
        };
        ops.push(shifted);
    }
    LoopKernel {
        name: format!("{}+{}", a.name, b.name),
        domain: a.domain,
        ops,
        parallel: false,
    }
}

/// Greedily fuses adjacent loop stages with equal iteration domains.
fn fuse_loops(module: KernelModule, buffer_lens: &[usize]) -> KernelModule {
    let mut out = KernelModule {
        stages: Vec::new(),
        roles: module.roles.clone(),
    };
    for stage in module.stages {
        match stage {
            KernelStage::Opaque(op) => out.stages.push(KernelStage::Opaque(op)),
            KernelStage::Loop(next) => {
                let fused = if let Some(KernelStage::Loop(prev)) = out.stages.last() {
                    let same_domain = buffer_lens[prev.domain.0 as usize]
                        == buffer_lens[next.domain.0 as usize];
                    if same_domain && loops_fusible(&effects(prev), &effects(&next)) {
                        Some(merge_loops(prev, &next))
                    } else {
                        None
                    }
                } else {
                    None
                };
                match fused {
                    Some(merged) => {
                        out.stages.pop();
                        out.stages.push(KernelStage::Loop(merged));
                    }
                    None => out.stages.push(KernelStage::Loop(next)),
                }
            }
        }
    }
    out
}

/// Forwards stored values to later elementwise loads of the same buffer within
/// each loop, then removes ops whose results are no longer used.
fn forward_stores(mut module: KernelModule) -> KernelModule {
    for stage in &mut module.stages {
        if let KernelStage::Loop(l) = stage {
            // Map from buffer -> value most recently stored to it in this body.
            let mut last_store: HashMap<BufferId, ValueId> = HashMap::new();
            // Map from value -> replacement value.
            let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
            let resolve = |v: ValueId, replace: &HashMap<ValueId, ValueId>| -> ValueId {
                let mut v = v;
                while let Some(&r) = replace.get(&v) {
                    v = r;
                }
                v
            };
            let mut new_ops = Vec::with_capacity(l.ops.len());
            for op in l.ops.drain(..) {
                match op {
                    LoopOp::Load { dst, buffer } => {
                        if let Some(&stored) = last_store.get(&buffer) {
                            replace.insert(dst, stored);
                        } else {
                            new_ops.push(LoopOp::Load { dst, buffer });
                        }
                    }
                    LoopOp::LoadScalar { dst, buffer } => {
                        new_ops.push(LoopOp::LoadScalar { dst, buffer });
                    }
                    LoopOp::Const { dst, value } => new_ops.push(LoopOp::Const { dst, value }),
                    LoopOp::Param { dst, index } => new_ops.push(LoopOp::Param { dst, index }),
                    LoopOp::Unary { dst, op, a } => new_ops.push(LoopOp::Unary {
                        dst,
                        op,
                        a: resolve(a, &replace),
                    }),
                    LoopOp::Binary { dst, op, a, b } => new_ops.push(LoopOp::Binary {
                        dst,
                        op,
                        a: resolve(a, &replace),
                        b: resolve(b, &replace),
                    }),
                    LoopOp::Store { buffer, src } => {
                        let src = resolve(src, &replace);
                        last_store.insert(buffer, src);
                        new_ops.push(LoopOp::Store { buffer, src });
                    }
                    LoopOp::Reduce { buffer, op, src } => new_ops.push(LoopOp::Reduce {
                        buffer,
                        op,
                        src: resolve(src, &replace),
                    }),
                }
            }
            l.ops = new_ops;
        }
    }
    module
}

/// Removes stores to local buffers that are never read anywhere in the module,
/// removes value-producing ops whose results are unused, and reports local
/// buffers with no remaining references as eliminated. Loop domains that refer
/// to an otherwise-dead local are retargeted to another equal-length buffer
/// used by the loop so the local can be eliminated.
fn eliminate_dead_locals(
    mut module: KernelModule,
    buffer_lens: &[usize],
) -> (KernelModule, Vec<BufferId>) {
    // Collect buffers that are read anywhere (loops or opaque stages).
    let mut read: HashSet<BufferId> = HashSet::new();
    for stage in &module.stages {
        match stage {
            KernelStage::Loop(l) => {
                read.extend(l.loaded_buffers());
                read.extend(l.scalar_loaded_buffers());
            }
            KernelStage::Opaque(op) => read.extend(op.read_buffers()),
        }
    }
    // Remove stores to local buffers that are never read.
    for stage in &mut module.stages {
        if let KernelStage::Loop(l) = stage {
            l.ops.retain(|op| match op {
                LoopOp::Store { buffer, .. } | LoopOp::Reduce { buffer, .. } => {
                    module.roles[buffer.0 as usize] != BufferRole::Local || read.contains(buffer)
                }
                _ => true,
            });
        }
    }
    // Dead-code eliminate unused value-producing ops inside each loop.
    for stage in &mut module.stages {
        if let KernelStage::Loop(l) = stage {
            loop {
                let mut used: HashSet<ValueId> = HashSet::new();
                for op in &l.ops {
                    match op {
                        LoopOp::Unary { a, .. } => {
                            used.insert(*a);
                        }
                        LoopOp::Binary { a, b, .. } => {
                            used.insert(*a);
                            used.insert(*b);
                        }
                        LoopOp::Store { src, .. } | LoopOp::Reduce { src, .. } => {
                            used.insert(*src);
                        }
                        _ => {}
                    }
                }
                let before = l.ops.len();
                l.ops.retain(|op| match op.dst() {
                    Some(dst) => used.contains(&dst),
                    None => true,
                });
                if l.ops.len() == before {
                    break;
                }
            }
        }
    }
    // Retarget loop domains that point at locals which carry no data accesses
    // any more, so those locals can be eliminated entirely.
    let mut data_referenced: HashSet<BufferId> = HashSet::new();
    for stage in &module.stages {
        match stage {
            KernelStage::Loop(l) => {
                data_referenced.extend(l.loaded_buffers());
                data_referenced.extend(l.scalar_loaded_buffers());
                data_referenced.extend(l.written_buffers());
            }
            KernelStage::Opaque(op) => {
                data_referenced.extend(op.read_buffers());
                data_referenced.extend(op.written_buffers());
            }
        }
    }
    for stage in &mut module.stages {
        if let KernelStage::Loop(l) = stage {
            let domain_is_dead_local = module.roles[l.domain.0 as usize] == BufferRole::Local
                && !data_referenced.contains(&l.domain);
            if domain_is_dead_local {
                let domain_len = buffer_lens[l.domain.0 as usize];
                let candidate = l
                    .loaded_buffers()
                    .into_iter()
                    .chain(l.written_buffers())
                    .find(|b| buffer_lens[b.0 as usize] == domain_len);
                if let Some(b) = candidate {
                    l.domain = b;
                }
            }
        }
    }
    // Report locals with no remaining references at all.
    let mut referenced: HashSet<BufferId> = HashSet::new();
    for stage in &module.stages {
        match stage {
            KernelStage::Loop(l) => {
                referenced.insert(l.domain);
                referenced.extend(l.loaded_buffers());
                referenced.extend(l.scalar_loaded_buffers());
                referenced.extend(l.written_buffers());
            }
            KernelStage::Opaque(op) => {
                referenced.extend(op.read_buffers());
                referenced.extend(op.written_buffers());
            }
        }
    }
    let eliminated: Vec<BufferId> = (0..module.num_buffers())
        .map(BufferId)
        .filter(|b| module.roles[b.0 as usize] == BufferRole::Local && !referenced.contains(b))
        .collect();
    (module, eliminated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::interp::Interpreter;
    use crate::ir::ReduceOp;

    /// Builds the Figure 8 example: c = a + b; e = c + d with c local.
    fn figure8_module() -> KernelModule {
        let mut module = KernelModule::new(5);
        module.set_role(BufferId(2), BufferRole::Local);
        module.set_role(BufferId(4), BufferRole::Output);
        let mut l1 = LoopBuilder::new("add", BufferId(2));
        let (a, b) = (l1.load(BufferId(0)), l1.load(BufferId(1)));
        let s = l1.add(a, b);
        l1.store(BufferId(2), s);
        module.push_loop(l1.finish());
        let mut l2 = LoopBuilder::new("add", BufferId(4));
        let (c, d) = (l2.load(BufferId(2)), l2.load(BufferId(3)));
        let s = l2.add(c, d);
        l2.store(BufferId(4), s);
        module.push_loop(l2.finish());
        module
    }

    #[test]
    fn figure8_fuses_and_eliminates_temp() {
        let compiled = Pipeline::default().run(figure8_module(), &[8, 8, 8, 8, 8]);
        assert_eq!(compiled.loops_before, 2);
        assert_eq!(compiled.loops_after, 1);
        assert_eq!(compiled.eliminated_locals, vec![BufferId(2)]);
        // The fused loop should not touch buffer 2 at all.
        if let KernelStage::Loop(l) = &compiled.module.stages[0] {
            assert!(!l.loaded_buffers().contains(&BufferId(2)));
            assert!(!l.written_buffers().contains(&BufferId(2)));
            assert!(l.parallel);
        } else {
            panic!("expected a loop stage");
        }
    }

    #[test]
    fn fused_execution_matches_unfused() {
        let module = figure8_module();
        let lens = [16usize, 16, 16, 16, 16];
        let mut unfused_bufs: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..16).map(|j| (i * 16 + j) as f64 * 0.25).collect())
            .collect();
        let mut fused_bufs = unfused_bufs.clone();
        Interpreter::new()
            .execute(
                &Pipeline::new(PipelineConfig::disabled())
                    .run(module.clone(), &lens)
                    .module,
                &mut unfused_bufs,
                &[],
            )
            .unwrap();
        Interpreter::new()
            .execute(
                &Pipeline::default().run(module, &lens).module,
                &mut fused_bufs,
                &[],
            )
            .unwrap();
        assert_eq!(unfused_bufs[4], fused_bufs[4]);
    }

    #[test]
    fn different_domains_do_not_fuse() {
        let mut module = KernelModule::new(4);
        let mut l1 = LoopBuilder::new("a", BufferId(1));
        let x = l1.load(BufferId(0));
        l1.store(BufferId(1), x);
        module.push_loop(l1.finish());
        let mut l2 = LoopBuilder::new("b", BufferId(3));
        let x = l2.load(BufferId(2));
        l2.store(BufferId(3), x);
        module.push_loop(l2.finish());
        // Buffers 0/1 have 8 elements; 2/3 have 4.
        let compiled = Pipeline::default().run(module, &[8, 8, 4, 4]);
        assert_eq!(compiled.loops_after, 2);
    }

    #[test]
    fn scalar_read_of_reduction_blocks_loop_fusion() {
        let mut module = KernelModule::new(3);
        module.set_role(BufferId(1), BufferRole::Reduction);
        // loop 1: reduce sum of a into s
        let mut l1 = LoopBuilder::new("dot", BufferId(0));
        let x = l1.load(BufferId(0));
        l1.reduce(BufferId(1), ReduceOp::Sum, x);
        module.push_loop(l1.finish());
        // loop 2: out[i] = a[i] * s (broadcast read of the reduction)
        let mut l2 = LoopBuilder::new("scale", BufferId(0));
        let x = l2.load(BufferId(0));
        let s = l2.load_scalar(BufferId(1));
        let v = l2.mul(x, s);
        l2.store(BufferId(2), v);
        module.push_loop(l2.finish());
        let compiled = Pipeline::default().run(module, &[8, 1, 8]);
        assert_eq!(compiled.loops_after, 2, "must not fuse across a reduction");
    }

    #[test]
    fn opaque_stage_breaks_fusion_runs() {
        let mut module = KernelModule::new(4);
        let mut l1 = LoopBuilder::new("a", BufferId(0));
        let x = l1.load(BufferId(0));
        l1.store(BufferId(3), x);
        module.push_loop(l1.finish());
        module.push_opaque(crate::ir::OpaqueOp::Gemv {
            a: BufferId(1),
            x: BufferId(0),
            y: BufferId(2),
        });
        let mut l2 = LoopBuilder::new("b", BufferId(0));
        let x = l2.load(BufferId(2));
        l2.store(BufferId(3), x);
        module.push_loop(l2.finish());
        let compiled = Pipeline::default().run(module, &[8, 64, 8, 8]);
        assert_eq!(compiled.loops_after, 2);
        assert_eq!(compiled.module.num_stages(), 3);
    }

    #[test]
    fn disabled_pipeline_is_identity_except_flags() {
        let module = figure8_module();
        let compiled = Pipeline::new(PipelineConfig::disabled()).run(module.clone(), &[4; 5]);
        assert_eq!(compiled.module.stages.len(), module.stages.len());
        assert!(compiled.eliminated_locals.is_empty());
    }

    #[test]
    fn local_still_read_in_unfusible_loop_is_not_eliminated() {
        // c = a + b (domain 8), then a reduction over c into s (domain 8 but
        // reading c elementwise) is fusible, but if domains differ the local
        // must survive.
        let mut module = KernelModule::new(4);
        module.set_role(BufferId(2), BufferRole::Local);
        module.set_role(BufferId(3), BufferRole::Reduction);
        let mut l1 = LoopBuilder::new("add", BufferId(0));
        let (a, b) = (l1.load(BufferId(0)), l1.load(BufferId(1)));
        let s = l1.add(a, b);
        l1.store(BufferId(2), s);
        module.push_loop(l1.finish());
        let mut l2 = LoopBuilder::new("norm", BufferId(2));
        let c = l2.load(BufferId(2));
        let sq = l2.mul(c, c);
        l2.reduce(BufferId(3), ReduceOp::Sum, sq);
        module.push_loop(l2.finish());
        // Different "lengths" prevent fusion, so the local must be kept.
        let compiled = Pipeline::default().run(module, &[8, 8, 6, 1]);
        assert!(compiled.eliminated_locals.is_empty());
        assert_eq!(compiled.loops_after, 2);
    }
}
