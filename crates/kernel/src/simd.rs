//! The SIMD backend: fused loop nests lowered once into lane-parallel
//! chunked kernels over arrays-of-lanes.
//!
//! The [`crate::closure::ClosureBackend`] already resolves every op at
//! compile time and streams each micro-op over 64-element chunks, but its
//! scratch table is a flat `Vec<f64>` indexed with runtime offsets: every
//! inner loop has a dynamic trip count and bounds-checked slice accesses the
//! optimizer must see through. This backend takes the same lowering one step
//! further, in the style of the single-pass fused SIMD kernels of
//! "Optimizing CUDA Code By Kernel Fusion" and Bohrium's runtime-fused array
//! streams (see PAPERS.md):
//!
//! * SSA values live in **arrays-of-lanes**: each value is a register row
//!   `[[f64; LANES]; VECTORS]` (`f64x4`-style lane vectors, [`SIMD_CHUNK`]
//!   elements per row), so every arithmetic micro-op is a pair of nested
//!   loops with **constant trip counts** over fixed-size arrays — no bounds
//!   checks, no dynamic lengths, fully unrollable and vectorizable.
//! * At compile time values are **renumbered in definition order** (prelude
//!   first, then body), so an op's destination register always has a strictly
//!   higher index than its operands. Execution then borrows destination and
//!   operand rows disjointly via `split_at_mut` — zero-copy, no `unsafe`.
//! * Loop-invariant hoisting is **reused from the closure lowering**
//!   (`closure::lower_loop`): constants, scalar parameters and
//!   broadcast loads are splatted across a register row once per stage.
//! * Domains that are not a multiple of the chunk width run an explicit
//!   **masked tail**: loads fill only the valid lanes, arithmetic runs full
//!   width (dead lanes hold stale values, which is harmless — no element's
//!   dataflow ever reads them), and stores/reductions write back only the
//!   valid lanes.
//! * Reductions fold the valid lanes **in element order** and modules with
//!   element-0 side channels (broadcast loads of written buffers, shared or
//!   touched accumulators — the closure backend's exact conditions) take the
//!   exact per-element fallback, so results stay **bitwise-identical** to
//!   [`crate::Interpreter`] for every module. Elementwise lane arithmetic is
//!   bitwise-deterministic because each element's dataflow is independent and
//!   identical to the scalar evaluation (Rust never contracts `f64` ops into
//!   FMAs behind your back). The sole exception is NaN *payload* bits, which
//!   Rust defines as non-deterministic for any freshly produced NaN — LLVM
//!   may commute `fadd` operands between compilations of the same source
//!   fold — so equivalence is exact bits for non-NaN values and NaN-ness
//!   (never payload) for NaNs; the differential harness canonicalizes
//!   accordingly.
//!
//! Opaque stages (SpMV, GEMV, restrict/prolong) dispatch to the same native
//! implementations as the interpreter, exactly like the closure backend.
//!
//! The one-time lowering (closure lowering + renumbering) costs more than the
//! closure backend's, which the simulated clock prices through the fitted
//! per-backend [`CompileTimeModel`] calibration (`cargo run --release --bin
//! calibrate`); the steady state is measurably faster on the fused cg/jacobi
//! windows (`cargo run --release --bin kernel_backends`). Memoization then
//! amortizes the larger surcharge exactly as §5.2 of the paper describes.

use std::sync::Arc;

use crate::backend::{BackendKind, CompiledKernel, KernelBackend};
use crate::closure::{lower_loop, CompiledLoop, Instr};
use crate::cost::CompileTimeModel;
use crate::interp::{self, ExecError};
use crate::ir::{KernelModule, KernelStage, OpaqueOp, ReduceOp};

/// Lanes per SIMD vector: the `f64x4` shape of a 256-bit double vector.
pub const LANES: usize = 4;

/// Lane vectors per register row. `LANES * VECTORS` elements are processed
/// per chunk; sized to match the closure backend's chunk so the comparison
/// between the two backends isolates the lane layout, not the blocking.
pub const VECTORS: usize = 16;

/// Elements processed per chunk ([`LANES`] × [`VECTORS`]).
pub const SIMD_CHUNK: usize = LANES * VECTORS;

/// Fallback compile-cost surcharge over the interpreter's baseline
/// calibration, used only when `BENCH_compile_calibration.json` has no fitted
/// entry for this backend (see [`CompileTimeModel::calibrated`]): the SIMD
/// backend runs the full closure lowering plus the renumbering pass.
pub const SIMD_COMPILE_FACTOR: f64 = 1.5;

/// One SSA register row: [`SIMD_CHUNK`] elements as an array-of-lanes.
type Row = [[f64; LANES]; VECTORS];

/// The lane-parallel schedule for one loop stage: the closure lowering's
/// prelude/body micro-op streams with values renumbered in definition order,
/// so `dst > operands` holds for every op (the `split_at_mut` invariant).
#[derive(Debug)]
pub(crate) struct LanePlan {
    pub(crate) prelude: Vec<Instr>,
    pub(crate) body: Vec<Instr>,
    pub(crate) num_regs: usize,
}

/// One compiled loop stage: the shared closure lowering plus, when the
/// chunked schedule is sound for this module, the lane-parallel plan.
#[derive(Debug)]
struct SimdLoop {
    inner: CompiledLoop,
    lanes: Option<LanePlan>,
}

/// One compiled stage.
#[derive(Debug)]
enum SimdStage {
    Loop(SimdLoop),
    Opaque(OpaqueOp),
}

/// Artifact of the [`SimdBackend`].
#[derive(Debug)]
struct SimdCompiled {
    module: KernelModule,
    stages: Vec<SimdStage>,
}

/// The SIMD backend. See the module documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdBackend;

impl KernelBackend for SimdBackend {
    fn id(&self) -> &'static str {
        BackendKind::Simd.id()
    }

    fn compile(&self, module: &KernelModule) -> Result<Arc<dyn CompiledKernel>, ExecError> {
        let stages = module
            .stages
            .iter()
            .map(|stage| match stage {
                KernelStage::Loop(l) => lower_loop(l).map(|inner| {
                    // The renumbering requires full SSA, which is exactly the
                    // closure lowering's condition for the reorderable
                    // schedule; modules with element-0 side channels keep
                    // `lanes: None` and run the exact per-element fallback.
                    let lanes = if inner.vectorized {
                        renumber(&inner)
                    } else {
                        None
                    };
                    SimdStage::Loop(SimdLoop { inner, lanes })
                }),
                KernelStage::Opaque(op) => Ok(SimdStage::Opaque(op.clone())),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Arc::new(SimdCompiled {
            module: module.clone(),
            stages,
        }))
    }

    fn compile_cost(&self, module: &KernelModule, model: &CompileTimeModel) -> f64 {
        // Surcharge over `model` (the Figure 13 anchor) taken from the fitted
        // per-backend calibration, not an asserted constant.
        model.calibrated(self.id()).compile_time(module)
    }
}

impl CompiledKernel for SimdCompiled {
    fn module(&self) -> &KernelModule {
        &self.module
    }

    fn backend_id(&self) -> &'static str {
        BackendKind::Simd.id()
    }

    fn execute_stage(
        &self,
        stage: usize,
        buffers: &mut [Vec<f64>],
        scalars: &[f64],
    ) -> Result<(), ExecError> {
        match &self.stages[stage] {
            SimdStage::Opaque(op) => interp::run_opaque(op, buffers),
            SimdStage::Loop(l) => {
                let n = l.inner.check(buffers)?;
                if n == 0 {
                    return Ok(());
                }
                l.inner.check_params(scalars)?;
                if let Some(plan) = &l.lanes {
                    run_lanes(plan, buffers, scalars, n);
                } else {
                    l.inner.run_elementwise(buffers, scalars, n);
                }
                Ok(())
            }
        }
    }
}

/// Renumbers the lowered value ids in definition order (prelude first, then
/// body) so every op's destination register index strictly exceeds its
/// operands'. Returns `None` if any operand is read before definition —
/// impossible for streams the closure lowering marked `vectorized`, but the
/// caller falls back to the exact schedule rather than trusting that.
pub(crate) fn renumber(l: &CompiledLoop) -> Option<LanePlan> {
    const UNDEF: u32 = u32::MAX;
    let mut map = vec![UNDEF; l.num_values.max(1)];
    let mut next: u32 = 0;
    let mut def = |map: &mut [u32], dst: u32| {
        map[dst as usize] = next;
        next += 1;
        next - 1
    };
    let remap = |map: &[u32], v: u32| -> Option<u32> {
        let r = map[v as usize];
        (r != UNDEF).then_some(r)
    };
    let mut out = Vec::with_capacity(l.prelude.len() + l.body.len());
    for &instr in l.prelude.iter().chain(&l.body) {
        out.push(match instr {
            Instr::Load { dst, buf } => Instr::Load {
                dst: def(&mut map, dst),
                buf,
            },
            Instr::LoadScalar { dst, buf } => Instr::LoadScalar {
                dst: def(&mut map, dst),
                buf,
            },
            Instr::Set { dst, imm } => Instr::Set {
                dst: def(&mut map, dst),
                imm,
            },
            Instr::Param { dst, idx } => Instr::Param {
                dst: def(&mut map, dst),
                idx,
            },
            Instr::Neg { dst, a } => {
                let a = remap(&map, a)?;
                Instr::Neg {
                    dst: def(&mut map, dst),
                    a,
                }
            }
            Instr::Add { dst, a, b } => {
                let (a, b) = (remap(&map, a)?, remap(&map, b)?);
                Instr::Add {
                    dst: def(&mut map, dst),
                    a,
                    b,
                }
            }
            Instr::Sub { dst, a, b } => {
                let (a, b) = (remap(&map, a)?, remap(&map, b)?);
                Instr::Sub {
                    dst: def(&mut map, dst),
                    a,
                    b,
                }
            }
            Instr::Mul { dst, a, b } => {
                let (a, b) = (remap(&map, a)?, remap(&map, b)?);
                Instr::Mul {
                    dst: def(&mut map, dst),
                    a,
                    b,
                }
            }
            Instr::Div { dst, a, b } => {
                let (a, b) = (remap(&map, a)?, remap(&map, b)?);
                Instr::Div {
                    dst: def(&mut map, dst),
                    a,
                    b,
                }
            }
            Instr::Unary { dst, a, f } => {
                let a = remap(&map, a)?;
                Instr::Unary {
                    dst: def(&mut map, dst),
                    a,
                    f,
                }
            }
            Instr::Binary { dst, a, b, f } => {
                let (a, b) = (remap(&map, a)?, remap(&map, b)?);
                Instr::Binary {
                    dst: def(&mut map, dst),
                    a,
                    b,
                    f,
                }
            }
            Instr::Store { buf, src } => Instr::Store {
                buf,
                src: remap(&map, src)?,
            },
            Instr::Reduce { buf, src, op } => Instr::Reduce {
                buf,
                src: remap(&map, src)?,
                op,
            },
        });
    }
    let body_at = l.prelude.len();
    let body = out.split_off(body_at);
    Some(LanePlan {
        prelude: out,
        body,
        num_regs: next as usize,
    })
}

/// Splats one value across a full register row.
#[inline]
fn splat(v: f64) -> Row {
    [[v; LANES]; VECTORS]
}

/// Borrows the destination row mutably and up to two operand rows immutably.
/// Sound without copies because renumbering guarantees `dst > a, b`.
macro_rules! lane_op {
    ($regs:expr, $dst:expr, $a:expr, |$x:ident| $e:expr) => {{
        let (lo, hi) = $regs.split_at_mut($dst as usize);
        let d = &mut hi[0];
        let a = &lo[$a as usize];
        for v in 0..VECTORS {
            for l in 0..LANES {
                let $x = a[v][l];
                d[v][l] = $e;
            }
        }
    }};
    ($regs:expr, $dst:expr, $a:expr, $b:expr, |$x:ident, $y:ident| $e:expr) => {{
        let (lo, hi) = $regs.split_at_mut($dst as usize);
        let d = &mut hi[0];
        let (a, b) = (&lo[$a as usize], &lo[$b as usize]);
        for v in 0..VECTORS {
            for l in 0..LANES {
                let ($x, $y) = (a[v][l], b[v][l]);
                d[v][l] = $e;
            }
        }
    }};
}

/// Executes the lane-parallel schedule over a non-empty domain of `n`
/// elements. The caller has already validated buffers and scalars.
fn run_lanes(plan: &LanePlan, buffers: &mut [Vec<f64>], scalars: &[f64], n: usize) {
    let mut regs: Vec<Row> = vec![splat(0.0); plan.num_regs.max(1)];
    for &instr in &plan.prelude {
        let (dst, v) = match instr {
            Instr::Set { dst, imm } => (dst, imm),
            Instr::Param { dst, idx } => (dst, scalars[idx as usize]),
            Instr::LoadScalar { dst, buf } => (dst, buffers[buf as usize][0]),
            _ => unreachable!("only invariant ops are hoisted"),
        };
        regs[dst as usize] = splat(v);
    }
    let mut base = 0usize;
    while base < n {
        let len = SIMD_CHUNK.min(n - base);
        run_chunk(&plan.body, &mut regs, buffers, base, len);
        base += len;
    }
}

/// Executes the body micro-ops over one chunk of `len` elements starting at
/// `base`. `len < SIMD_CHUNK` only on the final masked tail: loads fill only
/// the valid lanes, arithmetic runs full width (stale dead lanes are never
/// observable), stores and reductions mask back down to `len`.
fn run_chunk(body: &[Instr], regs: &mut [Row], buffers: &mut [Vec<f64>], base: usize, len: usize) {
    for &instr in body {
        match instr {
            Instr::Load { dst, buf } => {
                // Row-major lane order is element order and the row layout is
                // exactly `[f64; SIMD_CHUNK]`, so a (possibly masked) load is
                // one flat memcpy into the leading lanes.
                let row = regs[dst as usize].as_flattened_mut();
                row[..len].copy_from_slice(&buffers[buf as usize][base..base + len]);
            }
            Instr::Neg { dst, a } => lane_op!(regs, dst, a, |x| -x),
            Instr::Add { dst, a, b } => lane_op!(regs, dst, a, b, |x, y| x + y),
            Instr::Sub { dst, a, b } => lane_op!(regs, dst, a, b, |x, y| x - y),
            Instr::Mul { dst, a, b } => lane_op!(regs, dst, a, b, |x, y| x * y),
            Instr::Div { dst, a, b } => lane_op!(regs, dst, a, b, |x, y| x / y),
            Instr::Unary { dst, a, f } => lane_op!(regs, dst, a, |x| f(x)),
            Instr::Binary { dst, a, b, f } => lane_op!(regs, dst, a, b, |x, y| f(x, y)),
            Instr::Store { buf, src } => {
                // The masked write-back mirrors the load: only the `len`
                // valid leading lanes reach memory.
                let row = regs[src as usize].as_flattened();
                buffers[buf as usize][base..base + len].copy_from_slice(&row[..len]);
            }
            Instr::Reduce { buf, src, op } => {
                // Row-major lane order *is* element order, so this fold is
                // bitwise-identical to the interpreter's.
                let row = &regs[src as usize].as_flattened()[..len];
                let mut acc = buffers[buf as usize][0];
                match op {
                    ReduceOp::Sum => {
                        for &x in row {
                            acc += x;
                        }
                    }
                    ReduceOp::Max => {
                        for &x in row {
                            acc = acc.max(x);
                        }
                    }
                    ReduceOp::Min => {
                        for &x in row {
                            acc = acc.min(x);
                        }
                    }
                }
                buffers[buf as usize][0] = acc;
            }
            Instr::LoadScalar { .. } | Instr::Set { .. } | Instr::Param { .. } => {
                unreachable!("invariant ops are always hoisted on the lane path")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::interp::Interpreter;
    use crate::ir::{BinaryOp, BufferId, BufferRole, IndexWidth, UnaryOp};

    fn both(
        module: &KernelModule,
        bufs: &[Vec<f64>],
        scalars: &[f64],
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut a = bufs.to_vec();
        Interpreter::new().execute(module, &mut a, scalars).unwrap();
        let mut b = bufs.to_vec();
        SimdBackend
            .compile(module)
            .unwrap()
            .execute(&mut b, scalars)
            .unwrap();
        (a, b)
    }

    /// Exact bits, with NaNs canonicalized (payloads are non-deterministic;
    /// see the module docs).
    fn bits(bufs: &[Vec<f64>]) -> Vec<Vec<u64>> {
        bufs.iter()
            .map(|b| {
                b.iter()
                    .map(|v| {
                        if v.is_nan() {
                            0x7ff8_0000_0000_0000
                        } else {
                            v.to_bits()
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn saxpy_module() -> KernelModule {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut lb = LoopBuilder::new("saxpy", BufferId(0));
        let x = lb.load(BufferId(0));
        let y = lb.load(BufferId(1));
        let a = lb.param(0);
        let ax = lb.mul(a, x);
        let v = lb.add(ax, y);
        lb.store(BufferId(2), v);
        m.push_loop(lb.finish());
        m
    }

    #[test]
    fn simd_matches_interpreter_across_masked_tail_lengths() {
        let m = saxpy_module();
        // Every tail shape: empty, single element, lane boundary ±1, chunk
        // boundary ±1, prime sizes, multiple chunks.
        for n in [
            0,
            1,
            LANES - 1,
            LANES,
            LANES + 1,
            7,
            13,
            SIMD_CHUNK - 1,
            SIMD_CHUNK,
            SIMD_CHUNK + 1,
            127,
            3 * SIMD_CHUNK + 5,
        ] {
            let bufs = vec![
                (0..n).map(|i| i as f64 * 0.25 - 3.0).collect(),
                (0..n).map(|i| 1.0 / (i as f64 + 0.5)).collect(),
                vec![0.0; n],
            ];
            let (a, b) = both(&m, &bufs, &[1.5]);
            assert_eq!(bits(&a), bits(&b), "n = {n}");
        }
    }

    #[test]
    fn simd_matches_interpreter_on_nonfinite_inputs() {
        let m = saxpy_module();
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            -f64::MIN_POSITIVE / 4.0,
            1.0,
        ];
        let n = SIMD_CHUNK + 3;
        let bufs = vec![
            (0..n).map(|i| specials[i % specials.len()]).collect(),
            (0..n).map(|i| specials[(i + 3) % specials.len()]).collect(),
            vec![0.0; n],
        ];
        let (a, b) = both(&m, &bufs, &[f64::NEG_INFINITY]);
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn reductions_fold_in_element_order() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("sum", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.reduce(BufferId(1), crate::ir::ReduceOp::Sum, x);
        m.push_loop(lb.finish());
        // Magnitudes spread wide enough that any reassociation changes bits.
        for n in [1, LANES + 1, SIMD_CHUNK - 1, SIMD_CHUNK + 1, 2 * SIMD_CHUNK + 13] {
            let bufs = vec![
                (0..n)
                    .map(|i| (i as f64 + 1.0) * 1e16_f64.powi((i % 5) as i32 - 2))
                    .collect(),
                vec![0.125],
            ];
            let (a, b) = both(&m, &bufs, &[]);
            assert_eq!(bits(&a), bits(&b), "n = {n}");
        }
    }

    #[test]
    fn element0_side_channels_take_the_exact_fallback() {
        // A loop that reduces into a buffer *and* broadcast-loads it: each
        // element must observe the running accumulator, which only the exact
        // per-element schedule preserves.
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("prefixy", BufferId(0));
        let acc = lb.load_scalar(BufferId(1));
        let x = lb.load(BufferId(0));
        let contrib = lb.mul(x, acc);
        lb.reduce(BufferId(1), crate::ir::ReduceOp::Sum, contrib);
        m.push_loop(lb.finish());
        let bufs = vec![vec![1.0, 2.0, 3.0], vec![1.0]];
        let (a, b) = both(&m, &bufs, &[]);
        assert_eq!(a, b);
        assert_eq!(a[1][0], 24.0);
    }

    #[test]
    fn unary_and_binary_fn_ops_match() {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut lb = LoopBuilder::new("mix", BufferId(0));
        let x = lb.load(BufferId(0));
        let y = lb.load(BufferId(1));
        let e = lb.unary(UnaryOp::Exp, x);
        let p = lb.binary(BinaryOp::Max, e, y);
        let d = lb.binary(BinaryOp::Div, p, x);
        lb.store(BufferId(2), d);
        m.push_loop(lb.finish());
        let n = SIMD_CHUNK + LANES - 1;
        let bufs = vec![
            (0..n).map(|i| (i as f64 - 32.0) * 0.125).collect(),
            (0..n).map(|i| (i % 7) as f64 - 3.0).collect(),
            vec![0.0; n],
        ];
        let (a, b) = both(&m, &bufs, &[]);
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn simd_matches_interpreter_on_opaque_stages() {
        let mut m = KernelModule::new(5);
        m.push_opaque(OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U32,
        });
        let bufs = vec![
            vec![0.0, 2.0, 3.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0],
            vec![0.0, 0.0],
        ];
        let (a, b) = both(&m, &bufs, &[]);
        assert_eq!(a, b);
        assert_eq!(a[4], vec![14.0, 15.0]);
    }

    #[test]
    fn error_contract_matches_the_interpreter() {
        let compiled = SimdBackend.compile(&saxpy_module()).unwrap();
        let mut bufs = vec![vec![1.0], vec![1.0], vec![0.0]];
        assert_eq!(
            compiled.execute(&mut bufs, &[]),
            Err(ExecError::MissingParam(0))
        );
        let mut short = vec![vec![1.0]];
        assert!(matches!(
            compiled.execute(&mut short, &[1.0]),
            Err(ExecError::MissingBuffer(_))
        ));
        let mut mismatched = vec![vec![1.0, 2.0], vec![1.0], vec![0.0; 2]];
        assert!(matches!(
            compiled.execute(&mut mismatched, &[1.0]),
            Err(ExecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn compile_cost_uses_the_fitted_calibration() {
        let m = saxpy_module();
        let model = CompileTimeModel::default();
        // The surcharge comes from the calibrated per-backend model, and the
        // lane lowering never costs less than the interpreter's anchor.
        assert_eq!(
            SimdBackend.compile_cost(&m, &model),
            model.calibrated("simd").compile_time(&m)
        );
        assert!(
            SimdBackend.compile_cost(&m, &model)
                >= crate::backend::InterpBackend.compile_cost(&m, &model)
        );
    }

    #[test]
    fn renumbered_registers_increase_in_definition_order() {
        let m = saxpy_module();
        let KernelStage::Loop(l) = &m.stages[0] else {
            unreachable!()
        };
        let lowered = lower_loop(l).unwrap();
        assert!(lowered.vectorized);
        let plan = renumber(&lowered).unwrap();
        let mut defined = 0u32;
        for instr in plan.prelude.iter().chain(&plan.body) {
            match *instr {
                Instr::Load { dst, .. }
                | Instr::LoadScalar { dst, .. }
                | Instr::Set { dst, .. }
                | Instr::Param { dst, .. } => {
                    assert_eq!(dst, defined);
                    defined += 1;
                }
                Instr::Neg { dst, a } | Instr::Unary { dst, a, .. } => {
                    assert!(a < dst);
                    assert_eq!(dst, defined);
                    defined += 1;
                }
                Instr::Add { dst, a, b }
                | Instr::Sub { dst, a, b }
                | Instr::Mul { dst, a, b }
                | Instr::Div { dst, a, b }
                | Instr::Binary { dst, a, b, .. } => {
                    assert!(a < dst && b < dst);
                    assert_eq!(dst, defined);
                    defined += 1;
                }
                Instr::Store { src, .. } | Instr::Reduce { src, .. } => {
                    assert!(src < defined);
                }
            }
        }
        assert_eq!(defined as usize, plan.num_regs);
    }
}
