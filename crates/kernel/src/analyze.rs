//! Static abstract interpretation over kernel modules: footprint inference,
//! value ranges, and privilege tightening (`docs/ANALYZE.md`).
//!
//! This is the analysis half of the `diffuse-analyze` layer. It runs a
//! forward dataflow over each [`KernelStage`] of a [`KernelModule`] and
//! computes, per buffer, an affine **access summary** for every access kind
//! (the [`ir::AccessPattern`] lattice: ⊥ / exact `a·i + b` forms / ⊤) plus a
//! **value-range interval** for the values the kernel may write. From the
//! joined module footprint it derives an [`EffectiveSignature`]: the declared
//! [`TaskSignature`] with every privilege the kernel provably never exercises
//! tightened to read-only.
//!
//! Soundness contract (checked by `crates/kernel/tests/analyze_soundness.rs`
//! against an instrumented interpreter): for every buffer and access kind,
//! the inferred pattern **over-approximates** the set of elements any dynamic
//! execution touches. Loop stages are summarized exactly — in this IR every
//! loop access is `buffer[i]` or `buffer[0]` — while opaque stages fall back
//! to ⊤ for both reads and writes of every buffer they name (never a wrong
//! tight summary).
//!
//! Tightening is deliberately *narrowing-only and copy-exact*: a declared
//! `Write`/`ReadWrite`/`Reduce` argument becomes `Read` only when the module
//! admits **no** store and no reduction to that buffer. Because the runtime's
//! stage protocol copies every argument in unconditionally and copies out
//! only under a writing privilege, skipping the copy-out of a provably
//! untouched buffer writes back exactly the bytes that are already there —
//! the tightened execution is bitwise-identical to the declared one.

use ::ir::{summary_fingerprint, AccessPattern, AffineForm, BufferFootprint};

use crate::generator::{ArgSpec, TaskSignature};
use crate::ir::{BinaryOp, KernelModule, KernelStage, LoopKernel, LoopOp, UnaryOp};

/// A closed interval over the extended reals, the value-range lattice for
/// scalar SSA values. `NaN` is tracked out-of-band: an interval bounds only
/// the non-NaN values a computation can produce, and [`Interval::contains`]
/// admits `NaN` unconditionally (every lattice element includes it).
///
/// `EMPTY` (⊥, `lo > hi`) means no value; `TOP` is `[-∞, +∞]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// The empty interval (⊥ — no value observed).
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };
    /// The full interval (⊤ — any value).
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// A single-point interval. `NaN` constants widen to ⊤ (NaN is tracked
    /// out-of-band, so an interval must still bound nothing falsely).
    pub fn constant(v: f64) -> Interval {
        if v.is_nan() {
            Interval::TOP
        } else {
            Interval { lo: v, hi: v }
        }
    }

    /// Whether the interval is ⊥.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether the interval is ⊤.
    pub fn is_top(self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// Lattice join (interval hull).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Membership: `v` is admitted if it is `NaN` (tracked out-of-band) or
    /// falls within the bounds.
    pub fn contains(self, v: f64) -> bool {
        v.is_nan() || (self.lo <= v && v <= self.hi)
    }

    /// Builds an interval from candidate endpoint values, widening to ⊤ if
    /// any endpoint computation produced `NaN` (e.g. `0 · ∞`).
    fn from_endpoints(candidates: &[f64]) -> Interval {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &c in candidates {
            if c.is_nan() {
                return Interval::TOP;
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "⊥")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Interval transfer function of a unary operator. Monotone operators map
/// endpoints; everything else returns a correct coarse bound or ⊤.
fn unary_range(op: UnaryOp, a: Interval) -> Interval {
    if a.is_empty() {
        return Interval::EMPTY;
    }
    match op {
        UnaryOp::Neg => Interval::from_endpoints(&[-a.lo, -a.hi]),
        UnaryOp::Abs => {
            if a.lo >= 0.0 {
                a
            } else if a.hi <= 0.0 {
                Interval::from_endpoints(&[-a.lo, -a.hi])
            } else {
                Interval::from_endpoints(&[0.0, a.hi.max(-a.lo)])
            }
        }
        UnaryOp::Sqrt => {
            // Negative inputs produce NaN (out-of-band); bound the real part.
            Interval::from_endpoints(&[a.lo.max(0.0).sqrt(), a.hi.max(0.0).sqrt()])
        }
        UnaryOp::Exp => Interval::from_endpoints(&[a.lo.exp(), a.hi.exp()]),
        // Erf is monotone onto (-1, 1); Ln is monotone on the real part.
        UnaryOp::Erf => Interval { lo: -1.0, hi: 1.0 },
        UnaryOp::Ln | UnaryOp::Recip => Interval::TOP,
    }
}

/// Interval transfer function of a binary operator.
fn binary_range(op: BinaryOp, a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::EMPTY;
    }
    match op {
        BinaryOp::Add => Interval::from_endpoints(&[a.lo + b.lo, a.hi + b.hi]),
        BinaryOp::Sub => Interval::from_endpoints(&[a.lo - b.hi, a.hi - b.lo]),
        BinaryOp::Mul => Interval::from_endpoints(&[
            a.lo * b.lo,
            a.lo * b.hi,
            a.hi * b.lo,
            a.hi * b.hi,
        ]),
        BinaryOp::Max => Interval::from_endpoints(&[a.lo.max(b.lo), a.hi.max(b.hi)]),
        BinaryOp::Min => Interval::from_endpoints(&[a.lo.min(b.lo), a.hi.min(b.hi)]),
        // Division and pow have sign/pole case splits; ⊤ is always sound.
        BinaryOp::Div | BinaryOp::Pow => Interval::TOP,
    }
}

/// The per-stage footprint: one [`BufferFootprint`] per module buffer.
pub type StageFootprint = Vec<BufferFootprint>;

/// The result of analyzing one [`KernelModule`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSummary {
    /// Per-stage footprints, in stage order (⊤ rows for opaque stages).
    pub stages: Vec<StageFootprint>,
    /// The joined module footprint: per buffer, the join over all stages.
    pub buffers: Vec<BufferFootprint>,
    /// Per buffer, the interval bounding every value the module may write
    /// into it (⊥ when the buffer is never written; ⊤ under reductions and
    /// opaque writes).
    pub value_ranges: Vec<Interval>,
    /// Deterministic fingerprint of the joined footprint
    /// ([`ir::summary_fingerprint`]), the key under which analysis results
    /// are memoized and compared.
    pub fingerprint: u64,
}

impl ModuleSummary {
    /// The joined footprint of one buffer (all-⊥ out of range).
    pub fn buffer(&self, index: usize) -> BufferFootprint {
        self.buffers.get(index).cloned().unwrap_or_default()
    }
}

/// Forward dataflow over one loop stage: walks the SSA body once (def before
/// use is guaranteed by the verifier), tracking a value range per SSA value
/// and joining an affine form into the footprint at every access site.
fn analyze_loop(l: &LoopKernel, footprint: &mut [BufferFootprint], ranges: &mut [Interval]) {
    let mut values = vec![Interval::TOP; l.num_values()];
    let get = |values: &[Interval], v: crate::ir::ValueId| {
        values.get(v.0 as usize).copied().unwrap_or(Interval::TOP)
    };
    for op in &l.ops {
        match op {
            LoopOp::Load { dst, buffer } => {
                if let Some(fp) = footprint.get_mut(buffer.0 as usize) {
                    fp.reads.join_form(AffineForm::IDENTITY);
                }
                values[dst.0 as usize] = Interval::TOP;
            }
            LoopOp::LoadScalar { dst, buffer } => {
                if let Some(fp) = footprint.get_mut(buffer.0 as usize) {
                    fp.reads.join_form(AffineForm::ELEMENT0);
                }
                values[dst.0 as usize] = Interval::TOP;
            }
            LoopOp::Const { dst, value } => {
                values[dst.0 as usize] = Interval::constant(*value);
            }
            LoopOp::Param { dst, .. } => {
                values[dst.0 as usize] = Interval::TOP;
            }
            LoopOp::Unary { dst, op, a } => {
                values[dst.0 as usize] = unary_range(*op, get(&values, *a));
            }
            LoopOp::Binary { dst, op, a, b } => {
                values[dst.0 as usize] = binary_range(*op, get(&values, *a), get(&values, *b));
            }
            LoopOp::Store { buffer, src } => {
                if let Some(fp) = footprint.get_mut(buffer.0 as usize) {
                    fp.writes.join_form(AffineForm::IDENTITY);
                }
                if let Some(r) = ranges.get_mut(buffer.0 as usize) {
                    *r = r.join(get(&values, *src));
                }
            }
            LoopOp::Reduce { buffer, src, .. } => {
                if let Some(fp) = footprint.get_mut(buffer.0 as usize) {
                    fp.reduces.join_form(AffineForm::ELEMENT0);
                }
                // Accumulation folds the buffer's prior value in, so the
                // written value is unbounded by the per-iteration source.
                let _ = src;
                if let Some(r) = ranges.get_mut(buffer.0 as usize) {
                    *r = Interval::TOP;
                }
            }
        }
    }
}

/// Infers the access footprint of a module: a forward dataflow per stage,
/// joined into a per-buffer module summary (see the module docs for the
/// soundness contract).
///
/// The pass is linear in the number of ops and runs once per task kind at
/// registration/verification time — results are memoized by the caller under
/// the module's content key, so the launch hot path never re-analyzes.
///
/// # Example
///
/// ```
/// use kernel::{analyze::infer_footprint, BufferId, BufferRole, KernelModule, LoopBuilder};
///
/// let mut m = KernelModule::new(2);
/// m.set_role(BufferId(1), BufferRole::Output);
/// let mut lb = LoopBuilder::new("scale", BufferId(0));
/// let x = lb.load(BufferId(0));
/// let c = lb.constant(3.0);
/// let v = lb.mul(x, c);
/// lb.store(BufferId(1), v);
/// m.push_loop(lb.finish());
///
/// let summary = infer_footprint(&m);
/// assert!(summary.buffers[0].is_read_only());
/// assert!(summary.buffers[1].writes.is_exact());
/// ```
pub fn infer_footprint(module: &KernelModule) -> ModuleSummary {
    let n = module.num_buffers() as usize;
    let mut stages = Vec::with_capacity(module.num_stages());
    let mut joined = vec![BufferFootprint::default(); n];
    let mut ranges = vec![Interval::EMPTY; n];
    for stage in &module.stages {
        let mut fp = vec![BufferFootprint::default(); n];
        match stage {
            KernelStage::Loop(l) => analyze_loop(l, &mut fp, &mut ranges),
            KernelStage::Opaque(op) => {
                // ⊤ fallback: opaque host loops (SpMV, GEMV, restrict,
                // prolong) index through runtime data, so nothing tighter
                // than "may touch any element" is provable here. Written
                // buffers are also marked ⊤-read: accumulating opaques read
                // their outputs.
                for b in op.read_buffers() {
                    if let Some(f) = fp.get_mut(b.0 as usize) {
                        f.reads = AccessPattern::Top;
                    }
                }
                for b in op.written_buffers() {
                    if let Some(f) = fp.get_mut(b.0 as usize) {
                        f.reads = AccessPattern::Top;
                        f.writes = AccessPattern::Top;
                    }
                    if let Some(r) = ranges.get_mut(b.0 as usize) {
                        *r = Interval::TOP;
                    }
                }
            }
        }
        for (j, f) in joined.iter_mut().zip(&fp) {
            *j = j.join(f);
        }
        stages.push(fp);
    }
    let fingerprint = summary_fingerprint(&joined);
    ModuleSummary {
        stages,
        buffers: joined,
        value_ranges: ranges,
        fingerprint,
    }
}

/// A declared [`TaskSignature`] refined by footprint inference: per argument,
/// the declared [`ArgSpec`] and the (possibly tightened) effective one.
///
/// Only narrowing refinements are produced — an effective spec never grants
/// an access the declared one withheld — and only the copy-exact tightening
/// `{Write, ReadWrite, Reduce} → Read` for arguments the module provably
/// never stores or reduces (see the module docs for why that is
/// bitwise-invisible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectiveSignature {
    declared: Vec<ArgSpec>,
    effective: Vec<ArgSpec>,
    num_scalars: usize,
}

impl EffectiveSignature {
    /// The effective (analyzer-tightened) specs, in argument order.
    pub fn args(&self) -> &[ArgSpec] {
        &self.effective
    }

    /// The declared specs, in argument order.
    pub fn declared(&self) -> &[ArgSpec] {
        &self.declared
    }

    /// The arguments whose spec was tightened, as
    /// `(index, declared, effective)`.
    pub fn tightened(&self) -> impl Iterator<Item = (usize, ArgSpec, ArgSpec)> + '_ {
        self.declared
            .iter()
            .zip(&self.effective)
            .enumerate()
            .filter(|(_, (d, e))| d != e)
            .map(|(i, (d, e))| (i, *d, *e))
    }

    /// Number of tightened arguments.
    pub fn num_tightened(&self) -> usize {
        self.tightened().count()
    }

    /// Whether any argument was tightened.
    pub fn is_tightened(&self) -> bool {
        self.declared != self.effective
    }

    /// Rebuilds a [`TaskSignature`] from the effective specs, e.g. to re-run
    /// [`crate::verify::verify_against_signature`] as the independent
    /// cross-check of an analyzer-tightened launch.
    pub fn to_signature(&self) -> TaskSignature {
        let mut sig = TaskSignature::new();
        for &spec in &self.effective {
            sig = sig.arg(spec);
        }
        sig.scalars(self.num_scalars)
    }
}

/// Derives the effective signature of a module against its declared one:
/// each declared write/reduce privilege whose buffer the module provably
/// never mutates ([`BufferFootprint::is_read_only`]) is tightened to
/// [`ArgSpec::Read`]; everything else — including every ⊤ footprint — keeps
/// its declared spec.
///
/// # Example
///
/// ```
/// use kernel::analyze::{effective_signature, infer_footprint};
/// use kernel::{ArgSpec, BufferId, BufferRole, KernelModule, LoopBuilder, TaskSignature};
///
/// // Declared read+write+write, but the kernel never touches buffer 2.
/// let mut m = KernelModule::new(3);
/// m.set_role(BufferId(1), BufferRole::Output);
/// let mut lb = LoopBuilder::new("copy", BufferId(0));
/// let x = lb.load(BufferId(0));
/// lb.store(BufferId(1), x);
/// m.push_loop(lb.finish());
///
/// let declared = TaskSignature::new().read().write().write();
/// let eff = effective_signature(&m, &declared);
/// assert_eq!(eff.args(), &[ArgSpec::Read, ArgSpec::Write, ArgSpec::Read]);
/// assert_eq!(eff.num_tightened(), 1);
/// ```
pub fn effective_signature(module: &KernelModule, declared: &TaskSignature) -> EffectiveSignature {
    let summary = infer_footprint(module);
    effective_signature_from_summary(&summary, declared)
}

/// Like [`effective_signature`], reusing an already-computed summary (the
/// memoized path: the context caches [`ModuleSummary`] per module content
/// key and derives signatures from the cache).
pub fn effective_signature_from_summary(
    summary: &ModuleSummary,
    declared: &TaskSignature,
) -> EffectiveSignature {
    let declared_args: Vec<ArgSpec> = declared.args().to_vec();
    let effective = declared_args
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let tightenable = matches!(
                spec,
                ArgSpec::Write | ArgSpec::ReadWrite | ArgSpec::Reduce
            );
            if tightenable && summary.buffer(i).is_read_only() {
                ArgSpec::Read
            } else {
                spec
            }
        })
        .collect();
    EffectiveSignature {
        declared: declared_args,
        effective,
        num_scalars: declared.num_scalars(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ir::{BufferId, BufferRole, OpaqueOp, ReduceOp};

    fn scale_module() -> KernelModule {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        let c = lb.constant(3.0);
        let v = lb.mul(x, c);
        lb.store(BufferId(1), v);
        m.push_loop(lb.finish());
        m
    }

    #[test]
    fn elementwise_footprint_is_exact() {
        let s = infer_footprint(&scale_module());
        assert_eq!(s.buffers[0].reads.forms().unwrap(), &[AffineForm::IDENTITY]);
        assert!(s.buffers[0].is_read_only());
        assert_eq!(s.buffers[1].writes.forms().unwrap(), &[AffineForm::IDENTITY]);
        assert!(s.buffers[1].reads.is_bottom());
        assert!(s.buffers.iter().all(BufferFootprint::is_exact));
    }

    #[test]
    fn reduction_footprint_hits_element_zero() {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Reduction);
        let mut lb = LoopBuilder::new("dot", BufferId(0));
        let x = lb.load(BufferId(0));
        let y = lb.load(BufferId(1));
        let v = lb.mul(x, y);
        lb.reduce(BufferId(2), ReduceOp::Sum, v);
        m.push_loop(lb.finish());
        let s = infer_footprint(&m);
        assert_eq!(
            s.buffers[2].reduces.forms().unwrap(),
            &[AffineForm::ELEMENT0]
        );
        assert!(s.buffers[2].writes.is_bottom());
        assert!(s.value_ranges[2].is_top());
    }

    #[test]
    fn opaque_stage_is_top() {
        let mut m = KernelModule::new(5);
        m.set_role(BufferId(4), BufferRole::Output);
        m.push_opaque(OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: crate::ir::IndexWidth::U64,
        });
        let s = infer_footprint(&m);
        assert!(s.buffers[0].reads.is_top());
        assert!(s.buffers[4].writes.is_top());
        assert!(!s.buffers[4].is_exact());
        // ⊤, never a wrong tight summary: nothing in an opaque row is exact.
        assert!(s.stages[0].iter().all(|f| !f.reads.is_exact()
            && !f.writes.is_exact()
            && !f.reduces.is_exact()));
    }

    #[test]
    fn value_range_of_constant_store() {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("fill", BufferId(0));
        let a = lb.constant(2.0);
        let b = lb.constant(3.0);
        let v = lb.add(a, b);
        lb.store(BufferId(1), v);
        m.push_loop(lb.finish());
        let s = infer_footprint(&m);
        assert_eq!(s.value_ranges[1], Interval { lo: 5.0, hi: 5.0 });
        // The loaded-input module stores an unbounded value.
        assert!(infer_footprint(&scale_module()).value_ranges[1].is_top());
    }

    #[test]
    fn interval_arithmetic_is_sound_on_samples() {
        let a = Interval { lo: -2.0, hi: 3.0 };
        let b = Interval { lo: 0.5, hi: 4.0 };
        for op in [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Max,
            BinaryOp::Min,
            BinaryOp::Div,
            BinaryOp::Pow,
        ] {
            let out = binary_range(op, a, b);
            for &x in &[a.lo, 0.0, a.hi] {
                for &y in &[b.lo, 1.0, b.hi] {
                    let v = match op {
                        BinaryOp::Add => x + y,
                        BinaryOp::Sub => x - y,
                        BinaryOp::Mul => x * y,
                        BinaryOp::Div => x / y,
                        BinaryOp::Max => x.max(y),
                        BinaryOp::Min => x.min(y),
                        BinaryOp::Pow => x.powf(y),
                    };
                    assert!(out.contains(v), "{op:?}({x},{y})={v} not in {out}");
                }
            }
        }
        for op in [
            UnaryOp::Neg,
            UnaryOp::Abs,
            UnaryOp::Sqrt,
            UnaryOp::Exp,
            UnaryOp::Ln,
            UnaryOp::Erf,
            UnaryOp::Recip,
        ] {
            let out = unary_range(op, a);
            for &x in &[a.lo, -0.5, 0.0, 1.5, a.hi] {
                let v = match op {
                    UnaryOp::Neg => -x,
                    UnaryOp::Abs => x.abs(),
                    UnaryOp::Sqrt => x.sqrt(),
                    UnaryOp::Exp => x.exp(),
                    UnaryOp::Ln => x.ln(),
                    UnaryOp::Erf => 0.99, // erf range is (-1, 1)
                    UnaryOp::Recip => 1.0 / x,
                };
                assert!(out.contains(v), "{op:?}({x})={v} not in {out}");
            }
        }
    }

    #[test]
    fn tightening_never_widens() {
        let m = scale_module();
        // Exactly declared: nothing to tighten.
        let precise = TaskSignature::new().read().write();
        assert!(!effective_signature(&m, &precise).is_tightened());
        // Phantom second write: tightened to Read.
        let mut m3 = KernelModule::new(3);
        m3.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.store(BufferId(1), x);
        m3.push_loop(lb.finish());
        let broad = TaskSignature::new().read().write().read_write().scalars(1);
        let eff = effective_signature(&m3, &broad);
        assert_eq!(
            eff.args(),
            &[ArgSpec::Read, ArgSpec::Write, ArgSpec::Read]
        );
        assert_eq!(
            eff.tightened().collect::<Vec<_>>(),
            vec![(2, ArgSpec::ReadWrite, ArgSpec::Read)]
        );
        // The rebuilt signature passes the signature validator.
        assert!(crate::verify::verify_against_signature(&m3, &eff.to_signature()).is_ok());
        assert_eq!(eff.to_signature().num_scalars(), 1);
    }

    #[test]
    fn summary_fingerprint_is_stable_and_content_sensitive() {
        let a = infer_footprint(&scale_module());
        let b = infer_footprint(&scale_module());
        assert_eq!(a.fingerprint, b.fingerprint);
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("copy2", BufferId(0));
        let x = lb.load(BufferId(0));
        lb.store(BufferId(1), x);
        lb.reduce(BufferId(0), ReduceOp::Sum, x);
        m.push_loop(lb.finish());
        assert_ne!(a.fingerprint, infer_footprint(&m).fingerprint);
    }
}
