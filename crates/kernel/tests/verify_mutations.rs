//! Mutation-style negative property tests for `kernel::verify`.
//!
//! Each test generates a random *well-formed* module (which must verify
//! cleanly), applies one targeted corruption of the kind a buggy generator,
//! composer or lowering could introduce — an undefined operand, an aliased
//! SSA destination, a store into a read-only buffer, a shrunken buffer, a
//! store/reduce overlap, a signature drift — and asserts that the verifier
//! rejects the mutant with the *specific* [`VerifyError`] variant that names
//! the violated invariant. The point is not just "some error": a verifier
//! that trips the wrong check would produce useless diagnostics.

use kernel::builder::LoopBuilder;
use kernel::ir::{
    BinaryOp, BufferId, BufferRole, KernelModule, KernelStage, LoopOp, ReduceOp, ValueId,
};
use kernel::{verify_against_signature, verify_module, TaskSignature, VerifyError};
use proptest::prelude::*;

/// Iteration-domain length of every generated module.
const N: usize = 8;

/// Builds a well-formed elementwise module: `ni` input buffers, a random
/// arithmetic chain over them (shaped by `picks`), and one store into a
/// dedicated output buffer. Every generated module verifies cleanly.
fn build_module(ni: usize, picks: &[(u8, u8, u8)]) -> KernelModule {
    let mut m = KernelModule::new(ni as u32 + 1);
    let out = BufferId(ni as u32);
    m.set_role(out, BufferRole::Output);
    let mut lb = LoopBuilder::new("gen", BufferId(0));
    let mut vals: Vec<ValueId> = (0..ni).map(|b| lb.load(BufferId(b as u32))).collect();
    for &(op, a, b) in picks {
        let x = vals[a as usize % vals.len()];
        let y = vals[b as usize % vals.len()];
        let op = match op % 4 {
            0 => BinaryOp::Add,
            1 => BinaryOp::Sub,
            2 => BinaryOp::Mul,
            _ => BinaryOp::Max,
        };
        vals.push(lb.binary(op, x, y));
    }
    let result = *vals.last().unwrap();
    lb.store(out, result);
    m.push_loop(lb.finish());
    m
}

fn arb_module() -> impl Strategy<Value = KernelModule> {
    (
        1usize..4,
        prop::collection::vec((0u8..4, 0u8..8, 0u8..8), 1..6),
    )
        .prop_map(|(ni, picks)| build_module(ni, &picks))
}

/// Buffer lengths matching the generated layout: `N` for every buffer.
fn full_lens(m: &KernelModule) -> Vec<usize> {
    vec![N; m.num_buffers() as usize]
}

/// The single loop stage of a generated module, for mutation.
fn loop_ops(m: &mut KernelModule) -> &mut Vec<LoopOp> {
    match &mut m.stages[0] {
        KernelStage::Loop(l) => &mut l.ops,
        KernelStage::Opaque(_) => panic!("generated modules have one loop stage"),
    }
}

/// Op indices of the module's arithmetic (mutable-operand) instructions.
fn arith_indices(m: &KernelModule) -> Vec<usize> {
    match &m.stages[0] {
        KernelStage::Loop(l) => l
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, LoopOp::Binary { .. }))
            .map(|(i, _)| i)
            .collect(),
        KernelStage::Opaque(_) => panic!("generated modules have one loop stage"),
    }
}

proptest! {
    /// The unmutated module always verifies — the baseline every mutation
    /// test below perturbs.
    #[test]
    fn generated_modules_verify(m in arb_module()) {
        prop_assert!(verify_module(&m, Some(&full_lens(&m))).unwrap() > 0);
    }

    /// Corrupting one arithmetic operand to a never-defined value is caught
    /// as use-before-def.
    #[test]
    fn undefined_operand_is_rejected(m in arb_module(), pick in 0usize..64) {
        let mut m = m;
        let arith = arith_indices(&m);
        let target = arith[pick % arith.len()];
        let bogus = ValueId(u32::MAX);
        if let LoopOp::Binary { a, .. } = &mut loop_ops(&mut m)[target] {
            *a = bogus;
        }
        prop_assert_eq!(
            verify_module(&m, None),
            Err(VerifyError::UseBeforeDef { stage: 0, op: target, value: bogus })
        );
    }

    /// Aliasing one op's destination onto an earlier definition is caught as
    /// a multiple assignment (the SSA invariant every backend relies on).
    #[test]
    fn aliased_destination_is_rejected(m in arb_module(), pick in 0usize..64) {
        let mut m = m;
        let arith = arith_indices(&m);
        let target = arith[pick % arith.len()];
        // Every generated module loads at least one input first, so value 0
        // is always defined before any arithmetic op.
        let aliased = ValueId(0);
        if let LoopOp::Binary { dst, .. } = &mut loop_ops(&mut m)[target] {
            *dst = aliased;
        }
        prop_assert_eq!(
            verify_module(&m, None),
            Err(VerifyError::MultipleAssignment { stage: 0, op: target, value: aliased })
        );
    }

    /// Demoting the stored buffer's role back to `Input` is caught as a role
    /// mismatch: kernels must never write read-only arguments.
    #[test]
    fn store_into_input_role_is_rejected(m in arb_module()) {
        let mut m = m;
        let out = BufferId(m.num_buffers() - 1);
        m.set_role(out, BufferRole::Input);
        prop_assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::RoleMismatch { buffer, access: "store", .. }) if buffer == out
        ));
    }

    /// Shrinking the output buffer below the iteration domain is caught as an
    /// out-of-bounds access against the compiled layout.
    #[test]
    fn shrunken_buffer_is_rejected(m in arb_module(), shrink in 1usize..N) {
        let mut lens = full_lens(&m);
        let out = m.num_buffers() as usize - 1;
        lens[out] = N - shrink;
        prop_assert_eq!(
            verify_module(&m, Some(&lens)),
            Err(VerifyError::BufferTooSmall {
                stage: 0,
                buffer: BufferId(out as u32),
                needed: N,
                available: N - shrink,
            })
        );
    }

    /// Appending a reduction into the elementwise-stored output buffer is
    /// caught as a store/reduce overlap (the fold would race the stores).
    #[test]
    fn store_reduce_overlap_is_rejected(m in arb_module()) {
        let mut m = m;
        let out = BufferId(m.num_buffers() - 1);
        loop_ops(&mut m).push(LoopOp::Reduce {
            buffer: out,
            op: ReduceOp::Sum,
            src: ValueId(0),
        });
        prop_assert!(matches!(
            verify_module(&m, None),
            Err(VerifyError::StoreReduceOverlap { stage: 0, buffer }) if buffer == out
        ));
    }

    /// A signature that flips the written argument to `Read` disagrees with
    /// the kernel and is rejected as a role conflict — while the matching
    /// signature passes.
    #[test]
    fn signature_drift_is_rejected(m in arb_module()) {
        let ni = m.num_buffers() as usize - 1;
        let mut good = TaskSignature::new();
        for _ in 0..ni {
            good = good.read();
        }
        prop_assert!(verify_against_signature(&m, &good.clone().write()).is_ok());
        let drifted = good.read(); // declares the stored output read-only
        prop_assert!(matches!(
            verify_against_signature(&m, &drifted),
            Err(VerifyError::SignatureRoleConflict { arg, access: "store", .. }) if arg == ni
        ));
    }
}
