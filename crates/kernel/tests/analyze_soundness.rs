//! Soundness harness for the static footprint analysis (`kernel::analyze`):
//! the inferred summary must **over-approximate** every dynamic access.
//!
//! The property test generates random modules (the same raw-op scheme as the
//! backend differential harness: random straight-line loop bodies mixed with
//! restrict/prolong opaque stages) over random domain lengths, executes them
//! with an *instrumented interpreter* that records every dynamic access as a
//! `(buffer, kind, induction, index)` tuple plus every value stored, and then
//! checks the static [`infer_footprint`] summary against the trace:
//!
//! 1. **Coverage** — every observed access is admitted by the per-stage
//!    footprint and by the joined module footprint (`inferred ⊇ observed`).
//! 2. **⊤ for opaque** — every buffer an opaque stage names is ⊤ in that
//!    stage's row: the analysis may be imprecise there but never claims a
//!    wrong tight summary.
//! 3. **Lattice consistency** — each stage footprint is `covered_by` the
//!    joined module footprint.
//! 4. **Tightening contract** — a buffer the summary calls read-only is
//!    bitwise unchanged by execution (the exact property privilege
//!    tightening relies on; see `docs/ANALYZE.md`).
//! 5. **Value ranges** — every value dynamically stored into a buffer lies
//!    in the buffer's inferred interval (`Interval::contains`, NaN admitted
//!    out-of-band).
//!
//! The instrumented interpreter re-implements the loop semantics, so it is
//! itself validated per case: its final buffers must match the reference
//! `kernel::Interpreter` bitwise (NaNs canonicalized).

use std::collections::HashSet;

use proptest::prelude::*;

use ir::{AccessPattern, BufferFootprint};
use kernel::analyze::infer_footprint;
use kernel::interp::erf;
use kernel::{
    BinaryOp, BufferId, BufferRole, IndexWidth, Interpreter, KernelModule, KernelStage,
    LoopKernel, LoopOp, OpaqueOp, ReduceOp, UnaryOp, ValueId,
};

/// Number of buffers every generated module uses.
const BUFS: u32 = 5;
/// Scalar parameters provided at execution time.
const SCALARS: [f64; 3] = [0.5, -1.75, 3.0];

const UNARY: [UnaryOp; 7] = [
    UnaryOp::Neg,
    UnaryOp::Sqrt,
    UnaryOp::Exp,
    UnaryOp::Ln,
    UnaryOp::Abs,
    UnaryOp::Erf,
    UnaryOp::Recip,
];
const BINARY: [BinaryOp; 7] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Max,
    BinaryOp::Min,
    BinaryOp::Pow,
];
const REDUCE: [ReduceOp; 3] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min];

/// One raw op choice: (kind, a, b, c) reduced modulo whatever the kind
/// needs, so any random tuple builds a well-formed op.
type RawOp = (u8, u64, u64, u64);

/// Builds a loop body from raw choices, tracking defined SSA values so every
/// generated module is well-formed.
fn build_loop(domain: BufferId, raw_ops: &[RawOp]) -> LoopKernel {
    let mut ops = Vec::new();
    let mut next_value = 0u32;
    for &(kind, a, b, c) in raw_ops {
        let defined = next_value;
        let pick = |x: u64| ValueId((x % defined.max(1) as u64) as u32);
        let buf = |x: u64| BufferId((x % BUFS as u64) as u32);
        match kind % 8 {
            0 => {
                ops.push(LoopOp::Load { dst: ValueId(next_value), buffer: buf(a) });
                next_value += 1;
            }
            1 => {
                ops.push(LoopOp::LoadScalar { dst: ValueId(next_value), buffer: buf(a) });
                next_value += 1;
            }
            2 => {
                ops.push(LoopOp::Const {
                    dst: ValueId(next_value),
                    value: (b as f64) - 8.0 + (c as f64) * 0.125,
                });
                next_value += 1;
            }
            3 => {
                ops.push(LoopOp::Param {
                    dst: ValueId(next_value),
                    index: (a % SCALARS.len() as u64) as usize,
                });
                next_value += 1;
            }
            4 if defined > 0 => {
                ops.push(LoopOp::Unary {
                    dst: ValueId(next_value),
                    op: UNARY[(a % UNARY.len() as u64) as usize],
                    a: pick(b),
                });
                next_value += 1;
            }
            5 if defined > 0 => {
                ops.push(LoopOp::Binary {
                    dst: ValueId(next_value),
                    op: BINARY[(a % BINARY.len() as u64) as usize],
                    a: pick(b),
                    b: pick(c),
                });
                next_value += 1;
            }
            6 if defined > 0 => {
                ops.push(LoopOp::Store { buffer: buf(a), src: pick(b) });
            }
            7 if defined > 0 => {
                ops.push(LoopOp::Reduce {
                    buffer: buf(a),
                    op: REDUCE[(b % REDUCE.len() as u64) as usize],
                    src: pick(c),
                });
            }
            _ => {
                ops.push(LoopOp::Load { dst: ValueId(next_value), buffer: buf(a) });
                next_value += 1;
            }
        }
    }
    LoopKernel { name: "random".into(), domain, ops, parallel: false }
}

/// Access kinds of the dynamic trace, mirroring [`BufferFootprint`] fields.
const READ: u8 = 0;
const WRITE: u8 = 1;
const REDUCES: u8 = 2;

/// One stage's dynamic trace: `(buffer, kind, induction value, index)`.
/// Opaque stages have no induction variable; they record induction 0 (their
/// summaries are ⊤, which admits any pair).
type AccessSet = HashSet<(u32, u8, i64, i64)>;

fn apply_unary(op: UnaryOp, a: f64) -> f64 {
    match op {
        UnaryOp::Neg => -a,
        UnaryOp::Sqrt => a.sqrt(),
        UnaryOp::Exp => a.exp(),
        UnaryOp::Ln => a.ln(),
        UnaryOp::Abs => a.abs(),
        UnaryOp::Erf => erf(a),
        UnaryOp::Recip => 1.0 / a,
    }
}

fn apply_binary(op: BinaryOp, a: f64, b: f64) -> f64 {
    match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => a / b,
        BinaryOp::Max => a.max(b),
        BinaryOp::Min => a.min(b),
        BinaryOp::Pow => a.powf(b),
    }
}

/// Executes one loop stage while recording every access and stored value.
fn run_loop_instrumented(
    l: &LoopKernel,
    bufs: &mut [Vec<f64>],
    scalars: &[f64],
    trace: &mut AccessSet,
    stored: &mut Vec<(u32, f64)>,
) {
    let n = bufs[l.domain.0 as usize].len();
    let mut values = vec![0.0f64; l.num_values()];
    for i in 0..n {
        let iv = i as i64;
        for op in &l.ops {
            match op {
                LoopOp::Load { dst, buffer } => {
                    trace.insert((buffer.0, READ, iv, iv));
                    values[dst.0 as usize] = bufs[buffer.0 as usize][i];
                }
                LoopOp::LoadScalar { dst, buffer } => {
                    trace.insert((buffer.0, READ, iv, 0));
                    values[dst.0 as usize] = bufs[buffer.0 as usize][0];
                }
                LoopOp::Const { dst, value } => values[dst.0 as usize] = *value,
                LoopOp::Param { dst, index } => values[dst.0 as usize] = scalars[*index],
                LoopOp::Unary { dst, op, a } => {
                    values[dst.0 as usize] = apply_unary(*op, values[a.0 as usize]);
                }
                LoopOp::Binary { dst, op, a, b } => {
                    values[dst.0 as usize] =
                        apply_binary(*op, values[a.0 as usize], values[b.0 as usize]);
                }
                LoopOp::Store { buffer, src } => {
                    trace.insert((buffer.0, WRITE, iv, iv));
                    let v = values[src.0 as usize];
                    stored.push((buffer.0, v));
                    bufs[buffer.0 as usize][i] = v;
                }
                LoopOp::Reduce { buffer, op, src } => {
                    trace.insert((buffer.0, REDUCES, iv, 0));
                    let acc = bufs[buffer.0 as usize][0];
                    bufs[buffer.0 as usize][0] = op.apply(acc, values[src.0 as usize]);
                }
            }
        }
    }
}

/// Executes one opaque stage while recording its (data-dependent) accesses.
fn run_opaque_instrumented(op: &OpaqueOp, bufs: &mut [Vec<f64>], trace: &mut AccessSet) {
    match op {
        OpaqueOp::SpMvCsr { pos, crd, vals, x, y, .. } => {
            let rows = bufs[y.0 as usize].len();
            for r in 0..rows {
                trace.insert((pos.0, READ, 0, r as i64));
                trace.insert((pos.0, READ, 0, r as i64 + 1));
                let start = bufs[pos.0 as usize][r] as usize;
                let end = bufs[pos.0 as usize][r + 1] as usize;
                let mut acc = 0.0;
                for k in start..end {
                    trace.insert((crd.0, READ, 0, k as i64));
                    trace.insert((vals.0, READ, 0, k as i64));
                    let c = bufs[crd.0 as usize][k] as usize;
                    trace.insert((x.0, READ, 0, c as i64));
                    acc += bufs[vals.0 as usize][k] * bufs[x.0 as usize][c];
                }
                trace.insert((y.0, WRITE, 0, r as i64));
                bufs[y.0 as usize][r] = acc;
            }
        }
        OpaqueOp::Gemv { a, x, y } => {
            let rows = bufs[y.0 as usize].len();
            let cols = bufs[x.0 as usize].len();
            for r in 0..rows {
                let mut acc = 0.0;
                for c in 0..cols {
                    trace.insert((a.0, READ, 0, (r * cols + c) as i64));
                    trace.insert((x.0, READ, 0, c as i64));
                    acc += bufs[a.0 as usize][r * cols + c] * bufs[x.0 as usize][c];
                }
                trace.insert((y.0, WRITE, 0, r as i64));
                bufs[y.0 as usize][r] = acc;
            }
        }
        OpaqueOp::Restrict { fine, coarse } => {
            let nc = bufs[coarse.0 as usize].len();
            let nf = bufs[fine.0 as usize].len();
            for i in 0..nc {
                let j = (2 * i).min(nf.saturating_sub(1));
                trace.insert((fine.0, READ, 0, j as i64));
                trace.insert((coarse.0, WRITE, 0, i as i64));
                bufs[coarse.0 as usize][i] = bufs[fine.0 as usize][j];
            }
        }
        OpaqueOp::Prolong { coarse, fine } => {
            let nc = bufs[coarse.0 as usize].len();
            let nf = bufs[fine.0 as usize].len();
            for i in 0..nf {
                let c = (i / 2).min(nc.saturating_sub(1));
                trace.insert((fine.0, WRITE, 0, i as i64));
                trace.insert((coarse.0, READ, 0, c as i64));
                if i % 2 == 0 {
                    bufs[fine.0 as usize][i] = bufs[coarse.0 as usize][c];
                } else {
                    let c2 = (c + 1).min(nc.saturating_sub(1));
                    trace.insert((coarse.0, READ, 0, c2 as i64));
                    bufs[fine.0 as usize][i] =
                        0.5 * (bufs[coarse.0 as usize][c] + bufs[coarse.0 as usize][c2]);
                }
            }
        }
    }
}

/// Executes the whole module, returning per-stage traces and the list of
/// `(buffer, value)` loop stores.
fn run_instrumented(
    module: &KernelModule,
    bufs: &mut [Vec<f64>],
    scalars: &[f64],
) -> (Vec<AccessSet>, Vec<(u32, f64)>) {
    let mut traces = Vec::with_capacity(module.num_stages());
    let mut stored = Vec::new();
    for stage in &module.stages {
        let mut trace = AccessSet::new();
        match stage {
            KernelStage::Loop(l) => {
                run_loop_instrumented(l, bufs, scalars, &mut trace, &mut stored)
            }
            KernelStage::Opaque(op) => run_opaque_instrumented(op, bufs, &mut trace),
        }
        traces.push(trace);
    }
    (traces, stored)
}

/// Whether the static pattern admits the dynamic access `buffer[idx]` at
/// induction value `i` (the pointwise soundness relation).
fn admits(p: &AccessPattern, i: i64, idx: i64) -> bool {
    match p {
        AccessPattern::Top => true,
        AccessPattern::Bottom => false,
        AccessPattern::Affine(forms) => forms.iter().any(|f| f.eval(i) == idx),
    }
}

fn pattern(fp: &BufferFootprint, kind: u8) -> &AccessPattern {
    match kind {
        READ => &fp.reads,
        WRITE => &fp.writes,
        _ => &fp.reduces,
    }
}

/// Exact bits, NaNs canonicalized (their payloads are not pinned down by the
/// float semantics; their presence is).
fn bits(buffers: &[Vec<f64>]) -> Vec<Vec<u64>> {
    const CANONICAL_NAN: u64 = 0x7ff8_0000_0000_0000;
    buffers
        .iter()
        .map(|b| {
            b.iter()
                .map(|v| if v.is_nan() { CANONICAL_NAN } else { v.to_bits() })
                .collect()
        })
        .collect()
}

/// Runs the full soundness check battery for one module over one input set.
fn assert_analysis_sound(module: &KernelModule, inputs: &[Vec<f64>], scalars: &[f64]) {
    let summary = infer_footprint(module);
    // Determinism: re-analysis reproduces the same fingerprint.
    assert_eq!(summary.fingerprint, infer_footprint(module).fingerprint);

    // Reference execution, then the instrumented one; the instrumented
    // interpreter must agree with the reference bitwise (it re-implements
    // the loop semantics and is itself under test here).
    let mut reference = inputs.to_vec();
    Interpreter::new()
        .execute(module, &mut reference, scalars)
        .expect("generated module must execute");
    let mut observed = inputs.to_vec();
    let (traces, stored) = run_instrumented(module, &mut observed, scalars);
    assert_eq!(
        bits(&reference),
        bits(&observed),
        "instrumented interpreter diverged from the reference interpreter"
    );

    // 1. Coverage: inferred ⊇ observed, per stage and joined.
    for (s, trace) in traces.iter().enumerate() {
        for &(b, kind, i, idx) in trace {
            let stage_fp = &summary.stages[s][b as usize];
            assert!(
                admits(pattern(stage_fp, kind), i, idx),
                "stage {s}: observed access (buf {b}, kind {kind}, i {i}, idx {idx}) \
                 not admitted by stage footprint {stage_fp:?}"
            );
            let joined = summary.buffer(b as usize);
            assert!(
                admits(pattern(&joined, kind), i, idx),
                "observed access (buf {b}, kind {kind}, i {i}, idx {idx}) \
                 not admitted by joined footprint {joined:?}"
            );
        }
    }

    // 2. ⊤ for opaque: never a wrong tight summary on a named buffer.
    for (s, stage) in module.stages.iter().enumerate() {
        if let KernelStage::Opaque(op) = stage {
            for b in op.read_buffers() {
                assert!(
                    summary.stages[s][b.0 as usize].reads.is_top(),
                    "opaque stage {s}: buffer {} reads not ⊤",
                    b.0
                );
            }
            for b in op.written_buffers() {
                assert!(
                    summary.stages[s][b.0 as usize].writes.is_top(),
                    "opaque stage {s}: buffer {} writes not ⊤",
                    b.0
                );
            }
        }
    }

    // 3. Lattice consistency: stage rows are covered by the module join.
    for row in &summary.stages {
        for (b, fp) in row.iter().enumerate() {
            let joined = summary.buffer(b);
            assert!(fp.reads.covered_by(&joined.reads));
            assert!(fp.writes.covered_by(&joined.writes));
            assert!(fp.reduces.covered_by(&joined.reduces));
        }
    }

    // 4. Tightening contract: an inferred read-only buffer is bitwise
    //    untouched by execution.
    for (b, fp) in summary.buffers.iter().enumerate() {
        if fp.is_read_only() {
            assert_eq!(
                bits(&inputs[b..=b]),
                bits(&reference[b..=b]),
                "buffer {b} inferred read-only but execution changed it"
            );
        }
    }

    // 5. Value ranges bound every stored value.
    for &(b, v) in &stored {
        assert!(
            summary.value_ranges[b as usize].contains(v),
            "stored value {v} not in inferred range {} of buffer {b}",
            summary.value_ranges[b as usize]
        );
    }
}

/// Deterministic input buffers with position-dependent contents, optionally
/// seeded with IEEE specials to stress the value-range lattice.
fn input_buffers(n: usize, special_stride: usize) -> Vec<Vec<f64>> {
    const SPECIALS: [f64; 6] = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        f64::MIN_POSITIVE / 2.0,
        1.0,
    ];
    (0..BUFS)
        .map(|b| {
            (0..n)
                .map(|i| {
                    if special_stride > 0 && i % special_stride == 0 {
                        SPECIALS[(i / special_stride + b as usize) % SPECIALS.len()]
                    } else {
                        (b as f64 + 1.0) * 0.375 + (i as f64) * 0.25 - 2.0
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random modules × random domains: the inferred footprint admits every
    /// dynamically observed access, opaque rows are ⊤, read-only verdicts
    /// are bitwise-safe, and value ranges bound every store.
    #[test]
    fn inferred_footprint_covers_observed_accesses(
        stages in prop::collection::vec(
            (0u64..10, prop::collection::vec((0u8..8, 0u64..64, 0u64..64, 0u64..64), 1..12)),
            1..5,
        ),
        n in 1usize..32,
        special_stride in 0usize..4,
    ) {
        let mut module = KernelModule::new(BUFS);
        module.set_role(BufferId(2), BufferRole::Output);
        module.set_role(BufferId(4), BufferRole::InOut);
        for (kind, raw_ops) in &stages {
            if kind % 3 == 0 {
                // Shape-safe opaques only: SpMV needs a valid CSR layout and
                // gets its own dedicated test below.
                let op = if (kind / 3).is_multiple_of(2) {
                    OpaqueOp::Restrict { fine: BufferId(0), coarse: BufferId(3) }
                } else {
                    OpaqueOp::Prolong { coarse: BufferId(3), fine: BufferId(0) }
                };
                module.push_opaque(op);
            } else {
                let domain = BufferId((kind % BUFS as u64) as u32);
                module.push_loop(build_loop(domain, raw_ops));
            }
        }
        assert_analysis_sound(&module, &input_buffers(n, special_stride), &SCALARS);
    }
}

/// SpMV reads through runtime CSR indices — the canonical data-dependent
/// access pattern the affine lattice cannot express. The ⊤ summary must
/// still cover the trace over a real sparse structure.
#[test]
fn spmv_trace_is_covered_by_top() {
    let mut module = KernelModule::new(BUFS);
    module.set_role(BufferId(4), BufferRole::Output);
    module.push_opaque(OpaqueOp::SpMvCsr {
        pos: BufferId(0),
        crd: BufferId(1),
        vals: BufferId(2),
        x: BufferId(3),
        y: BufferId(4),
        index_width: IndexWidth::U32,
    });
    let rows = 6usize;
    // Diagonal-ish matrix: row r has one entry at column r.
    let inputs = vec![
        (0..=rows).map(|r| r as f64).collect(),
        (0..rows).map(|r| r as f64).collect(),
        (0..rows).map(|r| (r + 1) as f64 * 0.5).collect(),
        (0..rows).map(|c| 1.0 - c as f64 * 0.25).collect(),
        vec![0.0; rows],
    ];
    assert_analysis_sound(&module, &inputs, &SCALARS);
}

/// GEMV indexes the matrix buffer as `a[r*cols + c]` — beyond single-form
/// affine precision; its opaque summary must cover the 2-D walk.
#[test]
fn gemv_trace_is_covered_by_top() {
    let mut module = KernelModule::new(3);
    module.push_opaque(OpaqueOp::Gemv {
        a: BufferId(0),
        x: BufferId(1),
        y: BufferId(2),
    });
    let inputs = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![1.0, -1.0], vec![0.0; 3]];
    assert_analysis_sound(&module, &inputs, &SCALARS);
}
