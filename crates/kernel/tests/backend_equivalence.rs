//! Three-way backend differential harness: the JIT-closure and SIMD backends
//! must produce bitwise-identical buffers to the interpreter backend, for any
//! kernel module, any input values and any domain length.
//!
//! The property test generates random modules — several stages, each either a
//! dense loop (random straight-line SSA bodies with loads, broadcast-scalar
//! loads, constants, scalar parameters, unary/binary arithmetic, stores and
//! reductions) or an opaque builtin (restrict, prolong, CSR SpMV over a
//! deterministically valid sparse structure) — compiles each module with all
//! three backends and compares every output buffer with exact bit equality
//! (`f64::to_bits`, so `-0.0` is distinguished from `0.0` and subnormals must
//! survive unflushed). The one sanctioned exception is NaN *payloads*: Rust
//! documents the payload/sign bits of a freshly produced NaN as
//! non-deterministic (LLVM may commute `fadd`, and `+inf + -inf` yields a
//! platform-default NaN), so two compilations of the *same* fold can differ
//! in NaN bits. The comparison therefore canonicalizes every NaN to one bit
//! pattern — NaN-ness must still match exactly (a NaN may never become a
//! number, nor vice versa). All backends evaluate ops through the same
//! resolved host functions, so any other divergence is a lowering bug, not
//! numerical noise.
//!
//! Two generator axes target the SIMD backend's failure surface specifically:
//!
//! * **Adversarial inputs** — buffers are optionally seeded with NaN, ±inf,
//!   signed zeros and subnormals, so masked lanes holding stale non-finite
//!   values would be caught the moment they leak into a store or reduction.
//! * **Masked-tail domain lengths** — the length strategy pins 1, `LANES`±1,
//!   `LANES`, prime sizes and `SIMD_CHUNK`±1 alongside a uniform range, so
//!   every chunk/tail shape of the lane-parallel schedule is exercised.

use proptest::prelude::*;

use kernel::simd::{LANES, SIMD_CHUNK};
use kernel::{
    BackendKind, BinaryOp, BufferId, BufferRole, IndexWidth, KernelModule, LoopKernel, LoopOp,
    OpaqueOp, ReduceOp, UnaryOp, ValueId,
};

/// Every shipped backend; index 0 is the interpreter reference the other
/// backends are diffed against.
const ALL_BACKENDS: [BackendKind; 3] =
    [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd];

/// Number of buffers every generated module uses. Buffer 0 is the loop
/// domain / primary input, the rest are read/written freely.
const BUFS: u32 = 5;
/// Scalar parameters provided at execution time.
const SCALARS: [f64; 3] = [0.5, -1.75, 3.0];

/// The adversarial value pool: every IEEE-754 special shape a lowering can
/// mishandle — NaN payload propagation, infinities of both signs, signed
/// zeros, and subnormals from both sides.
const SPECIALS: [f64; 8] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    0.0,
    -0.0,
    f64::MIN_POSITIVE / 2.0,
    -f64::MIN_POSITIVE / 4.0,
    1.0,
];

const UNARY: [UnaryOp; 7] = [
    UnaryOp::Neg,
    UnaryOp::Sqrt,
    UnaryOp::Exp,
    UnaryOp::Ln,
    UnaryOp::Abs,
    UnaryOp::Erf,
    UnaryOp::Recip,
];
const BINARY: [BinaryOp; 7] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Max,
    BinaryOp::Min,
    BinaryOp::Pow,
];
const REDUCE: [ReduceOp; 3] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min];

/// One raw op choice: (kind, a, b, c) interpreted per kind. Values are kept
/// small and reduced modulo whatever the kind needs, so any random tuple is
/// a valid op.
type RawOp = (u8, u64, u64, u64);

/// Builds a loop body from raw choices, tracking defined SSA values so every
/// generated module is well-formed (what `LoopBuilder` guarantees for real
/// generators).
fn build_loop(domain: BufferId, raw_ops: &[RawOp]) -> LoopKernel {
    let mut ops = Vec::new();
    let mut next_value = 0u32;
    for &(kind, a, b, c) in raw_ops {
        let defined = next_value; // values 0..defined are usable
        let pick = |x: u64| ValueId((x % defined.max(1) as u64) as u32);
        let buf = |x: u64| BufferId((x % BUFS as u64) as u32);
        match kind % 8 {
            0 => {
                ops.push(LoopOp::Load {
                    dst: ValueId(next_value),
                    buffer: buf(a),
                });
                next_value += 1;
            }
            1 => {
                ops.push(LoopOp::LoadScalar {
                    dst: ValueId(next_value),
                    buffer: buf(a),
                });
                next_value += 1;
            }
            2 => {
                ops.push(LoopOp::Const {
                    dst: ValueId(next_value),
                    value: (b as f64) - 8.0 + (c as f64) * 0.125,
                });
                next_value += 1;
            }
            3 => {
                ops.push(LoopOp::Param {
                    dst: ValueId(next_value),
                    index: (a % SCALARS.len() as u64) as usize,
                });
                next_value += 1;
            }
            4 if defined > 0 => {
                ops.push(LoopOp::Unary {
                    dst: ValueId(next_value),
                    op: UNARY[(a % UNARY.len() as u64) as usize],
                    a: pick(b),
                });
                next_value += 1;
            }
            5 if defined > 0 => {
                ops.push(LoopOp::Binary {
                    dst: ValueId(next_value),
                    op: BINARY[(a % BINARY.len() as u64) as usize],
                    a: pick(b),
                    b: pick(c),
                });
                next_value += 1;
            }
            6 if defined > 0 => {
                ops.push(LoopOp::Store {
                    buffer: buf(a),
                    src: pick(b),
                });
            }
            7 if defined > 0 => {
                ops.push(LoopOp::Reduce {
                    buffer: buf(a),
                    op: REDUCE[(b % REDUCE.len() as u64) as usize],
                    src: pick(c),
                });
            }
            _ => {
                // Op needs an operand before any value is defined: load one.
                ops.push(LoopOp::Load {
                    dst: ValueId(next_value),
                    buffer: buf(a),
                });
                next_value += 1;
            }
        }
    }
    LoopKernel {
        name: "random".into(),
        domain,
        ops,
        parallel: false,
    }
}

/// Builds a shape-safe opaque stage from a raw choice: restrict/prolong read
/// and write strictly within equal-length buffers, so they can mix freely
/// with random loops. GEMV and SpMV constrain buffer shapes (matrix size,
/// valid CSR structure), so SpMV runs only against the dedicated CSR input
/// set and GEMV is covered by the unit tests in `kernel::closure`.
fn build_opaque(kind: u64) -> OpaqueOp {
    if kind.is_multiple_of(2) {
        OpaqueOp::Restrict {
            fine: BufferId(0),
            coarse: BufferId(3),
        }
    } else {
        OpaqueOp::Prolong {
            coarse: BufferId(3),
            fine: BufferId(0),
        }
    }
}

/// The CSR SpMV stage over the layout `input_buffers(_, true, _)` provides.
fn spmv_op() -> OpaqueOp {
    OpaqueOp::SpMvCsr {
        pos: BufferId(0),
        crd: BufferId(1),
        vals: BufferId(2),
        x: BufferId(3),
        y: BufferId(4),
        index_width: IndexWidth::U32,
    }
}

/// Deterministic input buffers. Loop-only modules get `n`-element buffers
/// with position-dependent contents, optionally interleaved with the
/// adversarial [`SPECIALS`] pool (`special_stride > 0` plants one special
/// every `special_stride` positions, cycling through the pool).
/// SpMV-compatible modules get a valid CSR structure instead (pos monotone
/// in-range, crd in-range column ids — specials would corrupt the indices,
/// so the stride is ignored there).
fn input_buffers(n: usize, spmv: bool, special_stride: usize) -> Vec<Vec<f64>> {
    if spmv {
        let rows = n.max(2);
        // Diagonal-ish matrix: row r has one entry at column r with value r+1.
        let pos: Vec<f64> = (0..=rows).map(|r| r as f64).collect();
        let crd: Vec<f64> = (0..rows).map(|r| r as f64).collect();
        let vals: Vec<f64> = (0..rows).map(|r| (r + 1) as f64 * 0.5).collect();
        let x: Vec<f64> = (0..rows).map(|c| 1.0 - c as f64 * 0.25).collect();
        let y = vec![0.0; rows];
        vec![pos, crd, vals, x, y]
    } else {
        (0..BUFS)
            .map(|b| {
                (0..n)
                    .map(|i| {
                        if special_stride > 0 && i % special_stride == 0 {
                            SPECIALS[(i / special_stride + b as usize) % SPECIALS.len()]
                        } else {
                            (b as f64 + 1.0) * 0.375 + (i as f64) * 0.25 - 2.0
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Exact bits for every non-NaN value; NaNs canonicalized to one pattern
/// (their payload bits are non-deterministic per the Rust float semantics —
/// see the module docs — but their presence is not).
fn bits(buffers: &[Vec<f64>]) -> Vec<Vec<u64>> {
    const CANONICAL_NAN: u64 = 0x7ff8_0000_0000_0000;
    buffers
        .iter()
        .map(|b| {
            b.iter()
                .map(|v| if v.is_nan() { CANONICAL_NAN } else { v.to_bits() })
                .collect()
        })
        .collect()
}

/// Runs `module` over `inputs` under every backend and checks each JIT
/// backend against the interpreter with exact bit equality (including
/// identical error behavior). Panics with the diverging backend's id.
fn assert_backend_invariant(module: &KernelModule, inputs: &[Vec<f64>]) {
    let mut reference: Option<(bool, Vec<Vec<u64>>)> = None;
    for kind in ALL_BACKENDS {
        let compiled = kind.backend().compile(module).unwrap();
        let mut bufs = inputs.to_vec();
        let result = compiled.execute(&mut bufs, &SCALARS);
        let outcome = (result.is_ok(), bits(&bufs));
        match &reference {
            None => reference = Some(outcome),
            Some(expected) => {
                assert_eq!(
                    expected.0, outcome.0,
                    "{}: error behavior diverged from the interpreter",
                    kind.id()
                );
                if expected.0 {
                    assert_eq!(
                        expected.1, outcome.1,
                        "{}: buffers diverged bitwise from the interpreter",
                        kind.id()
                    );
                }
            }
        }
    }
}

/// Domain lengths biased toward the SIMD backend's masked-tail shapes:
/// empty-adjacent, lane boundary ±1, primes that are coprime to the lane
/// width, chunk boundary ±1 — plus a uniform range for everything else.
fn domain_lengths() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1),
        Just(LANES - 1),
        Just(LANES),
        Just(LANES + 1),
        Just(7),
        Just(13),
        Just(31),
        Just(SIMD_CHUNK - 1),
        Just(SIMD_CHUNK),
        Just(SIMD_CHUNK + 1),
        1usize..24,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random modules (loops + opaque stages + reductions) produce
    /// bitwise-identical buffers under the interpreter, closure and SIMD
    /// backends, across masked-tail domain lengths and adversarially seeded
    /// inputs (NaN, ±inf, signed zeros, subnormals).
    #[test]
    fn random_modules_are_backend_invariant(
        stages in prop::collection::vec(
            (0u64..10, prop::collection::vec((0u8..8, 0u64..64, 0u64..64, 0u64..64), 1..12)),
            1..5,
        ),
        n in domain_lengths(),
        special_stride in 0usize..4,
    ) {
        // An SpMV stage constrains the buffer layout to a valid CSR
        // structure that random loops would corrupt (float garbage becomes
        // an index); windows containing one run *only* SpMV stages over the
        // CSR input set, everything else mixes loops and safe opaques.
        let spmv = stages.iter().any(|(k, _)| k % 3 == 0 && (k / 3) % 3 == 2);
        let mut module = KernelModule::new(BUFS);
        module.set_role(BufferId(2), BufferRole::Output);
        module.set_role(BufferId(4), BufferRole::InOut);
        for (kind, raw_ops) in &stages {
            if spmv {
                if kind % 3 == 0 && (kind / 3) % 3 == 2 {
                    module.push_opaque(spmv_op());
                }
            } else if kind % 3 == 0 {
                if (kind / 3) % 3 != 2 {
                    module.push_opaque(build_opaque(kind / 3));
                }
            } else {
                let domain = BufferId((kind % BUFS as u64) as u32);
                module.push_loop(build_loop(domain, raw_ops));
            }
        }

        let inputs = input_buffers(n, spmv, special_stride);
        assert_backend_invariant(&module, &inputs);
    }

    /// A pure adversarial sweep: a fixed op-dense module over buffers that
    /// are *mostly* specials, across every masked-tail length. Catches stale
    /// dead-lane leaks that the sparser random seeding above might miss.
    #[test]
    fn adversarial_inputs_are_backend_invariant_at_every_tail_length(
        n in domain_lengths(),
        rot in 0usize..8,
    ) {
        let mut module = KernelModule::new(BUFS);
        module.set_role(BufferId(2), BufferRole::Output);
        module.set_role(BufferId(4), BufferRole::Reduction);
        let raw: Vec<RawOp> = vec![
            (0, 0, 0, 0), // load b0
            (0, 1, 0, 0), // load b1
            (3, 1, 0, 0), // param 1
            (5, 0, 0, 2), // add v0 + v2
            (5, 3, 3, 1), // div v3 / v1 (inf/inf -> NaN, x/0 -> inf)
            (4, 1, 4, 0), // sqrt (negative -> NaN)
            (5, 4, 5, 0), // max (NaN-propagation order matters)
            (6, 2, 6, 0), // store b2
            (7, 4, 0, 6), // reduce sum into b4
        ];
        module.push_loop(build_loop(BufferId(0), &raw));

        let inputs: Vec<Vec<f64>> = (0..BUFS)
            .map(|b| {
                (0..n)
                    .map(|i| SPECIALS[(i + rot + b as usize) % SPECIALS.len()])
                    .collect()
            })
            .collect();
        assert_backend_invariant(&module, &inputs);
    }
}

/// A horizontally merged launch compiles to one module whose loop nests came
/// from *independent* tasks over disjoint buffers. Concatenating the nests
/// must be bitwise equivalent to compiling and running each nest as its own
/// module in sequence — under every backend, with the backends also agreeing
/// with each other. This is the kernel-layer half of the horizontal-fusion
/// soundness argument (the fusion-layer half proves disjointness).
#[test]
fn concatenated_independent_nests_match_sequential_modules() {
    // Nest A: b2[i] = b0[i] * scalar0 - b0[i]. Nest B: b3[i] = erf(b1[i]) + scalar2.
    let nest_a = || LoopKernel {
        name: "nest_a".into(),
        domain: BufferId(0),
        ops: vec![
            LoopOp::Load { dst: ValueId(0), buffer: BufferId(0) },
            LoopOp::Param { dst: ValueId(1), index: 0 },
            LoopOp::Binary { dst: ValueId(2), op: BinaryOp::Mul, a: ValueId(0), b: ValueId(1) },
            LoopOp::Binary { dst: ValueId(3), op: BinaryOp::Sub, a: ValueId(2), b: ValueId(0) },
            LoopOp::Store { buffer: BufferId(2), src: ValueId(3) },
        ],
        parallel: false,
    };
    let nest_b = || LoopKernel {
        name: "nest_b".into(),
        domain: BufferId(1),
        ops: vec![
            LoopOp::Load { dst: ValueId(0), buffer: BufferId(1) },
            LoopOp::Unary { dst: ValueId(1), op: UnaryOp::Erf, a: ValueId(0) },
            LoopOp::Param { dst: ValueId(2), index: 2 },
            LoopOp::Binary { dst: ValueId(3), op: BinaryOp::Add, a: ValueId(1), b: ValueId(2) },
            LoopOp::Store { buffer: BufferId(3), src: ValueId(3) },
        ],
        parallel: false,
    };

    let mut concatenated = KernelModule::new(4);
    concatenated.set_role(BufferId(2), BufferRole::Output);
    concatenated.set_role(BufferId(3), BufferRole::Output);
    concatenated.push_loop(nest_a());
    concatenated.push_loop(nest_b());

    let mut only_a = KernelModule::new(4);
    only_a.set_role(BufferId(2), BufferRole::Output);
    only_a.push_loop(nest_a());
    let mut only_b = KernelModule::new(4);
    only_b.set_role(BufferId(3), BufferRole::Output);
    only_b.push_loop(nest_b());

    let inputs = input_buffers(12, false, 0)[..4].to_vec();
    let mut expected: Option<Vec<Vec<u64>>> = None;
    for backend in ALL_BACKENDS {
        let mut wide = inputs.clone();
        backend
            .backend()
            .compile(&concatenated)
            .unwrap()
            .execute(&mut wide, &SCALARS)
            .unwrap();

        let mut seq = inputs.clone();
        for m in [&only_a, &only_b] {
            backend
                .backend()
                .compile(m)
                .unwrap()
                .execute(&mut seq, &SCALARS)
                .unwrap();
        }
        assert_eq!(
            bits(&wide),
            bits(&seq),
            "{backend:?}: concatenated nests diverged from sequential modules"
        );
        // Every backend must also agree with the others bitwise.
        if let Some(prior) = &expected {
            assert_eq!(prior, &bits(&wide), "backends diverged on the wide module");
        } else {
            expected = Some(bits(&wide));
        }
    }
}

/// A hand-picked module mixing every op class, checked across all three
/// backends with exact bit equality (fast sanity check that runs even when
/// the property test budget is cut down).
#[test]
fn mixed_module_is_backend_invariant() {
    let mut module = KernelModule::new(BUFS);
    module.set_role(BufferId(2), BufferRole::Output);
    module.set_role(BufferId(4), BufferRole::Reduction);
    let raw: Vec<RawOp> = vec![
        (0, 0, 0, 0), // load b0
        (3, 1, 0, 0), // param 1
        (5, 3, 0, 1), // div v0 / v1 (negative divisor: sign handling)
        (4, 1, 2, 0), // sqrt of possibly negative -> NaN must match bitwise
        (6, 2, 3, 0), // store b2
        (7, 4, 0, 3), // reduce sum into b4
        (1, 3, 0, 0), // load_scalar b3
        (5, 6, 4, 5), // pow
        (6, 2, 6, 0), // store b2 again
    ];
    let kernel = build_loop(BufferId(0), &raw);
    module.push_loop(kernel);
    module.push_opaque(OpaqueOp::Restrict {
        fine: BufferId(0),
        coarse: BufferId(3),
    });

    assert_backend_invariant(&module, &input_buffers(8, false, 0));
}
