//! Backend equivalence: the JIT-closure backend must produce bitwise-identical
//! buffers to the interpreter backend, for any kernel module.
//!
//! The property test generates random modules — several stages, each either a
//! dense loop (random straight-line SSA bodies with loads, broadcast-scalar
//! loads, constants, scalar parameters, unary/binary arithmetic, stores and
//! reductions) or an opaque builtin (GEMV, restrict, prolong, CSR SpMV over a
//! deterministically valid sparse structure) — compiles each module with both
//! backends and compares every output buffer with exact bit equality
//! (`f64::to_bits`, so NaNs produced by e.g. `sqrt` of a negative value must
//! match too). Both backends evaluate ops through the same resolved host
//! functions, so any divergence is a lowering bug, not numerical noise.

use proptest::prelude::*;

use kernel::{
    BackendKind, BinaryOp, BufferId, BufferRole, IndexWidth, KernelModule, LoopKernel, LoopOp,
    OpaqueOp, ReduceOp, UnaryOp, ValueId,
};

/// Number of buffers every generated module uses. Buffer 0 is the loop
/// domain / primary input, the rest are read/written freely.
const BUFS: u32 = 5;
/// Scalar parameters provided at execution time.
const SCALARS: [f64; 3] = [0.5, -1.75, 3.0];

const UNARY: [UnaryOp; 7] = [
    UnaryOp::Neg,
    UnaryOp::Sqrt,
    UnaryOp::Exp,
    UnaryOp::Ln,
    UnaryOp::Abs,
    UnaryOp::Erf,
    UnaryOp::Recip,
];
const BINARY: [BinaryOp; 7] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Max,
    BinaryOp::Min,
    BinaryOp::Pow,
];
const REDUCE: [ReduceOp; 3] = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min];

/// One raw op choice: (kind, a, b, c) interpreted per kind. Values are kept
/// small and reduced modulo whatever the kind needs, so any random tuple is
/// a valid op.
type RawOp = (u8, u64, u64, u64);

/// Builds a loop body from raw choices, tracking defined SSA values so every
/// generated module is well-formed (what `LoopBuilder` guarantees for real
/// generators).
fn build_loop(domain: BufferId, raw_ops: &[RawOp]) -> LoopKernel {
    let mut ops = Vec::new();
    let mut next_value = 0u32;
    for &(kind, a, b, c) in raw_ops {
        let defined = next_value; // values 0..defined are usable
        let pick = |x: u64| ValueId((x % defined.max(1) as u64) as u32);
        let buf = |x: u64| BufferId((x % BUFS as u64) as u32);
        match kind % 8 {
            0 => {
                ops.push(LoopOp::Load {
                    dst: ValueId(next_value),
                    buffer: buf(a),
                });
                next_value += 1;
            }
            1 => {
                ops.push(LoopOp::LoadScalar {
                    dst: ValueId(next_value),
                    buffer: buf(a),
                });
                next_value += 1;
            }
            2 => {
                ops.push(LoopOp::Const {
                    dst: ValueId(next_value),
                    value: (b as f64) - 8.0 + (c as f64) * 0.125,
                });
                next_value += 1;
            }
            3 => {
                ops.push(LoopOp::Param {
                    dst: ValueId(next_value),
                    index: (a % SCALARS.len() as u64) as usize,
                });
                next_value += 1;
            }
            4 if defined > 0 => {
                ops.push(LoopOp::Unary {
                    dst: ValueId(next_value),
                    op: UNARY[(a % UNARY.len() as u64) as usize],
                    a: pick(b),
                });
                next_value += 1;
            }
            5 if defined > 0 => {
                ops.push(LoopOp::Binary {
                    dst: ValueId(next_value),
                    op: BINARY[(a % BINARY.len() as u64) as usize],
                    a: pick(b),
                    b: pick(c),
                });
                next_value += 1;
            }
            6 if defined > 0 => {
                ops.push(LoopOp::Store {
                    buffer: buf(a),
                    src: pick(b),
                });
            }
            7 if defined > 0 => {
                ops.push(LoopOp::Reduce {
                    buffer: buf(a),
                    op: REDUCE[(b % REDUCE.len() as u64) as usize],
                    src: pick(c),
                });
            }
            _ => {
                // Op needs an operand before any value is defined: load one.
                ops.push(LoopOp::Load {
                    dst: ValueId(next_value),
                    buffer: buf(a),
                });
                next_value += 1;
            }
        }
    }
    LoopKernel {
        name: "random".into(),
        domain,
        ops,
        parallel: false,
    }
}

/// Builds a shape-safe opaque stage from a raw choice: restrict/prolong read
/// and write strictly within equal-length buffers, so they can mix freely
/// with random loops. GEMV and SpMV constrain buffer shapes (matrix size,
/// valid CSR structure), so SpMV runs only against the dedicated CSR input
/// set and GEMV is covered by the unit tests in `kernel::closure`.
fn build_opaque(kind: u64) -> OpaqueOp {
    if kind % 2 == 0 {
        OpaqueOp::Restrict {
            fine: BufferId(0),
            coarse: BufferId(3),
        }
    } else {
        OpaqueOp::Prolong {
            coarse: BufferId(3),
            fine: BufferId(0),
        }
    }
}

/// The CSR SpMV stage over the layout `input_buffers(_, true)` provides.
fn spmv_op() -> OpaqueOp {
    OpaqueOp::SpMvCsr {
        pos: BufferId(0),
        crd: BufferId(1),
        vals: BufferId(2),
        x: BufferId(3),
        y: BufferId(4),
        index_width: IndexWidth::U32,
    }
}

/// Deterministic input buffers. Loop-only modules get `n`-element buffers
/// with position-dependent contents; SpMV-compatible modules get a valid CSR
/// structure instead (pos monotone in-range, crd in-range column ids).
fn input_buffers(n: usize, spmv: bool) -> Vec<Vec<f64>> {
    if spmv {
        let rows = n.max(2);
        // Diagonal-ish matrix: row r has one entry at column r with value r+1.
        let pos: Vec<f64> = (0..=rows).map(|r| r as f64).collect();
        let crd: Vec<f64> = (0..rows).map(|r| r as f64).collect();
        let vals: Vec<f64> = (0..rows).map(|r| (r + 1) as f64 * 0.5).collect();
        let x: Vec<f64> = (0..rows).map(|c| 1.0 - c as f64 * 0.25).collect();
        let y = vec![0.0; rows];
        vec![pos, crd, vals, x, y]
    } else {
        (0..BUFS)
            .map(|b| {
                (0..n)
                    .map(|i| (b as f64 + 1.0) * 0.375 + (i as f64) * 0.25 - 2.0)
                    .collect()
            })
            .collect()
    }
}

fn bits(buffers: &[Vec<f64>]) -> Vec<Vec<u64>> {
    buffers
        .iter()
        .map(|b| b.iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random modules (loops + opaque stages + reductions) produce
    /// bitwise-identical buffers under the interpreter and closure backends.
    #[test]
    fn random_modules_are_backend_invariant(
        stages in prop::collection::vec(
            (0u64..10, prop::collection::vec((0u8..8, 0u64..64, 0u64..64, 0u64..64), 1..12)),
            1..5,
        ),
        n in 1usize..24,
    ) {
        // An SpMV stage constrains the buffer layout to a valid CSR
        // structure that random loops would corrupt (float garbage becomes
        // an index); windows containing one run *only* SpMV stages over the
        // CSR input set, everything else mixes loops and safe opaques.
        let spmv = stages.iter().any(|(k, _)| k % 3 == 0 && (k / 3) % 3 == 2);
        let mut module = KernelModule::new(BUFS);
        module.set_role(BufferId(2), BufferRole::Output);
        module.set_role(BufferId(4), BufferRole::InOut);
        for (kind, raw_ops) in &stages {
            if spmv {
                if kind % 3 == 0 && (kind / 3) % 3 == 2 {
                    module.push_opaque(spmv_op());
                }
            } else if kind % 3 == 0 {
                if (kind / 3) % 3 != 2 {
                    module.push_opaque(build_opaque(kind / 3));
                }
            } else {
                let domain = BufferId((kind % BUFS as u64) as u32);
                module.push_loop(build_loop(domain, raw_ops));
            }
        }

        let inputs = input_buffers(n, spmv);
        let interp = BackendKind::Interp.backend().compile(&module).unwrap();
        let closure = BackendKind::Closure.backend().compile(&module).unwrap();

        let mut a = inputs.clone();
        let ra = interp.execute(&mut a, &SCALARS);
        let mut b = inputs;
        let rb = closure.execute(&mut b, &SCALARS);

        prop_assert_eq!(ra.is_ok(), rb.is_ok(), "error behavior diverged");
        if ra.is_ok() {
            prop_assert_eq!(bits(&a), bits(&b), "buffers diverged bitwise");
        }
    }
}

/// A horizontally merged launch compiles to one module whose loop nests came
/// from *independent* tasks over disjoint buffers. Concatenating the nests
/// must be bitwise equivalent to compiling and running each nest as its own
/// module in sequence — under both backends, with the backends also agreeing
/// with each other. This is the kernel-layer half of the horizontal-fusion
/// soundness argument (the fusion-layer half proves disjointness).
#[test]
fn concatenated_independent_nests_match_sequential_modules() {
    // Nest A: b2[i] = b0[i] * scalar0 - b0[i]. Nest B: b3[i] = erf(b1[i]) + scalar2.
    let nest_a = || LoopKernel {
        name: "nest_a".into(),
        domain: BufferId(0),
        ops: vec![
            LoopOp::Load { dst: ValueId(0), buffer: BufferId(0) },
            LoopOp::Param { dst: ValueId(1), index: 0 },
            LoopOp::Binary { dst: ValueId(2), op: BinaryOp::Mul, a: ValueId(0), b: ValueId(1) },
            LoopOp::Binary { dst: ValueId(3), op: BinaryOp::Sub, a: ValueId(2), b: ValueId(0) },
            LoopOp::Store { buffer: BufferId(2), src: ValueId(3) },
        ],
        parallel: false,
    };
    let nest_b = || LoopKernel {
        name: "nest_b".into(),
        domain: BufferId(1),
        ops: vec![
            LoopOp::Load { dst: ValueId(0), buffer: BufferId(1) },
            LoopOp::Unary { dst: ValueId(1), op: UnaryOp::Erf, a: ValueId(0) },
            LoopOp::Param { dst: ValueId(2), index: 2 },
            LoopOp::Binary { dst: ValueId(3), op: BinaryOp::Add, a: ValueId(1), b: ValueId(2) },
            LoopOp::Store { buffer: BufferId(3), src: ValueId(3) },
        ],
        parallel: false,
    };

    let mut concatenated = KernelModule::new(4);
    concatenated.set_role(BufferId(2), BufferRole::Output);
    concatenated.set_role(BufferId(3), BufferRole::Output);
    concatenated.push_loop(nest_a());
    concatenated.push_loop(nest_b());

    let mut only_a = KernelModule::new(4);
    only_a.set_role(BufferId(2), BufferRole::Output);
    only_a.push_loop(nest_a());
    let mut only_b = KernelModule::new(4);
    only_b.set_role(BufferId(3), BufferRole::Output);
    only_b.push_loop(nest_b());

    let inputs = input_buffers(12, false)[..4].to_vec();
    let mut expected: Option<Vec<Vec<u64>>> = None;
    for backend in [BackendKind::Interp, BackendKind::Closure] {
        let mut wide = inputs.clone();
        backend
            .backend()
            .compile(&concatenated)
            .unwrap()
            .execute(&mut wide, &SCALARS)
            .unwrap();

        let mut seq = inputs.clone();
        for m in [&only_a, &only_b] {
            backend
                .backend()
                .compile(m)
                .unwrap()
                .execute(&mut seq, &SCALARS)
                .unwrap();
        }
        assert_eq!(
            bits(&wide),
            bits(&seq),
            "{backend:?}: concatenated nests diverged from sequential modules"
        );
        // Both backends must also agree with each other bitwise.
        if let Some(prior) = &expected {
            assert_eq!(prior, &bits(&wide), "backends diverged on the wide module");
        } else {
            expected = Some(bits(&wide));
        }
    }
}

/// A hand-picked module mixing every op class, checked across both backends
/// with exact bit equality (fast sanity check that runs even when the
/// property test budget is cut down).
#[test]
fn mixed_module_is_backend_invariant() {
    let mut module = KernelModule::new(BUFS);
    module.set_role(BufferId(2), BufferRole::Output);
    module.set_role(BufferId(4), BufferRole::Reduction);
    let raw: Vec<RawOp> = vec![
        (0, 0, 0, 0), // load b0
        (3, 1, 0, 0), // param 1
        (5, 3, 0, 1), // div v0 / v1 (negative divisor: sign handling)
        (4, 1, 2, 0), // sqrt of possibly negative -> NaN must match bitwise
        (6, 2, 3, 0), // store b2
        (7, 4, 0, 3), // reduce sum into b4
        (1, 3, 0, 0), // load_scalar b3
        (5, 6, 4, 5), // pow
        (6, 2, 6, 0), // store b2 again
    ];
    let kernel = build_loop(BufferId(0), &raw);
    module.push_loop(kernel);
    module.push_opaque(OpaqueOp::Restrict {
        fine: BufferId(0),
        coarse: BufferId(3),
    });

    let inputs = input_buffers(8, false);
    let mut a = inputs.clone();
    BackendKind::Interp
        .backend()
        .compile(&module)
        .unwrap()
        .execute(&mut a, &SCALARS)
        .unwrap();
    let mut b = inputs;
    BackendKind::Closure
        .backend()
        .compile(&module)
        .unwrap()
        .execute(&mut b, &SCALARS)
        .unwrap();
    assert_eq!(bits(&a), bits(&b));
}
