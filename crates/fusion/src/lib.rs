//! Distributed task fusion: the core analysis of the paper (Sections 4–5).
//!
//! Applications submit [`ir::IndexTask`]s into a window; this crate finds the
//! longest *fusible prefix* of the window — a sequence of index tasks that can
//! execute back-to-back without any cross-processor communication — and builds
//! a single fused task from it.
//!
//! The analysis never materializes dependence maps. It applies the four
//! scale-free constraints of Figure 5 ([`constraints`]): launch-domain
//! equivalence, true dependence, anti dependence and reduction, all of which
//! reduce to constant-time partition-equality checks per (store, partition)
//! pair. Property tests validate the constraints against the ground-truth
//! dependence definitions in [`ir::deps`].
//!
//! On top of the prefix search this crate implements the two optimizations of
//! Section 5: [`temporaries`] (Definition 4 — which stores become task-local
//! after fusion) and [`memo`] (replaying analysis results on *isomorphic* task
//! windows via a De-Bruijn-style canonical form, Figure 7). [`window`]
//! provides the adaptive window sizing the evaluation describes.
//!
//! # Example
//!
//! ```
//! use ir::{Domain, IndexTask, Partition, Privilege, StoreArg, StoreId, TaskId};
//! use fusion::find_fusible_prefix;
//!
//! let block = Partition::block(vec![256]);
//! let t = |id, store_in: u64, store_out: u64| IndexTask::new(
//!     TaskId(id), 0, "copy", Domain::linear(4),
//!     vec![
//!         StoreArg::new(StoreId(store_in), block.clone(), Privilege::Read),
//!         StoreArg::new(StoreId(store_out), block.clone(), Privilege::Write),
//!     ],
//!     vec![],
//! );
//! // Three chained copies through the same partition fuse entirely.
//! let tasks = vec![t(0, 0, 1), t(1, 1, 2), t(2, 2, 3)];
//! assert_eq!(find_fusible_prefix(&tasks), 3);
//! ```

pub mod classify;
pub mod constraints;
pub mod explain;
pub mod fused;
pub mod horizontal;
pub mod memo;
pub mod prefix;
pub mod temporaries;
pub mod verify;
pub mod window;

pub use classify::{classify_edge, classify_partitions, DepClass};
pub use constraints::{ConstraintState, FusionViolation};
pub use explain::{explain_window, explain_window_with, BoundaryReport, WindowReport};
pub use fused::FusedTask;
pub use horizontal::{plan_horizontal, HorizontalPlan, HorizontalViolation, SegmentFootprint};
pub use memo::{CanonicalWindow, MemoCache};
pub use prefix::{
    find_fusible_prefix, find_fusible_prefix_explained, fusible_segments,
    fusible_segments_explained,
};
pub use temporaries::temporary_stores;
pub use verify::{
    verify_fused_prefix, verify_horizontal_plan, verify_reorder, verify_skeleton, DepKind,
    VerifyError,
};
pub use window::AdaptiveWindow;
