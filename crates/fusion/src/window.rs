//! Adaptive task-window sizing.
//!
//! The paper reports (Figure 9) that window sizes are "selected automatically
//! by Diffuse through a process that increases the window size when all tasks
//! in the current window size were fused". [`AdaptiveWindow`] implements that
//! policy: the window grows whenever an entire window fuses into one task and
//! stays put otherwise, up to a configurable maximum.

/// Adaptive window-size controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveWindow {
    current: usize,
    initial: usize,
    max: usize,
}

impl AdaptiveWindow {
    /// Creates a controller starting at `initial` tasks and growing up to
    /// `max` tasks.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or greater than `max`.
    pub fn new(initial: usize, max: usize) -> Self {
        assert!(initial > 0, "window size must be positive");
        assert!(initial <= max, "initial window may not exceed the maximum");
        AdaptiveWindow {
            current: initial,
            initial,
            max,
        }
    }

    /// The current window size: how many tasks to buffer before running the
    /// fusion analysis.
    pub fn size(&self) -> usize {
        self.current
    }

    /// The configured maximum window size.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Records the outcome of analyzing a full window: `window_len` tasks were
    /// buffered and the fusible prefix had `fused_len` tasks. Grows the window
    /// when everything fused.
    pub fn record(&mut self, window_len: usize, fused_len: usize) {
        if window_len == 0 {
            return;
        }
        if fused_len >= window_len && window_len >= self.current {
            self.current = (self.current * 2).min(self.max);
        }
    }

    /// Resets the window size to its initial value (used between applications
    /// or phases).
    pub fn reset(&mut self) {
        self.current = self.initial;
    }
}

impl Default for AdaptiveWindow {
    fn default() -> Self {
        AdaptiveWindow::new(5, 70)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_when_everything_fuses() {
        let mut w = AdaptiveWindow::new(5, 70);
        assert_eq!(w.size(), 5);
        w.record(5, 5);
        assert_eq!(w.size(), 10);
        w.record(10, 10);
        assert_eq!(w.size(), 20);
    }

    #[test]
    fn stops_at_the_maximum() {
        let mut w = AdaptiveWindow::new(32, 40);
        w.record(32, 32);
        assert_eq!(w.size(), 40);
        w.record(40, 40);
        assert_eq!(w.size(), 40);
        assert_eq!(w.max(), 40);
    }

    #[test]
    fn does_not_grow_on_partial_fusion() {
        let mut w = AdaptiveWindow::new(5, 70);
        w.record(5, 3);
        assert_eq!(w.size(), 5);
        w.record(0, 0);
        assert_eq!(w.size(), 5);
    }

    #[test]
    fn undersized_windows_do_not_grow() {
        // A flush of fewer tasks than the window size (e.g. at the end of a
        // program) should not trigger growth even if everything fused.
        let mut w = AdaptiveWindow::new(8, 64);
        w.record(2, 2);
        assert_eq!(w.size(), 8);
    }

    #[test]
    fn reset_restores_initial() {
        let mut w = AdaptiveWindow::new(5, 70);
        w.record(5, 5);
        w.reset();
        assert_eq!(w.size(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_initial_panics() {
        let _ = AdaptiveWindow::new(0, 10);
    }

    #[test]
    #[should_panic]
    fn initial_greater_than_max_panics() {
        let _ = AdaptiveWindow::new(20, 10);
    }
}
