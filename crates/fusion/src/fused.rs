//! Construction of fused tasks from fusible prefixes (Section 4.2.2).

use ir::{Domain, IndexTask, PartitionId, Privilege, StoreId};

/// A fused task: the merged store arguments of a fusible prefix together with
/// the constituent tasks (whose kernel bodies are composed in program order by
/// the JIT layer).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedTask {
    /// Name of the fused task (concatenation of constituent names).
    pub name: String,
    /// Launch domain shared by every constituent task.
    pub launch_domain: Domain,
    /// Merged store arguments: one entry per distinct (store, partition) pair,
    /// with privileges promoted across constituents.
    pub args: Vec<(StoreId, PartitionId, Privilege)>,
    /// The constituent tasks in program order.
    pub tasks: Vec<IndexTask>,
    /// For each constituent task, the index into `args` of each of its store
    /// arguments (in that task's argument order).
    pub arg_map: Vec<Vec<usize>>,
}

impl FusedTask {
    /// Builds a fused task from a fusible prefix.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or the tasks do not all share a launch
    /// domain (callers must only pass prefixes validated by the fusion
    /// constraints).
    pub fn build(tasks: Vec<IndexTask>) -> FusedTask {
        assert!(!tasks.is_empty(), "cannot fuse an empty prefix");
        let launch_domain = tasks[0].launch_domain.clone();
        assert!(
            tasks.iter().all(|t| t.launch_domain == launch_domain),
            "fused tasks must share a launch domain"
        );
        let mut args: Vec<(StoreId, PartitionId, Privilege)> = Vec::new();
        let mut arg_map: Vec<Vec<usize>> = Vec::with_capacity(tasks.len());
        for task in &tasks {
            let mut map = Vec::with_capacity(task.args.len());
            for arg in &task.args {
                let existing = args
                    .iter()
                    .position(|(s, p, _)| *s == arg.store && *p == arg.partition);
                let idx = match existing {
                    Some(idx) => {
                        let promoted = args[idx].2.promote(arg.privilege);
                        args[idx].2 = promoted;
                        idx
                    }
                    None => {
                        args.push((arg.store, arg.partition, arg.privilege));
                        args.len() - 1
                    }
                };
                map.push(idx);
            }
            arg_map.push(map);
        }
        let name = tasks
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        FusedTask {
            name: format!("fused[{name}]"),
            launch_domain,
            args,
            tasks,
            arg_map,
        }
    }

    /// Number of constituent tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the fused task has no constituents (never true for a task
    /// built by [`FusedTask::build`], which requires a non-empty prefix).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Whether this "fused" task wraps a single task (no fusion happened).
    pub fn is_singleton(&self) -> bool {
        self.tasks.len() == 1
    }

    /// The stores written (or read-written) by the fused task.
    pub fn written_stores(&self) -> Vec<StoreId> {
        let mut out = Vec::new();
        for (s, _, pr) in &self.args {
            if pr.writes() && !out.contains(s) {
                out.push(*s);
            }
        }
        out
    }

    /// The stores only read by the fused task.
    pub fn read_only_stores(&self) -> Vec<StoreId> {
        let mut out = Vec::new();
        for (s, _, pr) in &self.args {
            if pr.reads() && !pr.writes() && !out.contains(s) {
                out.push(*s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Partition, StoreArg, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn task(id: u64, reads: &[u64], writes: &[u64]) -> IndexTask {
        let mut args: Vec<StoreArg> = reads
            .iter()
            .map(|&s| StoreArg::new(StoreId(s), block(), Privilege::Read))
            .collect();
        args.extend(
            writes
                .iter()
                .map(|&s| StoreArg::new(StoreId(s), block(), Privilege::Write)),
        );
        IndexTask::new(TaskId(id), 0, format!("t{id}"), Domain::linear(4), args, vec![])
    }

    #[test]
    fn merges_duplicate_arguments_and_promotes_privileges() {
        // t0 writes S1; t1 reads S1 and writes S2: S1 should appear once with
        // the ReadWrite privilege.
        let fused = FusedTask::build(vec![task(0, &[0], &[1]), task(1, &[1], &[2])]);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.args.len(), 3);
        let s1 = fused
            .args
            .iter()
            .find(|(s, _, _)| *s == StoreId(1))
            .unwrap();
        assert_eq!(s1.2, Privilege::ReadWrite);
        assert_eq!(fused.written_stores(), vec![StoreId(1), StoreId(2)]);
        assert_eq!(fused.read_only_stores(), vec![StoreId(0)]);
    }

    #[test]
    fn arg_map_points_to_merged_entries() {
        let fused = FusedTask::build(vec![task(0, &[0], &[1]), task(1, &[1], &[2])]);
        // Task 0: args (S0 read, S1 write) -> fused indices 0, 1.
        assert_eq!(fused.arg_map[0], vec![0, 1]);
        // Task 1: args (S1 read, S2 write) -> fused indices 1, 2.
        assert_eq!(fused.arg_map[1], vec![1, 2]);
    }

    #[test]
    fn same_store_different_partition_stays_separate() {
        let grid = StoreId(0);
        let center = Partition::tiling(vec![4], vec![1], ir::Projection::Identity);
        let north = Partition::tiling(vec![4], vec![0], ir::Projection::Identity);
        let t = IndexTask::new(
            TaskId(0),
            0,
            "stencil",
            Domain::linear(4),
            vec![
                StoreArg::new(grid, center, Privilege::Read),
                StoreArg::new(grid, north, Privilege::Read),
            ],
            vec![],
        );
        let fused = FusedTask::build(vec![t]);
        assert!(fused.is_singleton());
        assert_eq!(fused.args.len(), 2, "different views are distinct arguments");
    }

    #[test]
    fn name_mentions_constituents() {
        let fused = FusedTask::build(vec![task(0, &[0], &[1]), task(1, &[1], &[2])]);
        assert!(fused.name.contains("t0"));
        assert!(fused.name.contains("t1"));
    }

    #[test]
    #[should_panic]
    fn empty_prefix_panics() {
        let _ = FusedTask::build(vec![]);
    }

    #[test]
    #[should_panic]
    fn mismatched_launch_domains_panic() {
        let mut t1 = task(0, &[0], &[1]);
        t1.launch_domain = Domain::linear(8);
        let _ = FusedTask::build(vec![t1, task(1, &[1], &[2])]);
    }
}
