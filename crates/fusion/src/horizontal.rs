//! Horizontal fusion: packing *independent* equal-domain fusible segments
//! side by side into one wide launch.
//!
//! The vertical prefix analysis ([`crate::prefix`]) only fuses tasks that are
//! adjacent in submission order; a window that interleaves independent request
//! chains with fusion breakers (launch-domain changes, reductions read back,
//! aliasing write-backs) is cut into many small segments even though most of
//! them could share a launch. This module runs **after**
//! [`crate::fusible_segments`] and **before** the vertical pass re-analyzes
//! the stream: it groups segments that are pairwise independent and share a
//! launch domain, and emits a permutation of the window that places each
//! group's segments back to back. The unchanged vertical pass then fuses each
//! group into a single wide launch — skeleton memoization, temporary
//! elimination and kernel composition all apply to the merged stream without
//! modification.
//!
//! # Soundness
//!
//! The permutation produced by [`plan_horizontal`] only reorders task pairs
//! that are proven independent, so any execution of the permuted stream
//! computes the same values as the original program order:
//!
//! * **Within a group**, members are admitted only if their footprints are
//!   disjoint up to shared *read-only* stores ([`SegmentFootprint::admits`]).
//!   Mutually independent segments may execute in any interleaving, so the
//!   canonical intra-group order (see below) is valid.
//! * **Across groups**, groups launch in program order of their *first*
//!   segment, and a segment only joins a group after every intervening
//!   segment it would overtake is checked for a memory conflict
//!   ([`HorizontalViolation::OrderingDependence`]). Intervening segments
//!   whose own group launches earlier than the joined group are skipped —
//!   they execute before the candidate either way, preserving program order.
//!
//! Dependent segments therefore never flip: a pair with any write/reduce
//! overlap either stays in program order or is rejected with a classified
//! [`HorizontalViolation`]. The equivalence tests in
//! `crates/fusion/tests/horizontal_equivalence.rs` encode this argument as a
//! property over random interleavings rather than asserting it.
//!
//! # Canonical member order
//!
//! Group members are sorted by their standalone structural fingerprint
//! ([`ir::window_fingerprint`], stable on ties), so isomorphic batches
//! submitted in different orders produce the same permuted stream up to store
//! renaming and hit one shared memo entry. Batches whose segments share
//! stores *asymmetrically* may still canonicalize differently under
//! different submission orders (full order-insensitivity is graph
//! canonicalization); the fingerprint sort covers the symmetric and
//! isomorphic cases that batched request streams produce.

use std::collections::HashMap;
use std::ops::Range;

use ir::{window_fingerprint, Domain, IndexTask, StoreId};

/// Why a segment could not join a horizontal group. Mirrors
/// [`crate::FusionViolation`] but is classified from the *cross-segment*
/// perspective: the group's accumulated footprint plays the role of the
/// earlier accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HorizontalViolation {
    /// The candidate's launch domain differs from the group's.
    LaunchDomainMismatch {
        /// Launch domain of the group.
        expected: Domain,
        /// Launch domain of the rejected segment.
        found: Domain,
    },
    /// The candidate reads a store the group writes (read after write).
    TrueDependence {
        /// The store involved.
        store: StoreId,
    },
    /// The candidate writes a store the group reads (write after read).
    AntiDependence {
        /// The store involved.
        store: StoreId,
    },
    /// Both the group and the candidate write the store (write after write).
    OutputDependence {
        /// The store involved.
        store: StoreId,
    },
    /// The group or the candidate reduces to a store the other side touches.
    /// Conservative: even two pure reductions to the same store are rejected,
    /// so merged segments never share a partially reduced value.
    ReductionInterference {
        /// The store involved.
        store: StoreId,
    },
    /// Joining the group would move the candidate past an intervening segment
    /// it conflicts with (the reorder itself — not the merge — is unsound).
    OrderingDependence {
        /// The store shared with the intervening segment.
        store: StoreId,
    },
}

impl std::fmt::Display for HorizontalViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HorizontalViolation::LaunchDomainMismatch { expected, found } => {
                write!(f, "launch domain {found} differs from group domain {expected}")
            }
            HorizontalViolation::TrueDependence { store } => {
                write!(f, "candidate reads {store} which the group writes")
            }
            HorizontalViolation::AntiDependence { store } => {
                write!(f, "candidate writes {store} which the group reads")
            }
            HorizontalViolation::OutputDependence { store } => {
                write!(f, "both the group and the candidate write {store}")
            }
            HorizontalViolation::ReductionInterference { store } => {
                write!(f, "reduction to {store} interferes across segments")
            }
            HorizontalViolation::OrderingDependence { store } => {
                write!(f, "reorder would overtake a segment conflicting on {store}")
            }
        }
    }
}

/// How one footprint touches one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Effect {
    reads: bool,
    writes: bool,
    reduces: bool,
}

impl Effect {
    fn touches(self) -> bool {
        self.reads || self.writes || self.reduces
    }
}

/// The store footprint of one fusible segment: its launch domain plus, per
/// store, whether the segment reads, writes or reduces to it. Partition
/// identities are deliberately *not* tracked: horizontal merging requires
/// full independence (any write/reduce overlap rejects, through any view),
/// which is strictly stronger than the vertical constraints — two segments
/// the vertical pass split apart can never be adjacent-merged back, only
/// packed from a distance.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentFootprint {
    launch_domain: Domain,
    effects: HashMap<StoreId, Effect>,
}

impl SegmentFootprint {
    /// Summarizes the footprint of a fusible segment.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty (segments produced by
    /// [`crate::fusible_segments`] never are).
    pub fn of_tasks(tasks: &[IndexTask]) -> SegmentFootprint {
        assert!(!tasks.is_empty(), "a fusible segment is never empty");
        let mut effects: HashMap<StoreId, Effect> = HashMap::new();
        for task in tasks {
            for arg in &task.args {
                let e = effects.entry(arg.store).or_default();
                e.reads |= arg.privilege.reads();
                e.writes |= arg.privilege.writes();
                e.reduces |= arg.privilege.reduces();
            }
        }
        SegmentFootprint {
            launch_domain: tasks[0].launch_domain.clone(),
            effects,
        }
    }

    /// The launch domain shared by every task in the segment (the vertical
    /// segmentation guarantees uniformity).
    pub fn launch_domain(&self) -> &Domain {
        &self.launch_domain
    }

    /// Checks whether `candidate` may join a group with this accumulated
    /// footprint: equal launch domains and pairwise-disjoint store footprints,
    /// where shared stores are admitted only when *both* sides access them
    /// read-only.
    ///
    /// # Errors
    ///
    /// Returns the classified violation otherwise.
    pub fn admits(&self, candidate: &SegmentFootprint) -> Result<(), HorizontalViolation> {
        if self.launch_domain != candidate.launch_domain {
            return Err(HorizontalViolation::LaunchDomainMismatch {
                expected: self.launch_domain.clone(),
                found: candidate.launch_domain.clone(),
            });
        }
        for (&store, &theirs) in &candidate.effects {
            let Some(&ours) = self.effects.get(&store) else {
                continue;
            };
            if (ours.reduces && theirs.touches()) || (theirs.reduces && ours.touches()) {
                return Err(HorizontalViolation::ReductionInterference { store });
            }
            if ours.writes && theirs.writes {
                return Err(HorizontalViolation::OutputDependence { store });
            }
            if ours.writes && theirs.reads {
                return Err(HorizontalViolation::TrueDependence { store });
            }
            if ours.reads && theirs.writes {
                return Err(HorizontalViolation::AntiDependence { store });
            }
        }
        Ok(())
    }

    /// The first store on which reordering `self` and `other` would be
    /// observable: shared with a write or reduce on either side. `None` means
    /// the two segments commute (read-read sharing is fine through any view).
    pub fn conflict_with(&self, other: &SegmentFootprint) -> Option<StoreId> {
        // Iterate the smaller map for the common case of small candidates.
        let (a, b) = if self.effects.len() <= other.effects.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut hit: Option<StoreId> = None;
        for (&store, &ea) in &a.effects {
            let Some(&eb) = b.effects.get(&store) else {
                continue;
            };
            let conflicting =
                ea.writes || ea.reduces || eb.writes || eb.reduces;
            if conflicting && hit.map(|h| store < h).unwrap_or(true) {
                hit = Some(store);
            }
        }
        hit
    }

    /// Absorbs a joining member's footprint into the group's.
    fn absorb(&mut self, member: &SegmentFootprint) {
        for (&store, &e) in &member.effects {
            let slot = self.effects.entry(store).or_default();
            slot.reads |= e.reads;
            slot.writes |= e.writes;
            slot.reduces |= e.reduces;
        }
    }
}

/// One horizontal group: segment indices (into the vertical segmentation)
/// that will be emitted back to back, in canonical fingerprint order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HorizontalGroup {
    /// Members in canonical emission order (sorted by per-segment structural
    /// fingerprint, stable on ties). The first element in *program* order
    /// determines the group's launch position.
    pub members: Vec<usize>,
}

/// The result of planning a horizontal pass over one window: how the
/// vertical segments regroup, the resulting permutation, and (for the
/// negative-path tests) why each unmerged segment was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizontalPlan {
    /// Groups in launch order (program order of each group's first segment).
    pub groups: Vec<HorizontalGroup>,
    /// Task range of each vertical segment in the original window.
    ranges: Vec<Range<usize>>,
    /// Total constituent tasks inside groups with two or more members.
    merged_tasks: u64,
    /// For each segment that joined no group despite groups existing before
    /// it: the violation against the *earliest* group it was tried against.
    /// `None` for segments that merged or had no earlier group.
    rejections: Vec<Option<HorizontalViolation>>,
}

impl HorizontalPlan {
    /// Groups in launch order.
    pub fn groups(&self) -> &[HorizontalGroup] {
        &self.groups
    }

    /// Total constituent tasks packed into multi-segment groups — the value
    /// `ExecutionStats::horizontally_fused_tasks` accumulates per flush.
    pub fn merged_tasks(&self) -> u64 {
        self.merged_tasks
    }

    /// Whether the plan leaves the window untouched (every group is a
    /// singleton, so the emission order is the program order).
    pub fn is_identity(&self) -> bool {
        self.merged_tasks == 0
    }

    /// Why segment `seg` did not merge: the violation against the earliest
    /// group it was tried against, if any groups preceded it.
    pub fn rejection(&self, seg: usize) -> Option<&HorizontalViolation> {
        self.rejections.get(seg).and_then(|r| r.as_ref())
    }

    /// Materializes the permuted window: groups in launch order, members in
    /// canonical order, tasks of each segment in program order. The output
    /// is a permutation of `tasks` (same length, same multiset).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is not the window the plan was computed over.
    pub fn apply(&self, tasks: &[IndexTask]) -> Vec<IndexTask> {
        let total: usize = self.ranges.iter().map(|r| r.len()).sum();
        assert_eq!(
            tasks.len(),
            total,
            "plan was computed over a window of {total} tasks"
        );
        let mut out = Vec::with_capacity(tasks.len());
        for group in &self.groups {
            for &seg in &group.members {
                out.extend_from_slice(&tasks[self.ranges[seg].clone()]);
            }
        }
        out
    }
}

/// Plans the horizontal pass over one window: `segments` is the vertical
/// segmentation of `tasks` (from [`crate::fusible_segments`]; lengths summing
/// to `tasks.len()`). Greedy first-fit in program order: each segment joins
/// the earliest group that admits it ([`SegmentFootprint::admits`]) *and*
/// that it can reach without overtaking a conflicting intervening segment;
/// otherwise it starts its own group.
///
/// # Panics
///
/// Panics if the segment lengths do not sum to `tasks.len()`.
pub fn plan_horizontal(tasks: &[IndexTask], segments: &[usize]) -> HorizontalPlan {
    assert_eq!(
        segments.iter().sum::<usize>(),
        tasks.len(),
        "segment lengths must cover the window"
    );
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(segments.len());
    let mut start = 0usize;
    for &len in segments {
        ranges.push(start..start + len);
        start += len;
    }
    let footprints: Vec<SegmentFootprint> = ranges
        .iter()
        .map(|r| SegmentFootprint::of_tasks(&tasks[r.clone()]))
        .collect();

    struct Group {
        first: usize,
        members: Vec<usize>,
        footprint: SegmentFootprint,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut group_of: Vec<usize> = Vec::with_capacity(segments.len());
    let mut rejections: Vec<Option<HorizontalViolation>> = vec![None; segments.len()];

    for j in 0..segments.len() {
        let mut joined: Option<usize> = None;
        for gi in 0..groups.len() {
            let violation = match groups[gi].footprint.admits(&footprints[j]) {
                Err(v) => Some(v),
                Ok(()) => {
                    // The candidate would overtake every segment between the
                    // group's launch position and itself; each one must
                    // commute with it unless it executes earlier anyway
                    // (same group, or a group launching before this one).
                    let mut blocked = None;
                    for k in (groups[gi].first + 1)..j {
                        let kg = group_of[k];
                        if kg == gi || groups[kg].first < groups[gi].first {
                            continue;
                        }
                        if let Some(store) = footprints[k].conflict_with(&footprints[j]) {
                            blocked = Some(HorizontalViolation::OrderingDependence { store });
                            break;
                        }
                    }
                    blocked
                }
            };
            match violation {
                Some(v) => {
                    if rejections[j].is_none() {
                        rejections[j] = Some(v);
                    }
                }
                None => {
                    joined = Some(gi);
                    break;
                }
            }
        }
        match joined {
            Some(gi) => {
                let footprint = footprints[j].clone();
                groups[gi].members.push(j);
                groups[gi].footprint.absorb(&footprint);
                group_of.push(gi);
                rejections[j] = None;
            }
            None => {
                group_of.push(groups.len());
                groups.push(Group {
                    first: j,
                    members: vec![j],
                    footprint: footprints[j].clone(),
                });
            }
        }
    }

    // Canonical member order: sort by standalone segment fingerprint (stable,
    // so isomorphic ties keep program order — which is itself canonical for
    // isomorphic members).
    let seg_fps: Vec<u64> = ranges
        .iter()
        .map(|r| window_fingerprint(&tasks[r.clone()]))
        .collect();
    let mut merged_tasks = 0u64;
    let groups: Vec<HorizontalGroup> = groups
        .into_iter()
        .map(|mut g| {
            g.members.sort_by_key(|&m| seg_fps[m]);
            if g.members.len() > 1 {
                merged_tasks += g.members.iter().map(|&m| segments[m] as u64).sum::<u64>();
            }
            HorizontalGroup { members: g.members }
        })
        .collect();

    HorizontalPlan {
        groups,
        ranges,
        merged_tasks,
        rejections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::fusible_segments;
    use ir::{Partition, Privilege, Projection, ReductionOp, StoreArg, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn chain_task(id: u64, points: u64, input: u64, output: u64) -> IndexTask {
        IndexTask::new(
            TaskId(id),
            0,
            format!("t{id}"),
            Domain::linear(points),
            vec![
                StoreArg::new(StoreId(input), block(), Privilege::Read),
                StoreArg::new(StoreId(output), block(), Privilege::Write),
            ],
            vec![],
        )
    }

    /// A domain-`points` chain of `len` tasks over stores `base..`.
    fn chain(id0: u64, points: u64, base: u64, len: u64) -> Vec<IndexTask> {
        (0..len)
            .map(|i| chain_task(id0 + i, points, base + i, base + i + 1))
            .collect()
    }

    /// A domain-1 "breaker" task writing its own scratch store.
    fn breaker(id: u64, store: u64) -> IndexTask {
        IndexTask::new(
            TaskId(id),
            1,
            format!("b{id}"),
            Domain::linear(1),
            vec![StoreArg::new(StoreId(store), Partition::Replicate, Privilege::Write)],
            vec![],
        )
    }

    fn plan(tasks: &[IndexTask]) -> HorizontalPlan {
        let segments = fusible_segments(tasks);
        plan_horizontal(tasks, &segments)
    }

    #[test]
    fn disjoint_chains_separated_by_breakers_pack_into_two_groups() {
        // chain A (domain 4) | breaker (domain 1) | chain B (domain 4) |
        // breaker (domain 1): four vertical segments, two horizontal groups.
        let mut tasks = chain(0, 4, 0, 3);
        tasks.push(breaker(3, 100));
        tasks.extend(chain(4, 4, 10, 3));
        tasks.push(breaker(7, 101));
        let segments = fusible_segments(&tasks);
        assert_eq!(segments, vec![3, 1, 3, 1]);
        let p = plan_horizontal(&tasks, &segments);
        assert_eq!(p.groups().len(), 2);
        assert_eq!(p.merged_tasks(), 8, "all eight tasks sit in merged groups");
        assert!(!p.is_identity());
        // Group launch order follows the first member's program order.
        assert!(p.groups()[0].members.contains(&0) && p.groups()[0].members.contains(&2));
        assert!(p.groups()[1].members.contains(&1) && p.groups()[1].members.contains(&3));
    }

    #[test]
    fn apply_emits_groups_back_to_back_and_preserves_the_multiset() {
        let mut tasks = chain(0, 4, 0, 2);
        tasks.push(breaker(2, 100));
        tasks.extend(chain(3, 4, 10, 2));
        let p = plan(&tasks);
        let out = p.apply(&tasks);
        assert_eq!(out.len(), tasks.len());
        let mut ids: Vec<u64> = out.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        // Both chains precede the breaker in the permuted stream.
        let pos = |id: u64| out.iter().position(|t| t.id.0 == id).unwrap();
        assert!(pos(3) < pos(2) && pos(4) < pos(2));
        // The permuted stream now fuses the chains into ONE vertical segment.
        assert_eq!(fusible_segments(&out), vec![4, 1]);
    }

    #[test]
    fn identity_plan_for_a_window_with_nothing_to_pack() {
        let tasks = chain(0, 4, 0, 3);
        let p = plan(&tasks);
        assert!(p.is_identity());
        assert_eq!(p.merged_tasks(), 0);
        assert_eq!(p.apply(&tasks), tasks);
    }

    // ----- Negative paths: each precondition rejects with its own class -----

    #[test]
    fn unequal_launch_domains_are_classified() {
        let mut tasks = chain(0, 4, 0, 1);
        tasks.push(breaker(1, 100));
        tasks.extend(chain(2, 8, 10, 1)); // same shape, different domain
        let segments = fusible_segments(&tasks);
        assert_eq!(segments.len(), 3);
        let p = plan_horizontal(&tasks, &segments);
        assert!(p.is_identity(), "nothing merges");
        assert!(matches!(
            p.rejection(2),
            Some(HorizontalViolation::LaunchDomainMismatch { .. })
        ));
    }

    #[test]
    fn overlapping_write_footprints_are_output_dependences() {
        // Both segments write store 1 (through the same partition, so the
        // vertical pass split them only because of the breaker) — horizontal
        // merging must still refuse: members may be reordered.
        let mut tasks = vec![chain_task(0, 4, 0, 1)];
        tasks.push(breaker(1, 100));
        tasks.push(chain_task(2, 4, 2, 1));
        let segments = fusible_segments(&tasks);
        assert_eq!(segments.len(), 3);
        let p = plan_horizontal(&tasks, &segments);
        assert!(p.is_identity());
        assert_eq!(
            p.rejection(2),
            Some(&HorizontalViolation::OutputDependence { store: StoreId(1) })
        );
    }

    #[test]
    fn war_pairs_are_anti_dependences() {
        // Segment 0 reads store 5; segment 2 writes store 5.
        let mut tasks = vec![chain_task(0, 4, 5, 1)];
        tasks.push(breaker(1, 100));
        tasks.push(chain_task(2, 4, 7, 5));
        let p = plan(&tasks);
        assert!(p.is_identity());
        assert_eq!(
            p.rejection(2),
            Some(&HorizontalViolation::AntiDependence { store: StoreId(5) })
        );
    }

    #[test]
    fn raw_pairs_are_true_dependences() {
        // Segment 0 writes store 1; segment 2 reads store 1 through a
        // *different* partition (a genuine cross-launch dependence).
        let shifted = Partition::tiling(vec![4], vec![1], Projection::Identity);
        let mut tasks = vec![chain_task(0, 4, 0, 1)];
        tasks.push(breaker(1, 100));
        tasks.push(IndexTask::new(
            TaskId(2),
            0,
            "r",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(1), shifted, Privilege::Read),
                StoreArg::new(StoreId(3), block(), Privilege::Write),
            ],
            vec![],
        ));
        let p = plan(&tasks);
        assert!(p.is_identity());
        assert_eq!(
            p.rejection(2),
            Some(&HorizontalViolation::TrueDependence { store: StoreId(1) })
        );
    }

    #[test]
    fn reductions_to_a_shared_store_are_reduction_interference() {
        let reduce = |id: u64, input: u64| {
            IndexTask::new(
                TaskId(id),
                2,
                format!("sum{id}"),
                Domain::linear(4),
                vec![
                    StoreArg::new(StoreId(input), block(), Privilege::Read),
                    StoreArg::new(
                        StoreId(50),
                        Partition::Replicate,
                        Privilege::Reduce(ReductionOp::Sum),
                    ),
                ],
                vec![],
            )
        };
        let mut tasks = vec![reduce(0, 0)];
        tasks.push(breaker(1, 100));
        tasks.push(reduce(2, 10));
        let p = plan(&tasks);
        assert!(p.is_identity());
        assert_eq!(
            p.rejection(2),
            Some(&HorizontalViolation::ReductionInterference { store: StoreId(50) })
        );
    }

    #[test]
    fn conflicting_intervening_segment_is_an_ordering_dependence() {
        // Segment 0: chain over stores 0->1 (domain 4).
        // Segment 1: domain-8 task WRITING store 20 (breaker by domain).
        // Segment 2: chain reading store 20 (domain 4) — independent of the
        // group but dependent on the segment it would overtake.
        let mut tasks = vec![chain_task(0, 4, 0, 1)];
        tasks.push(IndexTask::new(
            TaskId(1),
            1,
            "w20",
            Domain::linear(8),
            vec![StoreArg::new(StoreId(20), block(), Privilege::Write)],
            vec![],
        ));
        tasks.push(chain_task(2, 4, 20, 21));
        let segments = fusible_segments(&tasks);
        assert_eq!(segments.len(), 3);
        let p = plan_horizontal(&tasks, &segments);
        assert!(p.is_identity());
        assert_eq!(
            p.rejection(2),
            Some(&HorizontalViolation::OrderingDependence { store: StoreId(20) })
        );
    }

    #[test]
    fn intervening_member_of_an_earlier_group_does_not_block() {
        // chains A1 | fin1 | A2 | fin2 where fin_k reads chain_k's output:
        // fin2 may join fin1's group even though A2 (which it overtakes in
        // segment order) conflicts with... nothing: A2's group launches
        // first, so it is skipped; fin2's real dependence on A2 is satisfied
        // because the chain group launches before the fin group.
        let fin = |id: u64, input: u64, output: u64| {
            IndexTask::new(
                TaskId(id),
                3,
                format!("fin{id}"),
                Domain::linear(1),
                vec![
                    StoreArg::new(StoreId(input), Partition::Replicate, Privilege::Read),
                    StoreArg::new(StoreId(output), Partition::Replicate, Privilege::Write),
                ],
                vec![],
            )
        };
        let mut tasks = chain(0, 4, 0, 2); // writes 1, 2
        tasks.push(fin(2, 2, 100));
        tasks.extend(chain(3, 4, 10, 2)); // writes 11, 12
        tasks.push(fin(5, 12, 101));
        let segments = fusible_segments(&tasks);
        assert_eq!(segments, vec![2, 1, 2, 1]);
        let p = plan_horizontal(&tasks, &segments);
        assert_eq!(p.groups().len(), 2, "chains pack together, fins pack together");
        assert_eq!(p.merged_tasks(), 6);
        let out = p.apply(&tasks);
        // Permuted stream: both chains, then both fins.
        let kinds: Vec<u32> = out.iter().map(|t| t.kind).collect();
        assert_eq!(kinds, vec![0, 0, 0, 0, 3, 3]);
        // And the vertical pass now sees exactly two wide segments.
        assert_eq!(fusible_segments(&out), vec![4, 2]);
    }

    #[test]
    fn shared_read_only_inputs_are_admitted() {
        // Two chains both read store 0 (read-read sharing) but write disjoint
        // outputs: they merge.
        let ew = |id: u64, out: u64| chain_task(id, 4, 0, out);
        let mut tasks = vec![ew(0, 1)];
        tasks.push(breaker(1, 100));
        tasks.push(ew(2, 2));
        let p = plan(&tasks);
        assert_eq!(p.merged_tasks(), 2);
        assert!(p.rejection(2).is_none());
    }

    #[test]
    fn canonical_member_order_is_submission_order_insensitive() {
        // Two structurally DISTINCT segments (lengths 1 and 2) packed into
        // one group must emit in fingerprint order regardless of which was
        // submitted first.
        let build = |first_long: bool| {
            let mut tasks = Vec::new();
            let (a0, b0) = (0u64, 10u64);
            if first_long {
                tasks.extend(chain(0, 4, a0, 2));
                tasks.push(breaker(2, 100));
                tasks.extend(chain(3, 4, b0, 1));
            } else {
                tasks.extend(chain(0, 4, b0, 1));
                tasks.push(breaker(1, 100));
                tasks.extend(chain(2, 4, a0, 2));
            }
            let p = plan(&tasks);
            p.apply(&tasks)
        };
        let a = build(true);
        let b = build(false);
        assert_eq!(
            window_fingerprint(&a),
            window_fingerprint(&b),
            "isomorphic batches canonicalize identically under permutation"
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_segments_panic() {
        let tasks = chain(0, 4, 0, 2);
        let _ = plan_horizontal(&tasks, &[1]);
    }
}
