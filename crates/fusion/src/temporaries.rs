//! Temporary store elimination (Section 5.1, Definition 4).
//!
//! After a fusible prefix has been identified, stores whose entire contents
//! are produced and consumed inside the fused task — and which neither pending
//! tasks nor the application can observe afterwards — are *temporary* and can
//! be demoted from distributed allocations to task-local allocations, where
//! the kernel pipeline can usually eliminate them entirely.

use std::collections::HashSet;

use ir::{Domain, IndexTask, PartitionId, StoreId};

/// Computes the set of temporary stores for the fusion of `prefix`
/// (Definition 4).
///
/// * `prefix` — the fusible prefix about to be replaced by a fused task.
/// * `pending` — tasks issued after the prefix that have not executed yet
///   (the rest of the window; borrowed straight from the task window, no
///   copy needed).
/// * `has_app_reference` — whether the application still holds a live
///   reference to a store (the split reference count of Section 5.1).
///
/// Store shapes for the `covers` check are read from the prefix's own
/// arguments (stamped by the Diffuse context), so no side shape map is
/// built or consulted.
pub fn temporary_stores(
    prefix: &[IndexTask],
    pending: &[IndexTask],
    mut has_app_reference: impl FnMut(StoreId) -> bool,
) -> HashSet<StoreId> {
    if prefix.is_empty() {
        return HashSet::new();
    }
    let launch_domain: &Domain = &prefix[0].launch_domain;
    // Candidate stores: everything accessed by the prefix.
    let mut candidates: Vec<StoreId> = Vec::new();
    for t in prefix {
        for s in t.stores() {
            if !candidates.contains(&s) {
                candidates.push(s);
            }
        }
    }
    let mut result = HashSet::new();
    'candidate: for store in candidates {
        // Condition 3: no live application references.
        if has_app_reference(store) {
            continue;
        }
        // Condition 2: no pending task reads or reduces the store.
        for t in pending {
            if t.reads(store) || t.reduces(store) {
                continue 'candidate;
            }
        }
        // Condition 1: every read of the store within the prefix is preceded
        // by a covering write through the same partition.
        let mut covering_writes: Vec<PartitionId> = Vec::new();
        let mut written_at_all = false;
        let mut shape_known = true;
        for t in prefix {
            for arg in t.args_for(store) {
                if arg.shape.is_unknown() {
                    shape_known = false;
                    break;
                }
                if arg.privilege.reads() || arg.privilege.reduces() {
                    // A read (or reduction, which also observes prior
                    // contents' absence) must be preceded by a covering write
                    // through the same partition.
                    if !covering_writes.contains(&arg.partition) {
                        continue 'candidate;
                    }
                }
                if arg.privilege.writes() {
                    written_at_all = true;
                    if arg.partition.covers(&arg.shape, launch_domain)
                        && !covering_writes.contains(&arg.partition)
                    {
                        covering_writes.push(arg.partition);
                    }
                }
            }
        }
        if !shape_known {
            continue;
        }
        // A store that is never written inside the prefix is an input, not a
        // temporary (its contents flow in from earlier execution).
        if !written_at_all {
            continue;
        }
        result.insert(store);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Partition, Privilege, Projection, ReductionOp, StoreArg, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    /// Builds a task with every argument's shape stamped to `[16]` (the role
    /// the Diffuse context plays at submit time).
    fn task(id: u64, args: Vec<StoreArg>) -> IndexTask {
        let args = args
            .into_iter()
            .map(|a| a.with_shape(vec![16u64]))
            .collect();
        IndexTask::new(TaskId(id), 0, "t", Domain::linear(4), args, vec![])
    }

    /// The Figure 6 example: z = 2 * x; w = y + z; v = w ** 2, with a pending
    /// norm task reading part of w, v still referenced by the application, and
    /// x, y, z, w dropped by the application.
    fn figure6() -> (Vec<IndexTask>, Vec<IndexTask>) {
        let (x, y, z, w, v, norm) = (0u64, 1, 2, 3, 4, 5);
        let mult = task(
            0,
            vec![
                StoreArg::new(StoreId(x), block(), Privilege::Read),
                StoreArg::new(StoreId(z), block(), Privilege::Write),
            ],
        );
        let add = task(
            1,
            vec![
                StoreArg::new(StoreId(y), block(), Privilege::Read),
                StoreArg::new(StoreId(z), block(), Privilege::Read),
                StoreArg::new(StoreId(w), block(), Privilege::Write),
            ],
        );
        let pow = task(
            2,
            vec![
                StoreArg::new(StoreId(w), block(), Privilege::Read),
                StoreArg::new(StoreId(v), block(), Privilege::Write),
            ],
        );
        // The pending norm reads a sub-slice of w (a different partition) and
        // reduces into the norm scalar.
        let half = Partition::tiling(vec![2], vec![8], Projection::Identity);
        let norm_task = task(
            3,
            vec![
                StoreArg::new(StoreId(w), half, Privilege::Read),
                StoreArg::new(
                    StoreId(norm),
                    Partition::Replicate,
                    Privilege::Reduce(ReductionOp::Sum),
                ),
            ],
        );
        (vec![mult, add, pow], vec![norm_task])
    }

    #[test]
    fn figure6_only_z_is_temporary() {
        let (prefix, pending) = figure6();
        // The application still references v; x, y, z, w were deleted.
        let temps = temporary_stores(&prefix, &pending, |s| s == StoreId(4));
        assert_eq!(temps, HashSet::from([StoreId(2)]));
    }

    #[test]
    fn live_application_reference_blocks_elimination() {
        let (prefix, pending) = figure6();
        // If the application also still holds z, nothing is temporary.
        let temps = temporary_stores(&prefix, &pending, |s| {
            s == StoreId(4) || s == StoreId(2)
        });
        assert!(temps.is_empty());
    }

    #[test]
    fn pending_reader_blocks_elimination() {
        let (prefix, _) = figure6();
        // A pending task reading z keeps it alive.
        let reader = task(
            9,
            vec![StoreArg::new(StoreId(2), block(), Privilege::Read)],
        );
        let temps = temporary_stores(&prefix, &[reader], |s| s == StoreId(4));
        assert!(!temps.contains(&StoreId(2)));
    }

    #[test]
    fn non_covering_write_blocks_elimination() {
        // Write only part of the store, then read it through the full block
        // partition: the read observes data not produced in the fused task.
        let partial = Partition::tiling(vec![2], vec![0], Projection::Identity);
        let prefix = vec![
            task(0, vec![StoreArg::new(StoreId(0), partial, Privilege::Write)]),
            task(1, vec![StoreArg::new(StoreId(0), block(), Privilege::Read)]),
        ];
        let temps = temporary_stores(&prefix, &[], |_| false);
        assert!(temps.is_empty());
    }

    #[test]
    fn read_through_different_view_than_write_blocks_elimination() {
        let shifted = Partition::tiling(vec![4], vec![1], Projection::Identity);
        let prefix = vec![
            task(0, vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]),
            task(1, vec![StoreArg::new(StoreId(0), shifted, Privilege::Read)]),
        ];
        let temps = temporary_stores(&prefix, &[], |_| false);
        assert!(temps.is_empty());
    }

    #[test]
    fn pure_input_is_not_temporary() {
        let prefix = vec![task(
            0,
            vec![
                StoreArg::new(StoreId(0), block(), Privilege::Read),
                StoreArg::new(StoreId(1), block(), Privilege::Write),
            ],
        )];
        let temps = temporary_stores(&prefix, &[], |_| false);
        assert!(!temps.contains(&StoreId(0)));
        // The dead output with no references is temporary.
        assert!(temps.contains(&StoreId(1)));
    }

    #[test]
    fn empty_prefix_has_no_temporaries() {
        assert!(temporary_stores(&[], &[], |_| false).is_empty());
    }
}
