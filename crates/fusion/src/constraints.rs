//! The four fusion constraints of Figure 5.
//!
//! The constraints are evaluated by a forwards dataflow over the candidate
//! prefix: [`ConstraintState`] tracks, per store, the set of partitions that
//! earlier tasks in the prefix have read, written and reduced. Admitting a new
//! task requires only constant-time partition equality checks per argument —
//! never an enumeration of sub-stores — which is what makes the analysis
//! scale-free.

use std::collections::HashMap;

use ir::{Domain, IndexTask, PartitionId, StoreId};

/// Why a task could not be added to the fusible prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionViolation {
    /// The task's launch domain differs from the prefix's launch domain.
    LaunchDomainMismatch {
        /// Launch domain of the prefix.
        expected: Domain,
        /// Launch domain of the rejected task.
        found: Domain,
    },
    /// A read-after-write of the same store through a different partition
    /// (would require communicating the written values).
    TrueDependence {
        /// The store involved.
        store: StoreId,
    },
    /// A write-after-read of the same store through a different partition.
    AntiDependence {
        /// The store involved.
        store: StoreId,
    },
    /// A read or write of a store that an earlier task reduces to (or a
    /// reduction to a store an earlier task reads or writes).
    Reduction {
        /// The store involved.
        store: StoreId,
    },
}

impl std::fmt::Display for FusionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionViolation::LaunchDomainMismatch { expected, found } => {
                write!(f, "launch domain {found} differs from prefix domain {expected}")
            }
            FusionViolation::TrueDependence { store } => {
                write!(f, "true dependence on {store} through an aliasing partition")
            }
            FusionViolation::AntiDependence { store } => {
                write!(f, "anti dependence on {store} through an aliasing partition")
            }
            FusionViolation::Reduction { store } => {
                write!(f, "partially reduced value of {store} would become visible")
            }
        }
    }
}

/// Per-store effects of the tasks admitted so far. Partitions are tracked by
/// interned id, so recording and membership tests are integer compares with
/// no cloning.
#[derive(Debug, Clone, Default)]
struct StoreEffects {
    reads: Vec<PartitionId>,
    writes: Vec<PartitionId>,
    reduces: Vec<PartitionId>,
}

impl StoreEffects {
    fn record(&mut self, partition: PartitionId, privilege: ir::Privilege) {
        if privilege.reads() && !self.reads.contains(&partition) {
            self.reads.push(partition);
        }
        if privilege.writes() && !self.writes.contains(&partition) {
            self.writes.push(partition);
        }
        if privilege.reduces() && !self.reduces.contains(&partition) {
            self.reduces.push(partition);
        }
    }
}

/// Forwards-dataflow state of the fusion constraints over a candidate prefix.
#[derive(Debug, Clone, Default)]
pub struct ConstraintState {
    launch_domain: Option<Domain>,
    effects: HashMap<StoreId, StoreEffects>,
    tasks_admitted: usize,
}

impl ConstraintState {
    /// Creates an empty state (no tasks admitted yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks admitted so far.
    pub fn len(&self) -> usize {
        self.tasks_admitted
    }

    /// Whether no task has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.tasks_admitted == 0
    }

    /// The launch domain of the prefix, if any task has been admitted.
    pub fn launch_domain(&self) -> Option<&Domain> {
        self.launch_domain.as_ref()
    }

    /// Checks whether `task` may be appended to the prefix without violating
    /// any fusion constraint. Does not modify the state.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn admits(&self, task: &IndexTask) -> Result<(), FusionViolation> {
        // Launch-domain equivalence.
        if let Some(domain) = &self.launch_domain {
            if domain != &task.launch_domain {
                return Err(FusionViolation::LaunchDomainMismatch {
                    expected: domain.clone(),
                    found: task.launch_domain.clone(),
                });
            }
        }
        // With a single launch point every dependence is trivially point-wise
        // (Definition 3), so the aliasing constraints cannot be violated. This
        // mirrors the paper's observation that single-GPU executions admit
        // longer fusible sequences (Section 7.1, CFD discussion).
        if task.launch_domain.size() <= 1 {
            return Ok(());
        }
        for arg in &task.args {
            let effects = match self.effects.get(&arg.store) {
                Some(e) => e,
                None => continue,
            };
            // Reduction constraint: a store reduced to by an earlier task may
            // not be read or written (through any view), and a store read or
            // written earlier may not be reduced to now.
            if (arg.privilege.reads() || arg.privilege.writes()) && !effects.reduces.is_empty() {
                return Err(FusionViolation::Reduction { store: arg.store });
            }
            if arg.privilege.reduces()
                && (!effects.reads.is_empty() || !effects.writes.is_empty())
            {
                return Err(FusionViolation::Reduction { store: arg.store });
            }
            // True dependence: reading or writing a store that an earlier task
            // wrote through a different partition requires communication.
            // Writes through partitions that alias across launch points can
            // never form point-wise dependences, even with equal partitions.
            if (arg.privilege.reads() || arg.privilege.writes())
                && effects
                    .writes
                    .iter()
                    .any(|p| *p != arg.partition || p.may_alias_across_points())
            {
                return Err(FusionViolation::TrueDependence { store: arg.store });
            }
            // Anti dependence: writing a store that an earlier task read
            // through a different partition requires the read to complete
            // first (and the written values to be communicated afterwards).
            if arg.privilege.writes()
                && effects
                    .reads
                    .iter()
                    .any(|p| *p != arg.partition || arg.partition.may_alias_across_points())
            {
                return Err(FusionViolation::AntiDependence { store: arg.store });
            }
        }
        Ok(())
    }

    /// Records `task`'s effects in the state. Call after [`Self::admits`]
    /// succeeds.
    pub fn absorb(&mut self, task: &IndexTask) {
        if self.launch_domain.is_none() {
            self.launch_domain = Some(task.launch_domain.clone());
        }
        for arg in &task.args {
            self.effects
                .entry(arg.store)
                .or_default()
                .record(arg.partition, arg.privilege);
        }
        self.tasks_admitted += 1;
    }

    /// Convenience: admit-and-absorb in one step.
    ///
    /// # Errors
    ///
    /// Returns the violation if the task cannot be admitted (the state is left
    /// unchanged in that case).
    pub fn try_push(&mut self, task: &IndexTask) -> Result<(), FusionViolation> {
        self.admits(task)?;
        self.absorb(task);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Partition, Privilege, Projection, StoreArg, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn shifted() -> Partition {
        Partition::tiling(vec![4], vec![1], Projection::Identity)
    }

    fn task(id: u64, points: u64, args: Vec<StoreArg>) -> IndexTask {
        IndexTask::new(TaskId(id), 0, "t", Domain::linear(points), args, vec![])
    }

    #[test]
    fn same_partition_chain_is_admitted() {
        let mut state = ConstraintState::new();
        let t1 = task(
            0,
            4,
            vec![
                StoreArg::new(StoreId(0), block(), Privilege::Read),
                StoreArg::new(StoreId(1), block(), Privilege::Write),
            ],
        );
        let t2 = task(
            1,
            4,
            vec![
                StoreArg::new(StoreId(1), block(), Privilege::Read),
                StoreArg::new(StoreId(2), block(), Privilege::Write),
            ],
        );
        assert!(state.try_push(&t1).is_ok());
        assert!(state.try_push(&t2).is_ok());
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn launch_domain_mismatch_is_rejected() {
        let mut state = ConstraintState::new();
        let t1 = task(0, 4, vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]);
        let t2 = task(1, 8, vec![StoreArg::new(StoreId(1), block(), Privilege::Write)]);
        state.try_push(&t1).unwrap();
        assert!(matches!(
            state.admits(&t2),
            Err(FusionViolation::LaunchDomainMismatch { .. })
        ));
    }

    #[test]
    fn read_after_write_through_other_view_is_true_dependence() {
        let mut state = ConstraintState::new();
        let writer = task(0, 4, vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]);
        let reader = task(1, 4, vec![StoreArg::new(StoreId(0), shifted(), Privilege::Read)]);
        state.try_push(&writer).unwrap();
        assert_eq!(
            state.admits(&reader),
            Err(FusionViolation::TrueDependence { store: StoreId(0) })
        );
    }

    #[test]
    fn read_after_write_through_same_view_is_admitted() {
        let mut state = ConstraintState::new();
        let writer = task(0, 4, vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]);
        let reader = task(1, 4, vec![StoreArg::new(StoreId(0), block(), Privilege::Read)]);
        state.try_push(&writer).unwrap();
        assert!(state.admits(&reader).is_ok());
    }

    #[test]
    fn write_after_read_through_other_view_is_anti_dependence() {
        // Figure 1: reading the north/east/west/south views then writing the
        // center view must not fuse.
        let mut state = ConstraintState::new();
        let reader = task(
            0,
            4,
            vec![
                StoreArg::new(StoreId(0), shifted(), Privilege::Read),
                StoreArg::new(StoreId(1), block(), Privilege::Write),
            ],
        );
        let writer = task(
            1,
            4,
            vec![
                StoreArg::new(StoreId(1), block(), Privilege::Read),
                StoreArg::new(StoreId(0), block(), Privilege::Write),
            ],
        );
        state.try_push(&reader).unwrap();
        assert_eq!(
            state.admits(&writer),
            Err(FusionViolation::AntiDependence { store: StoreId(0) })
        );
    }

    #[test]
    fn reduction_then_read_is_rejected_even_through_same_view() {
        let mut state = ConstraintState::new();
        let reducer = task(
            0,
            4,
            vec![StoreArg::new(
                StoreId(0),
                Partition::Replicate,
                Privilege::Reduce(ir::ReductionOp::Sum),
            )],
        );
        let reader = task(
            1,
            4,
            vec![StoreArg::new(StoreId(0), Partition::Replicate, Privilege::Read)],
        );
        state.try_push(&reducer).unwrap();
        assert_eq!(
            state.admits(&reader),
            Err(FusionViolation::Reduction { store: StoreId(0) })
        );
    }

    #[test]
    fn read_then_reduction_is_rejected() {
        let mut state = ConstraintState::new();
        let reader = task(
            0,
            4,
            vec![StoreArg::new(StoreId(0), Partition::Replicate, Privilege::Read)],
        );
        let reducer = task(
            1,
            4,
            vec![StoreArg::new(
                StoreId(0),
                Partition::Replicate,
                Privilege::Reduce(ir::ReductionOp::Sum),
            )],
        );
        state.try_push(&reader).unwrap();
        assert_eq!(
            state.admits(&reducer),
            Err(FusionViolation::Reduction { store: StoreId(0) })
        );
    }

    #[test]
    fn multiple_reductions_to_same_store_are_admitted() {
        let mut state = ConstraintState::new();
        let reduce = |id| {
            task(
                id,
                4,
                vec![StoreArg::new(
                    StoreId(0),
                    Partition::Replicate,
                    Privilege::Reduce(ir::ReductionOp::Sum),
                )],
            )
        };
        state.try_push(&reduce(0)).unwrap();
        assert!(state.admits(&reduce(1)).is_ok());
    }

    #[test]
    fn single_point_launch_admits_aliasing_accesses() {
        // With one launch point every dependence is point-wise, so even the
        // stencil write-back is admitted (matches the paper's single-GPU CFD
        // observation).
        let mut state = ConstraintState::new();
        let reader = task(0, 1, vec![StoreArg::new(StoreId(0), shifted(), Privilege::Read)]);
        let writer = task(1, 1, vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]);
        state.try_push(&reader).unwrap();
        assert!(state.admits(&writer).is_ok());
    }

    #[test]
    fn failed_admit_leaves_state_unchanged() {
        let mut state = ConstraintState::new();
        let t1 = task(0, 4, vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]);
        let bad = task(1, 8, vec![StoreArg::new(StoreId(1), block(), Privilege::Write)]);
        state.try_push(&t1).unwrap();
        assert!(state.try_push(&bad).is_err());
        assert_eq!(state.len(), 1);
        assert_eq!(state.launch_domain(), Some(&Domain::linear(4)));
    }
}
