//! Dependence classification for fusion rejections.
//!
//! The fusion constraints (Figure 5) are a *decision* procedure: a window
//! either fuses or it does not. This module turns the rejections into a
//! *taxonomy*. When the kernel-level access summaries on both sides of a
//! dependence edge are exact affine forms (`a·i + b`, see `ir::summary`), the
//! edge can be classified precisely from the two partitions alone:
//!
//! - **point-wise** — every launch point depends only on itself; fusion is
//!   legal (such edges are admitted, so they never appear on a rejection),
//! - **carried with constant distance `d`** — launch point `q` depends on
//!   launch point `q - d`; a whole-tile shift between producer and consumer
//!   tilings. Fusion would be admitted by a halo exchange that
//!   pre-communicates the shifted tiles,
//! - **unknown** — the accesses may overlap arbitrarily across launch points
//!   (replication, aliasing projections, sub-tile shifts, or an inexact
//!   kernel summary).
//!
//! Classification is advisory: it feeds `ExecutionStats` counters and the
//! why-not explainer ([`crate::explain`]), never an admission decision.

use ir::{IndexTask, Partition, PartitionId, Projection};

/// Classification of a dependence edge between two accesses of the same
/// store by different tasks in a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepClass {
    /// Every launch point depends only on its own sub-store: the two
    /// partitions are identical and disjoint across points.
    Pointwise,
    /// Launch point `q` of the consumer depends on launch point `q - d` of
    /// the producer, one entry per launch-domain dimension: the two tilings
    /// share a tile shape and differ by a whole-tile offset.
    Carried {
        /// Dependence distance in launch points, per dimension.
        distance: Vec<i64>,
    },
    /// The dependence structure could not be resolved: aliasing partitions,
    /// sub-tile offset shifts, or inexact kernel access summaries.
    Unknown,
}

impl std::fmt::Display for DepClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepClass::Pointwise => write!(f, "point-wise"),
            DepClass::Carried { distance } => {
                if distance.len() == 1 {
                    write!(f, "carried (distance {})", distance[0])
                } else {
                    write!(f, "carried (distance {distance:?})")
                }
            }
            DepClass::Unknown => write!(f, "unknown"),
        }
    }
}

impl DepClass {
    /// Whether the edge is loop-carried with a known constant distance.
    pub fn is_carried(&self) -> bool {
        matches!(self, DepClass::Carried { .. })
    }
}

/// Classifies the dependence from an earlier access through `src` to a later
/// access through `dst` of the same store, assuming both kernels may touch
/// every element of their sub-store (i.e. exact whole-tile summaries).
///
/// Identical disjoint partitions are point-wise. Identity-projection tilings
/// with the same tile shape and a whole-tile offset delta are carried with
/// distance `(offset_src - offset_dst) / tile` per dimension — the consumer
/// point `q` overlaps the producer point `q - d`. Everything else (replication,
/// aliasing projections, differing tile shapes, sub-tile shifts) is unknown.
pub fn classify_partitions(src: PartitionId, dst: PartitionId) -> DepClass {
    if src == dst && !src.may_alias_across_points() {
        return DepClass::Pointwise;
    }
    match (src.get(), dst.get()) {
        (
            Partition::Tiling {
                tile: tile_src,
                offset: offset_src,
                proj: Projection::Identity,
            },
            Partition::Tiling {
                tile: tile_dst,
                offset: offset_dst,
                proj: Projection::Identity,
            },
        ) if tile_src == tile_dst => {
            let mut distance = Vec::with_capacity(tile_src.len());
            for ((&o_src, &o_dst), &tile) in offset_src.iter().zip(offset_dst).zip(tile_src) {
                let delta = o_src - o_dst;
                if tile == 0 || delta % tile as i64 != 0 {
                    // A sub-tile shift: the consumer straddles two producer
                    // tiles, so there is no single constant distance.
                    return DepClass::Unknown;
                }
                distance.push(delta / tile as i64);
            }
            if distance.iter().all(|&d| d == 0) {
                DepClass::Pointwise
            } else {
                DepClass::Carried { distance }
            }
        }
        _ => DepClass::Unknown,
    }
}

/// Classifies the dependence edge from argument `src_arg` of the earlier task
/// `src` to argument `dst_arg` of the later task `dst`.
///
/// `arg_is_exact` reports whether the kernel-level access summary for a given
/// (task, argument) is exact (no ⊤ component, see
/// `ir::BufferFootprint::is_exact`). Classification requires exactness on
/// *both* sides: an opaque kernel may address any element of its sub-store
/// through indirection, so no constant distance can be claimed for it.
pub fn classify_edge(
    src: &IndexTask,
    src_arg: usize,
    dst: &IndexTask,
    dst_arg: usize,
    arg_is_exact: &dyn Fn(&IndexTask, usize) -> bool,
) -> DepClass {
    if !arg_is_exact(src, src_arg) || !arg_is_exact(dst, dst_arg) {
        return DepClass::Unknown;
    }
    classify_partitions(src.args[src_arg].partition, dst.args[dst_arg].partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Domain, Privilege, StoreArg, StoreId, TaskId};

    fn tiling(tile: u64, offset: i64) -> PartitionId {
        PartitionId::intern(&Partition::tiling(
            vec![tile],
            vec![offset],
            Projection::Identity,
        ))
    }

    #[test]
    fn equal_disjoint_partitions_are_pointwise() {
        let p = tiling(4, 0);
        assert_eq!(classify_partitions(p, p), DepClass::Pointwise);
    }

    #[test]
    fn whole_tile_shift_is_carried() {
        // Producer writes tiles at offset 4, consumer reads at offset 0:
        // consumer point q overlaps producer point q - (-1)... distance is
        // (4 - 0) / 4 = +1: point q reads what point q - 1 wrote? No — point
        // q's consumer tile [4q, 4q+4) equals producer tile [4p+4, 4p+8) when
        // p = q - 1, i.e. distance +1.
        assert_eq!(
            classify_partitions(tiling(4, 4), tiling(4, 0)),
            DepClass::Carried { distance: vec![1] }
        );
        assert_eq!(
            classify_partitions(tiling(4, 0), tiling(4, 4)),
            DepClass::Carried { distance: vec![-1] }
        );
    }

    #[test]
    fn sub_tile_shift_is_unknown() {
        // The Figure 1 stencil: offsets 0/1/2 with tile 4 straddle tiles.
        assert_eq!(classify_partitions(tiling(4, 1), tiling(4, 0)), DepClass::Unknown);
    }

    #[test]
    fn aliasing_partitions_are_unknown() {
        let rep = PartitionId::intern(&Partition::Replicate);
        assert_eq!(classify_partitions(rep, rep), DepClass::Unknown);
        assert_eq!(classify_partitions(rep, tiling(4, 0)), DepClass::Unknown);
        let proj = PartitionId::intern(&Partition::tiling(
            vec![2],
            vec![0],
            Projection::SelectDims(vec![0]),
        ));
        assert_eq!(classify_partitions(proj, proj), DepClass::Unknown);
    }

    #[test]
    fn differing_tile_shapes_are_unknown() {
        assert_eq!(classify_partitions(tiling(4, 0), tiling(8, 0)), DepClass::Unknown);
    }

    #[test]
    fn multi_dim_carried_distance() {
        let a = PartitionId::intern(&Partition::tiling(
            vec![2, 2],
            vec![2, 0],
            Projection::Identity,
        ));
        let b = PartitionId::intern(&Partition::block(vec![2, 2]));
        assert_eq!(
            classify_partitions(a, b),
            DepClass::Carried {
                distance: vec![1, 0]
            }
        );
    }

    #[test]
    fn inexact_summary_forces_unknown() {
        let p = tiling(4, 4);
        let q = tiling(4, 0);
        let t = |id, part: PartitionId, priv_: Privilege| {
            IndexTask::new(
                TaskId(id),
                0,
                "t",
                Domain::linear(4),
                vec![StoreArg::new(StoreId(0), part.get().clone(), priv_)],
                vec![],
            )
        };
        let src = t(0, p, Privilege::Write);
        let dst = t(1, q, Privilege::Read);
        assert_eq!(
            classify_edge(&src, 0, &dst, 0, &|_, _| true),
            DepClass::Carried { distance: vec![1] }
        );
        assert_eq!(classify_edge(&src, 0, &dst, 0, &|_, _| false), DepClass::Unknown);
    }

    #[test]
    fn display_renders_taxonomy() {
        assert_eq!(DepClass::Pointwise.to_string(), "point-wise");
        assert_eq!(
            DepClass::Carried { distance: vec![2] }.to_string(),
            "carried (distance 2)"
        );
        assert_eq!(
            DepClass::Carried {
                distance: vec![1, 0]
            }
            .to_string(),
            "carried (distance [1, 0])"
        );
        assert_eq!(DepClass::Unknown.to_string(), "unknown");
    }
}
