//! Memoization of the fusion analysis over isomorphic task windows
//! (Section 5.2, Figure 7).
//!
//! Two task windows are isomorphic when they differ only in the identities of
//! the stores they touch — the pattern of accesses is identical. Diffuse
//! canonicalizes windows with a De-Bruijn-style renaming (each store is
//! replaced by the index of its first occurrence) and memoizes analysis and
//! code-generation results under that canonical key.

use std::collections::HashMap;
use std::hash::Hash;

use ir::{Domain, IndexTask, Partition, Privilege, StoreId};

/// Canonical form of one task: everything that affects the analysis, with
/// store identities replaced by first-occurrence indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonicalTask {
    kind: u32,
    launch_domain: Domain,
    args: Vec<(usize, Partition, Privilege)>,
    num_scalars: usize,
}

/// Canonical form of a task window, usable as a memoization key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalWindow {
    tasks: Vec<CanonicalTask>,
    /// Shapes of the canonically-numbered stores: buffer lengths feed the
    /// kernel pipeline, so windows over differently-shaped stores must not
    /// share compiled artifacts.
    shapes: Vec<Vec<u64>>,
}

impl CanonicalWindow {
    /// Canonicalizes a window of tasks. `store_shapes` must contain every
    /// store referenced by the window.
    ///
    /// # Panics
    ///
    /// Panics if a referenced store has no shape entry.
    pub fn new(tasks: &[IndexTask], store_shapes: &HashMap<StoreId, Vec<u64>>) -> Self {
        let mut numbering: HashMap<StoreId, usize> = HashMap::new();
        let mut shapes: Vec<Vec<u64>> = Vec::new();
        let mut canonical_tasks = Vec::with_capacity(tasks.len());
        for task in tasks {
            let mut args = Vec::with_capacity(task.args.len());
            for arg in &task.args {
                let next = numbering.len();
                let idx = *numbering.entry(arg.store).or_insert_with(|| {
                    shapes.push(
                        store_shapes
                            .get(&arg.store)
                            .unwrap_or_else(|| panic!("missing shape for {}", arg.store))
                            .clone(),
                    );
                    next
                });
                args.push((idx, arg.partition.clone(), arg.privilege));
            }
            canonical_tasks.push(CanonicalTask {
                kind: task.kind,
                launch_domain: task.launch_domain.clone(),
                args,
                num_scalars: task.scalars.len(),
            });
        }
        CanonicalWindow {
            tasks: canonical_tasks,
            shapes,
        }
    }

    /// Number of tasks in the canonical window.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of distinct stores referenced.
    pub fn num_stores(&self) -> usize {
        self.shapes.len()
    }
}

/// A memoization cache with hit/miss statistics.
///
/// Keyed by [`CanonicalWindow`] by default; the key type is generic so the
/// Diffuse layer can widen it — e.g. to `(CanonicalWindow, backend id)` so
/// that compiled kernel artifacts are never shared between execution
/// backends.
#[derive(Debug, Clone)]
pub struct MemoCache<V, K = CanonicalWindow>
where
    K: Eq + Hash,
{
    entries: HashMap<K, V>,
    hits: u64,
    misses: u64,
}

impl<V, K: Eq + Hash> Default for MemoCache<V, K> {
    fn default() -> Self {
        MemoCache {
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<V, K: Eq + Hash> MemoCache<V, K> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a key, recording a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.entries.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an analysis result under a key.
    pub fn insert(&mut self, key: K, value: V) {
        self.entries.insert(key, value);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Partition, StoreArg, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn shapes(ids: &[u64]) -> HashMap<StoreId, Vec<u64>> {
        ids.iter().map(|&i| (StoreId(i), vec![16])).collect()
    }

    fn rw_task(id: u64, read: u64, write: u64) -> IndexTask {
        IndexTask::new(
            TaskId(id),
            0,
            "t",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(read), block(), Privilege::Read),
                StoreArg::new(StoreId(write), block(), Privilege::Write),
            ],
            vec![],
        )
    }

    #[test]
    fn figure7_isomorphic_windows_share_a_key() {
        // Left stream: S1/S2/S3; middle stream: S5/S6/S7 with the same access
        // pattern; right stream differs (T3 reads and writes S7).
        let left = vec![rw_task(0, 1, 2), rw_task(1, 2, 1), rw_task(2, 1, 3), rw_task(3, 3, 1)];
        let middle = vec![rw_task(0, 5, 6), rw_task(1, 6, 5), rw_task(2, 5, 7), rw_task(3, 7, 5)];
        let right = vec![rw_task(0, 5, 6), rw_task(1, 6, 5), rw_task(2, 7, 7), rw_task(3, 7, 5)];
        let shapes = shapes(&[1, 2, 3, 5, 6, 7]);
        let l = CanonicalWindow::new(&left, &shapes);
        let m = CanonicalWindow::new(&middle, &shapes);
        let r = CanonicalWindow::new(&right, &shapes);
        assert_eq!(l, m);
        assert_ne!(l, r);
        assert_eq!(l.len(), 4);
        assert_eq!(l.num_stores(), 3);
    }

    #[test]
    fn shapes_affect_the_key() {
        let tasks = vec![rw_task(0, 0, 1)];
        let a = CanonicalWindow::new(&tasks, &shapes(&[0, 1]));
        let mut other = shapes(&[0, 1]);
        other.insert(StoreId(1), vec![64]);
        let b = CanonicalWindow::new(&tasks, &other);
        assert_ne!(a, b);
    }

    #[test]
    fn privileges_and_partitions_affect_the_key() {
        let a = CanonicalWindow::new(&[rw_task(0, 0, 1)], &shapes(&[0, 1]));
        let mut t = rw_task(0, 0, 1);
        t.args[0].privilege = Privilege::ReadWrite;
        let b = CanonicalWindow::new(&[t], &shapes(&[0, 1]));
        assert_ne!(a, b);
        let mut t = rw_task(0, 0, 1);
        t.args[1].partition = Partition::Replicate;
        let c = CanonicalWindow::new(&[t], &shapes(&[0, 1]));
        assert_ne!(a, c);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let shapes = shapes(&[1, 2, 5, 6]);
        let w1 = CanonicalWindow::new(&[rw_task(0, 1, 2)], &shapes);
        let w2 = CanonicalWindow::new(&[rw_task(0, 5, 6)], &shapes);
        let mut cache: MemoCache<usize> = MemoCache::new();
        assert!(cache.get(&w1).is_none());
        cache.insert(w1.clone(), 42);
        assert_eq!(cache.get(&w2), Some(&42), "isomorphic window hits the cache");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    #[should_panic]
    fn missing_shape_panics() {
        let _ = CanonicalWindow::new(&[rw_task(0, 0, 1)], &HashMap::new());
    }

    #[test]
    fn widened_keys_separate_backends() {
        let shapes = shapes(&[1, 2]);
        let w = CanonicalWindow::new(&[rw_task(0, 1, 2)], &shapes);
        let mut cache: MemoCache<usize, (CanonicalWindow, &'static str)> = MemoCache::new();
        cache.insert((w.clone(), "interp"), 1);
        assert_eq!(cache.get(&(w.clone(), "interp")), Some(&1));
        assert_eq!(
            cache.get(&(w, "closure")),
            None,
            "artifacts must not be shared across backends"
        );
    }
}
