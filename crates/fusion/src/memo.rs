//! Memoization of the fusion analysis over isomorphic task windows
//! (Section 5.2, Figure 7).
//!
//! Two task windows are isomorphic when they differ only in the identities of
//! the stores they touch — the pattern of accesses is identical. Diffuse
//! canonicalizes windows with a De-Bruijn-style renaming (each store is
//! replaced by the index of its first occurrence) and memoizes analysis and
//! code-generation results under that canonical key.
//!
//! # The fingerprint-first fast path
//!
//! Building a [`CanonicalWindow`] allocates (a vector of canonical tasks plus
//! their argument lists), which used to make a memo *hit* as expensive as a
//! miss. The cache is therefore two-level:
//!
//! 1. **Probe** by the window's 64-bit rolling fingerprint
//!    ([`ir::TaskWindow::fingerprint`], maintained incrementally as tasks are
//!    pushed — O(1) at probe time).
//! 2. **Verify** each fingerprint candidate by walking the window against the
//!    stored canonical key using a reusable scratch numbering — no
//!    allocation, constant work per task argument, and exact: the probe is
//!    *behaviorally identical* to a full-key lookup even under fingerprint
//!    collisions (candidates chain).
//!
//! A full `CanonicalWindow` is only constructed on a miss, to insert. The
//! all-hit steady state performs **zero heap allocation** for key
//! construction (verified by the `memo_equivalence` property test).
//!
//! The cache is bounded: entries beyond the capacity are evicted LRU, so a
//! long-running service does not accumulate a compiled artifact for every
//! window shape it has ever seen. Probing an entry marks it most-recently
//! used, so the entry for the window currently being processed is never the
//! eviction victim.

use std::collections::HashMap;

use ir::{window_fingerprint, Domain, IndexTask, PartitionId, Privilege, ShapeId, StoreId, TaskWindow};

/// Canonical form of one task: everything that affects the analysis, with
/// store identities replaced by first-occurrence indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonicalTask {
    kind: u32,
    launch_domain: Domain,
    args: Vec<(u32, PartitionId, Privilege)>,
    num_scalars: usize,
}

/// Canonical form of a task window, usable as a memoization key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalWindow {
    tasks: Vec<CanonicalTask>,
    /// Shapes of the canonically-numbered stores: buffer lengths feed the
    /// kernel pipeline, so windows over differently-shaped stores must not
    /// share compiled artifacts.
    shapes: Vec<ShapeId>,
    /// Structural fingerprint of the canonicalized stream — computed by the
    /// same folding code as [`ir::TaskWindow`]'s rolling fingerprint, so the
    /// two can never diverge.
    fingerprint: u64,
}

impl CanonicalWindow {
    /// Canonicalizes a window of tasks. Store shapes are read from the
    /// arguments themselves (stamped by the Diffuse context at submit time).
    ///
    /// # Panics
    ///
    /// Panics if a referenced store's shape was never stamped.
    pub fn new(tasks: &[IndexTask]) -> Self {
        let mut numbering: HashMap<StoreId, u32> = HashMap::new();
        let mut shapes: Vec<ShapeId> = Vec::new();
        let mut canonical_tasks = Vec::with_capacity(tasks.len());
        for task in tasks {
            let mut args = Vec::with_capacity(task.args.len());
            for arg in &task.args {
                let idx = match numbering.get(&arg.store) {
                    Some(&i) => i,
                    None => {
                        assert!(
                            !arg.shape.is_unknown(),
                            "missing shape for {}",
                            arg.store
                        );
                        let i = shapes.len() as u32;
                        numbering.insert(arg.store, i);
                        shapes.push(arg.shape);
                        i
                    }
                };
                args.push((idx, arg.partition, arg.privilege));
            }
            canonical_tasks.push(CanonicalTask {
                kind: task.kind,
                launch_domain: task.launch_domain.clone(),
                args,
                num_scalars: task.scalars.len(),
            });
        }
        CanonicalWindow {
            tasks: canonical_tasks,
            shapes,
            fingerprint: window_fingerprint(tasks),
        }
    }

    /// Number of tasks in the canonical window.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of distinct stores referenced.
    pub fn num_stores(&self) -> usize {
        self.shapes.len()
    }

    /// The structural fingerprint under which the cache indexes this key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this canonical key describes exactly `tasks` — the collision
    /// verification of the fingerprint probe. Walks the tasks with the
    /// caller-provided scratch numbering (cleared here; capacity is reused
    /// across probes, so steady-state verification allocates nothing).
    fn matches(&self, tasks: &[IndexTask], scratch: &mut HashMap<StoreId, u32>) -> bool {
        if self.tasks.len() != tasks.len() {
            return false;
        }
        scratch.clear();
        let mut next: u32 = 0;
        for (ct, t) in self.tasks.iter().zip(tasks) {
            if ct.kind != t.kind
                || ct.num_scalars != t.scalars.len()
                || ct.args.len() != t.args.len()
                || ct.launch_domain != t.launch_domain
            {
                return false;
            }
            for (&(ci, cpart, cpriv), arg) in ct.args.iter().zip(&t.args) {
                let idx = match scratch.get(&arg.store) {
                    Some(&i) => i,
                    None => {
                        let i = next;
                        // First occurrence: the canonical shape list must
                        // agree with the argument's stamped shape.
                        if self.shapes.get(i as usize) != Some(&arg.shape) {
                            return false;
                        }
                        scratch.insert(arg.store, i);
                        next += 1;
                        i
                    }
                };
                if ci != idx || cpart != arg.partition || cpriv != arg.privilege {
                    return false;
                }
            }
        }
        true
    }
}

/// One resident cache entry.
#[derive(Debug, Clone)]
struct Slot<V> {
    key: CanonicalWindow,
    value: V,
    last_used: u64,
}

/// A bounded, fingerprint-indexed memoization cache with LRU eviction and
/// hit/miss/eviction statistics.
///
/// Each Diffuse context owns one cache, created for its configured kernel
/// backend, so compiled artifacts are never shared between backends (the
/// `(canonical window, backend)` keying of `docs/BACKENDS.md` holds by
/// construction).
#[derive(Debug, Clone)]
pub struct MemoCache<V> {
    /// First level: fingerprint → candidate slots (chains absorb collisions).
    index: HashMap<u64, Vec<u32>>,
    slots: Vec<Option<Slot<V>>>,
    free: Vec<u32>,
    live: usize,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Reusable store numbering for collision verification.
    scratch: HashMap<StoreId, u32>,
}

impl<V> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MemoCache<V> {
    /// Creates an unbounded cache.
    pub fn new() -> Self {
        Self::with_capacity_limit(usize::MAX)
    }

    /// Creates a cache bounded to at most `capacity` entries (LRU eviction).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity_limit(capacity: usize) -> Self {
        assert!(capacity > 0, "memo cache capacity must be at least 1");
        MemoCache {
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            scratch: HashMap::new(),
        }
    }

    /// The fingerprint-first fast path: looks up the entry for the buffered
    /// window, recording a hit or miss. Uses the window's incrementally
    /// maintained fingerprint and verifies candidates in place — **no heap
    /// allocation and no `CanonicalWindow` construction on either outcome**
    /// (the caller builds the key only when inserting after a miss).
    pub fn probe(&mut self, window: &TaskWindow) -> Option<&V> {
        self.probe_tasks(window.fingerprint(), window.tasks())
    }

    /// [`MemoCache::probe`] over an explicit (fingerprint, tasks) pair, for
    /// callers that manage their own rolling fingerprints.
    pub fn probe_tasks(&mut self, fingerprint: u64, tasks: &[IndexTask]) -> Option<&V> {
        self.tick += 1;
        let mut found: Option<u32> = None;
        if let Some(candidates) = self.index.get(&fingerprint) {
            for &si in candidates {
                let slot = self.slots[si as usize]
                    .as_ref()
                    .expect("indexed slot is live");
                if slot.key.matches(tasks, &mut self.scratch) {
                    found = Some(si);
                    break;
                }
            }
        }
        match found {
            Some(si) => {
                self.hits += 1;
                let slot = self.slots[si as usize].as_mut().expect("live");
                slot.last_used = self.tick;
                Some(&slot.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Full-key lookup, recording a hit or miss. Equivalent to
    /// [`MemoCache::probe`] with a pre-built key; used by benchmarks and as
    /// the reference path in equivalence tests.
    pub fn get(&mut self, key: &CanonicalWindow) -> Option<&V> {
        self.tick += 1;
        let mut found: Option<u32> = None;
        if let Some(candidates) = self.index.get(&key.fingerprint) {
            for &si in candidates {
                let slot = self.slots[si as usize].as_ref().expect("live");
                if slot.key == *key {
                    found = Some(si);
                    break;
                }
            }
        }
        match found {
            Some(si) => {
                self.hits += 1;
                let slot = self.slots[si as usize].as_mut().expect("live");
                slot.last_used = self.tick;
                Some(&slot.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an analysis result under a canonical key. If the key is
    /// already resident its value is replaced in place (the layout-drift
    /// re-memoization path); otherwise the least-recently-used entry is
    /// evicted once the cache is at capacity. The inserted (or refreshed)
    /// entry becomes most-recently used, so it is never the next victim.
    pub fn insert(&mut self, key: CanonicalWindow, value: V) {
        self.tick += 1;
        if let Some(candidates) = self.index.get(&key.fingerprint) {
            for &si in candidates {
                let slot = self.slots[si as usize].as_mut().expect("live");
                if slot.key == key {
                    slot.value = value;
                    slot.last_used = self.tick;
                    return;
                }
            }
        }
        if self.live >= self.capacity {
            self.evict_lru();
        }
        let slot = Slot {
            value,
            last_used: self.tick,
            key,
        };
        let fingerprint = slot.key.fingerprint;
        let si = match self.free.pop() {
            Some(si) => {
                self.slots[si as usize] = Some(slot);
                si
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.entry(fingerprint).or_default().push(si);
        self.live += 1;
    }

    /// Evicts the least-recently-used entry. The O(capacity) scan is
    /// deliberate: eviction only runs on a miss that is about to pay for
    /// kernel composition and compilation (milliseconds), so a linear pass
    /// over a few thousand slots is noise there, and the hit path carries
    /// no list-maintenance overhead for it.
    fn evict_lru(&mut self) {
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s.last_used)))
            .min_by_key(|&(_, used)| used)
            .map(|(i, _)| i);
        let Some(vi) = victim else { return };
        let slot = self.slots[vi].take().expect("victim is live");
        if let Some(chain) = self.index.get_mut(&slot.key.fingerprint) {
            chain.retain(|&si| si != vi as u32);
            if chain.is_empty() {
                self.index.remove(&slot.key.fingerprint);
            }
        }
        self.free.push(vi as u32);
        self.live -= 1;
        self.evictions += 1;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted to stay within the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Partition, StoreArg, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn rw_task(id: u64, read: u64, write: u64) -> IndexTask {
        rw_task_shaped(id, read, write, 16)
    }

    fn rw_task_shaped(id: u64, read: u64, write: u64, len: u64) -> IndexTask {
        IndexTask::new(
            TaskId(id),
            0,
            "t",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(read), block(), Privilege::Read).with_shape(vec![16u64]),
                StoreArg::new(StoreId(write), block(), Privilege::Write).with_shape(vec![len]),
            ],
            vec![],
        )
    }

    fn window_of(tasks: &[IndexTask]) -> TaskWindow {
        tasks.iter().cloned().collect()
    }

    #[test]
    fn figure7_isomorphic_windows_share_a_key() {
        // Left stream: S1/S2/S3; middle stream: S5/S6/S7 with the same access
        // pattern; right stream differs (T3 reads and writes S7).
        let left = vec![rw_task(0, 1, 2), rw_task(1, 2, 1), rw_task(2, 1, 3), rw_task(3, 3, 1)];
        let middle = vec![rw_task(0, 5, 6), rw_task(1, 6, 5), rw_task(2, 5, 7), rw_task(3, 7, 5)];
        let right = vec![rw_task(0, 5, 6), rw_task(1, 6, 5), rw_task(2, 7, 7), rw_task(3, 7, 5)];
        let l = CanonicalWindow::new(&left);
        let m = CanonicalWindow::new(&middle);
        let r = CanonicalWindow::new(&right);
        assert_eq!(l, m);
        assert_eq!(l.fingerprint(), m.fingerprint());
        assert_ne!(l, r);
        assert_eq!(l.len(), 4);
        assert_eq!(l.num_stores(), 3);
    }

    #[test]
    fn shapes_affect_the_key() {
        let a = CanonicalWindow::new(&[rw_task_shaped(0, 0, 1, 16)]);
        let b = CanonicalWindow::new(&[rw_task_shaped(0, 0, 1, 64)]);
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn privileges_and_partitions_affect_the_key() {
        let a = CanonicalWindow::new(&[rw_task(0, 0, 1)]);
        let mut t = rw_task(0, 0, 1);
        t.args[0].privilege = Privilege::ReadWrite;
        let b = CanonicalWindow::new(&[t]);
        assert_ne!(a, b);
        let mut t = rw_task(0, 0, 1);
        t.args[1].partition = Partition::Replicate.into();
        let c = CanonicalWindow::new(&[t]);
        assert_ne!(a, c);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let w1 = [rw_task(0, 1, 2)];
        let w2 = [rw_task(0, 5, 6)];
        let mut cache: MemoCache<usize> = MemoCache::new();
        assert!(cache.probe(&window_of(&w1)).is_none());
        cache.insert(CanonicalWindow::new(&w1), 42);
        assert_eq!(
            cache.probe(&window_of(&w2)),
            Some(&42),
            "isomorphic window hits the cache"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        // The full-key reference path agrees.
        assert_eq!(cache.get(&CanonicalWindow::new(&w2)), Some(&42));
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    #[should_panic]
    fn missing_shape_panics() {
        let t = IndexTask::new(
            TaskId(0),
            0,
            "t",
            Domain::linear(4),
            vec![StoreArg::new(StoreId(0), block(), Privilege::Read)],
            vec![],
        );
        let _ = CanonicalWindow::new(&[t]);
    }

    #[test]
    fn near_isomorphic_windows_do_not_cross_hit() {
        // Same stores and shapes, but the second window breaks the access
        // pattern at the last argument.
        let a = [rw_task(0, 1, 2), rw_task(1, 2, 3)];
        let b = [rw_task(0, 1, 2), rw_task(1, 2, 2)];
        let mut cache: MemoCache<u32> = MemoCache::new();
        cache.insert(CanonicalWindow::new(&a), 7);
        assert_eq!(cache.probe(&window_of(&a)), Some(&7));
        assert_eq!(cache.probe(&window_of(&b)), None);
    }

    #[test]
    fn insert_replaces_in_place() {
        let w = [rw_task(0, 1, 2)];
        let mut cache: MemoCache<u32> = MemoCache::with_capacity_limit(1);
        cache.insert(CanonicalWindow::new(&w), 1);
        cache.insert(CanonicalWindow::new(&w), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0, "same-key insert must not evict");
        assert_eq!(cache.probe(&window_of(&w)), Some(&2));
    }

    #[test]
    fn lru_eviction_spares_the_current_window() {
        let wa = [rw_task(0, 1, 2)];
        let wb = [rw_task(0, 1, 2), rw_task(1, 2, 3)];
        let wc = [rw_task(0, 1, 2), rw_task(1, 2, 3), rw_task(2, 3, 1)];
        let mut cache: MemoCache<u32> = MemoCache::with_capacity_limit(2);
        cache.insert(CanonicalWindow::new(&wa), 1);
        cache.insert(CanonicalWindow::new(&wb), 2);
        // Touch A: it becomes most-recently used (the "currently processing"
        // window), so inserting C evicts B, never A.
        assert_eq!(cache.probe(&window_of(&wa)), Some(&1));
        cache.insert(CanonicalWindow::new(&wc), 3);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.probe(&window_of(&wa)), Some(&1), "MRU entry survives");
        assert_eq!(cache.probe(&window_of(&wb)), None, "LRU entry was evicted");
        assert_eq!(cache.probe(&window_of(&wc)), Some(&3));
    }

    #[test]
    fn evicted_slots_are_reused() {
        let mut cache: MemoCache<u32> = MemoCache::with_capacity_limit(2);
        for i in 1..=6u64 {
            // Chains of different lengths are structurally distinct windows.
            let chain: Vec<IndexTask> = (0..i).map(|j| rw_task(j, j, j + 1)).collect();
            cache.insert(CanonicalWindow::new(&chain), i as u32);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 4);
    }
}
