//! Translation validation of window transforms.
//!
//! Every transformation the Diffuse layer applies to a task window —
//! vertical fusion of a prefix, horizontal reordering, memo-skeleton replay
//! — is re-validated here *after planning*, against the dependence semantics
//! of the original program order, independently of the analysis that
//! produced the plan (see `docs/VERIFY.md`):
//!
//! * [`verify_fused_prefix`] — re-derives the cross-task dependence edges of
//!   a fusible prefix directly from [`ir::StoreArg`] privileges and
//!   partition identities, and checks that every edge is point-wise
//!   (Definition 3): same partition on both endpoints and no aliasing
//!   across launch points. This independently re-proves what
//!   [`crate::ConstraintState`] admitted incrementally.
//! * [`verify_reorder`] — checks that a permuted window is a true
//!   permutation of the original and that every pair of tasks with a
//!   memory conflict (a shared store that either side writes or reduces)
//!   keeps its program order. This validates the horizontal pass's
//!   soundness argument edge by edge.
//! * [`verify_horizontal_plan`] — checks that every multi-member horizontal
//!   group is pairwise write-disjoint with a group-wide launch domain
//!   ([`SegmentFootprint::admits`] re-run member against member), and that
//!   the plan's groups cover every segment exactly once.
//! * [`verify_skeleton`] — independently re-derives the canonical merged
//!   argument list of a prefix (first-occurrence store numbering and
//!   (store, partition) deduplication with privilege promotion, mirroring
//!   [`crate::FusedTask::build`]) and compares it element by element to a
//!   memo-replayed launch skeleton, catching fingerprint collisions by
//!   construction.
//!
//! All checkers return the number of individual checks performed
//! (accumulated into `ExecutionStats::verification_checks`) or a structured
//! [`VerifyError`] naming the violated invariant and the offending tasks.

use std::collections::HashMap;
use std::ops::Range;

use ir::{Domain, IndexTask, PartitionId, Privilege, StoreId, TaskId};

use crate::horizontal::{HorizontalPlan, HorizontalViolation, SegmentFootprint};

/// The classification of a re-derived dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read after write.
    True,
    /// Write after read.
    Anti,
    /// Write after write.
    Output,
    /// A reduction on one side and any access on the other.
    Reduction,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepKind::True => write!(f, "true (RAW)"),
            DepKind::Anti => write!(f, "anti (WAR)"),
            DepKind::Output => write!(f, "output (WAW)"),
            DepKind::Reduction => write!(f, "reduction"),
        }
    }
}

/// A violated window-transform invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A task in a fused prefix does not share the prefix's launch domain.
    LaunchDomainMismatch {
        /// The offending task.
        task: TaskId,
        /// Launch domain of the prefix.
        expected: Domain,
        /// Launch domain of the offending task.
        found: Domain,
    },
    /// A dependence between two tasks of a fused prefix is not point-wise:
    /// fusing them would require cross-processor communication mid-launch.
    NonPointwiseDependence {
        /// The dependence class.
        kind: DepKind,
        /// The store carrying the dependence.
        store: StoreId,
        /// The earlier task.
        earlier: TaskId,
        /// The later task.
        later: TaskId,
    },
    /// A permuted window flipped two tasks with a memory conflict.
    DependenceOrderViolation {
        /// The store on which the pair conflicts.
        store: StoreId,
        /// The task that came first in program order.
        earlier: TaskId,
        /// The task that came second in program order.
        later: TaskId,
    },
    /// The permuted window is not a permutation of the original (a task is
    /// missing, duplicated, or foreign).
    NotAPermutation {
        /// The first task at which the multisets diverge.
        task: TaskId,
    },
    /// A horizontal plan does not cover every segment exactly once.
    BadGroupCover {
        /// The first segment index covered zero or multiple times.
        segment: usize,
    },
    /// Two members of one horizontal group conflict.
    GroupConflict {
        /// Index of the group in launch order.
        group: usize,
        /// The violation between the two members.
        violation: HorizontalViolation,
    },
    /// A memo-replayed skeleton's merged argument count differs from the
    /// probe window's.
    SkeletonArgCount {
        /// Merged arguments re-derived from the probe window.
        expected: usize,
        /// Merged arguments in the cached skeleton.
        found: usize,
    },
    /// A memo-replayed skeleton argument differs structurally from the probe
    /// window's (a fingerprint collision the exact-match probe should have
    /// caught).
    SkeletonArgMismatch {
        /// Index of the first diverging merged argument.
        index: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LaunchDomainMismatch {
                task,
                expected,
                found,
            } => write!(
                f,
                "{task}: launch domain {found} differs from prefix domain {expected}"
            ),
            VerifyError::NonPointwiseDependence {
                kind,
                store,
                earlier,
                later,
            } => write!(
                f,
                "non-point-wise {kind} dependence on {store} between {earlier} and {later}"
            ),
            VerifyError::DependenceOrderViolation {
                store,
                earlier,
                later,
            } => write!(
                f,
                "reorder flips {earlier} and {later}, which conflict on {store}"
            ),
            VerifyError::NotAPermutation { task } => {
                write!(f, "permuted window diverges from the original at {task}")
            }
            VerifyError::BadGroupCover { segment } => {
                write!(f, "horizontal plan covers segment {segment} zero or multiple times")
            }
            VerifyError::GroupConflict { group, violation } => {
                write!(f, "horizontal group {group}: {violation}")
            }
            VerifyError::SkeletonArgCount { expected, found } => write!(
                f,
                "cached skeleton has {found} merged args but the probe window derives {expected}"
            ),
            VerifyError::SkeletonArgMismatch { index } => write!(
                f,
                "cached skeleton diverges from the probe window at merged arg {index}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Re-derives the cross-task dependence edges of a fusible prefix and checks
/// that every one is point-wise (Definition 3): both endpoints access the
/// store through the *same* partition and that partition never aliases
/// across launch points. Launch domains must agree task-wide; single-point
/// launches are exempt from the aliasing checks (every dependence is
/// trivially point-wise — the same exception [`crate::ConstraintState`]
/// applies).
///
/// This is translation validation of the vertical pass: it proves the same
/// property the incremental constraint dataflow admitted, from scratch, over
/// the final prefix.
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// The first non-point-wise edge or domain mismatch found.
pub fn verify_fused_prefix(prefix: &[IndexTask]) -> Result<usize, VerifyError> {
    let Some(first) = prefix.first() else {
        return Ok(0);
    };
    let mut checks = 0usize;
    let domain = &first.launch_domain;
    for t in &prefix[1..] {
        if &t.launch_domain != domain {
            return Err(VerifyError::LaunchDomainMismatch {
                task: t.id,
                expected: domain.clone(),
                found: t.launch_domain.clone(),
            });
        }
        checks += 1;
    }
    // With one launch point every dependence is point-wise by definition.
    if domain.size() <= 1 {
        return Ok(checks);
    }
    for (i, earlier) in prefix.iter().enumerate() {
        for later in &prefix[i + 1..] {
            for ea in &earlier.args {
                for la in &later.args {
                    if ea.store != la.store {
                        continue;
                    }
                    checks += 1;
                    // Reductions are mutually exclusive with reads and
                    // writes in either direction (a partially reduced value
                    // must never become visible inside the launch).
                    if (ea.privilege.reduces() && (la.privilege.reads() || la.privilege.writes()))
                        || (la.privilege.reduces()
                            && (ea.privilege.reads() || ea.privilege.writes()))
                    {
                        return Err(VerifyError::NonPointwiseDependence {
                            kind: DepKind::Reduction,
                            store: ea.store,
                            earlier: earlier.id,
                            later: later.id,
                        });
                    }
                    // RAW / WAW: a later read or write of a store the
                    // earlier task writes must go through the identical,
                    // non-aliasing partition.
                    if ea.privilege.writes()
                        && (la.privilege.reads() || la.privilege.writes())
                        && (ea.partition != la.partition
                            || ea.partition.may_alias_across_points())
                    {
                        return Err(VerifyError::NonPointwiseDependence {
                            kind: if la.privilege.writes() {
                                DepKind::Output
                            } else {
                                DepKind::True
                            },
                            store: ea.store,
                            earlier: earlier.id,
                            later: later.id,
                        });
                    }
                    // WAR: a later write of a store the earlier task reads,
                    // likewise.
                    if ea.privilege.reads()
                        && la.privilege.writes()
                        && (ea.partition != la.partition
                            || la.partition.may_alias_across_points())
                    {
                        return Err(VerifyError::NonPointwiseDependence {
                            kind: DepKind::Anti,
                            store: ea.store,
                            earlier: earlier.id,
                            later: later.id,
                        });
                    }
                }
            }
        }
    }
    Ok(checks)
}

/// Store-level effect summary of one task, for the reorder check.
#[derive(Debug, Clone, Copy, Default)]
struct Effect {
    reads: bool,
    writes: bool,
    reduces: bool,
}

fn task_effects(task: &IndexTask) -> HashMap<StoreId, Effect> {
    let mut effects: HashMap<StoreId, Effect> = HashMap::new();
    for arg in &task.args {
        let e = effects.entry(arg.store).or_default();
        e.reads |= arg.privilege.reads();
        e.writes |= arg.privilege.writes();
        e.reduces |= arg.privilege.reduces();
    }
    effects
}

/// The first store on which reordering two tasks would be observable: shared
/// with a write or reduce on either side (read-read sharing commutes;
/// reduce-reduce does *not* for ordering purposes — float folds are
/// order-sensitive).
fn task_conflict(a: &HashMap<StoreId, Effect>, b: &HashMap<StoreId, Effect>) -> Option<StoreId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut hit: Option<StoreId> = None;
    for (&store, &ea) in small {
        let Some(&eb) = large.get(&store) else {
            continue;
        };
        let conflicting = ea.writes || ea.reduces || eb.writes || eb.reduces;
        if conflicting && hit.map(|h| store < h).unwrap_or(true) {
            hit = Some(store);
        }
    }
    hit
}

/// Checks that `permuted` is a permutation of `original` that preserves the
/// program order of every pair of tasks with a memory conflict (a shared
/// store that either side writes or reduces to, through any view). This is
/// the edge-by-edge validation of the horizontal pass's soundness argument:
/// only independent pairs may flip.
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// [`VerifyError::NotAPermutation`] if the task multisets diverge, or the
/// first conflicting pair whose order flipped.
pub fn verify_reorder(
    original: &[IndexTask],
    permuted: &[IndexTask],
) -> Result<usize, VerifyError> {
    let mut checks = 0usize;
    let mut position: HashMap<TaskId, usize> = HashMap::with_capacity(permuted.len());
    for (pos, t) in permuted.iter().enumerate() {
        if position.insert(t.id, pos).is_some() {
            return Err(VerifyError::NotAPermutation { task: t.id });
        }
    }
    if permuted.len() != original.len() {
        let task = original
            .iter()
            .find(|t| !position.contains_key(&t.id))
            .map(|t| t.id)
            .unwrap_or_else(|| permuted[original.len()].id);
        return Err(VerifyError::NotAPermutation { task });
    }
    let positions: Vec<usize> = original
        .iter()
        .map(|t| {
            position
                .get(&t.id)
                .copied()
                .ok_or(VerifyError::NotAPermutation { task: t.id })
        })
        .collect::<Result<_, _>>()?;
    checks += original.len();

    let effects: Vec<HashMap<StoreId, Effect>> = original.iter().map(task_effects).collect();
    for i in 0..original.len() {
        for j in i + 1..original.len() {
            checks += 1;
            if positions[i] > positions[j] {
                if let Some(store) = task_conflict(&effects[i], &effects[j]) {
                    return Err(VerifyError::DependenceOrderViolation {
                        store,
                        earlier: original[i].id,
                        later: original[j].id,
                    });
                }
            }
        }
    }
    Ok(checks)
}

/// Checks a horizontal plan against the window it was computed over: the
/// groups cover every segment exactly once, and every pair of members in a
/// multi-member group is mutually admissible ([`SegmentFootprint::admits`]
/// re-run in both directions) — equal launch domains and store footprints
/// disjoint up to shared read-only inputs.
///
/// `segments` is the vertical segmentation the plan was computed from (as
/// passed to [`crate::plan_horizontal`]).
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// The first uncovered/duplicated segment or conflicting member pair.
///
/// # Panics
///
/// Panics if the segment lengths do not sum to `tasks.len()` (the same
/// contract as [`crate::plan_horizontal`]).
pub fn verify_horizontal_plan(
    tasks: &[IndexTask],
    segments: &[usize],
    plan: &HorizontalPlan,
) -> Result<usize, VerifyError> {
    assert_eq!(
        segments.iter().sum::<usize>(),
        tasks.len(),
        "segment lengths must cover the window"
    );
    let mut checks = 0usize;
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(segments.len());
    let mut start = 0usize;
    for &len in segments {
        ranges.push(start..start + len);
        start += len;
    }
    // Exact cover: every segment appears in exactly one group.
    let mut seen = vec![false; segments.len()];
    for group in plan.groups() {
        for &seg in &group.members {
            if seg >= seen.len() || seen[seg] {
                return Err(VerifyError::BadGroupCover {
                    segment: seg.min(seen.len()),
                });
            }
            seen[seg] = true;
            checks += 1;
        }
    }
    if let Some(segment) = seen.iter().position(|&s| !s) {
        return Err(VerifyError::BadGroupCover { segment });
    }
    // Pairwise member admissibility within each multi-member group, checked
    // in both directions (admits is not symmetric for the RAW/WAR classes).
    for (gi, group) in plan.groups().iter().enumerate() {
        if group.members.len() < 2 {
            continue;
        }
        let footprints: Vec<SegmentFootprint> = group
            .members
            .iter()
            .map(|&seg| SegmentFootprint::of_tasks(&tasks[ranges[seg].clone()]))
            .collect();
        for (i, a) in footprints.iter().enumerate() {
            for b in &footprints[i + 1..] {
                a.admits(b)
                    .and_then(|()| b.admits(a))
                    .map_err(|violation| VerifyError::GroupConflict {
                        group: gi,
                        violation,
                    })?;
                checks += 2;
            }
        }
    }
    Ok(checks)
}

/// Independently re-derives the canonical merged argument list of a prefix —
/// first-occurrence store numbering over the prefix's arguments, one merged
/// entry per distinct (store, partition) pair, privileges promoted across
/// constituents (mirroring [`crate::FusedTask::build`] and the skeleton
/// construction in the Diffuse core) — and compares it element by element to
/// a memo-replayed skeleton's argument list. A fingerprint collision that
/// slipped past the exact-match probe is caught here by construction: the
/// colliding window derives a different canonical argument list.
///
/// Returns the number of individual checks performed.
///
/// # Errors
///
/// The first structural divergence between the re-derivation and the cached
/// skeleton.
pub fn verify_skeleton(
    prefix: &[IndexTask],
    skeleton_args: &[(u32, PartitionId, Privilege)],
) -> Result<usize, VerifyError> {
    let mut canon: HashMap<StoreId, u32> = HashMap::new();
    let mut merged: Vec<(u32, PartitionId, Privilege)> = Vec::new();
    for task in prefix {
        for arg in &task.args {
            let next = canon.len() as u32;
            let ci = *canon.entry(arg.store).or_insert(next);
            match merged.iter_mut().find(|(c, p, _)| *c == ci && *p == arg.partition) {
                Some(slot) => slot.2 = slot.2.promote(arg.privilege),
                None => merged.push((ci, arg.partition, arg.privilege)),
            }
        }
    }
    if merged.len() != skeleton_args.len() {
        return Err(VerifyError::SkeletonArgCount {
            expected: merged.len(),
            found: skeleton_args.len(),
        });
    }
    for (index, (ours, theirs)) in merged.iter().zip(skeleton_args).enumerate() {
        if ours != theirs {
            return Err(VerifyError::SkeletonArgMismatch { index });
        }
    }
    Ok(merged.len() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::FusedTask;
    use crate::prefix::fusible_segments;
    use crate::{find_fusible_prefix, plan_horizontal};
    use ir::{Partition, Privilege, Projection, ReductionOp, StoreArg};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn shifted() -> Partition {
        Partition::tiling(vec![4], vec![1], Projection::Identity)
    }

    fn chain_task(id: u64, points: u64, input: u64, output: u64) -> IndexTask {
        IndexTask::new(
            TaskId(id),
            0,
            format!("t{id}"),
            Domain::linear(points),
            vec![
                StoreArg::new(StoreId(input), block(), Privilege::Read),
                StoreArg::new(StoreId(output), block(), Privilege::Write),
            ],
            vec![],
        )
    }

    #[test]
    fn admitted_prefixes_reverify() {
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 4, 1, 2)];
        assert_eq!(find_fusible_prefix(&tasks), 2);
        assert!(verify_fused_prefix(&tasks).unwrap() > 0);
    }

    #[test]
    fn aliasing_raw_prefix_is_rejected() {
        // Write through block, read back through a shifted view: the vertical
        // pass would never admit this prefix; the verifier independently
        // rejects it.
        let writer = chain_task(0, 4, 0, 1);
        let reader = IndexTask::new(
            TaskId(1),
            0,
            "r",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(1), shifted(), Privilege::Read),
                StoreArg::new(StoreId(2), block(), Privilege::Write),
            ],
            vec![],
        );
        assert_eq!(find_fusible_prefix(&[writer.clone(), reader.clone()]), 1);
        assert_eq!(
            verify_fused_prefix(&[writer, reader]),
            Err(VerifyError::NonPointwiseDependence {
                kind: DepKind::True,
                store: StoreId(1),
                earlier: TaskId(0),
                later: TaskId(1),
            })
        );
    }

    #[test]
    fn single_point_prefixes_are_exempt() {
        let writer = chain_task(0, 1, 0, 1);
        let mut reader = chain_task(1, 1, 5, 6);
        reader.args[0] = StoreArg::new(StoreId(1), shifted(), Privilege::Read);
        assert!(verify_fused_prefix(&[writer, reader]).is_ok());
    }

    #[test]
    fn reduction_read_pair_is_rejected() {
        let reducer = IndexTask::new(
            TaskId(0),
            0,
            "sum",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(0), block(), Privilege::Read),
                StoreArg::new(
                    StoreId(1),
                    Partition::Replicate,
                    Privilege::Reduce(ReductionOp::Sum),
                ),
            ],
            vec![],
        );
        let reader = IndexTask::new(
            TaskId(1),
            0,
            "r",
            Domain::linear(4),
            vec![StoreArg::new(StoreId(1), Partition::Replicate, Privilege::Read)],
            vec![],
        );
        assert!(matches!(
            verify_fused_prefix(&[reducer, reader]),
            Err(VerifyError::NonPointwiseDependence {
                kind: DepKind::Reduction,
                ..
            })
        ));
    }

    #[test]
    fn domain_mismatch_is_rejected() {
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 8, 1, 2)];
        assert!(matches!(
            verify_fused_prefix(&tasks),
            Err(VerifyError::LaunchDomainMismatch { task: TaskId(1), .. })
        ));
    }

    #[test]
    fn planner_output_reverifies() {
        // Two independent chains split by a breaker: the plan merges them and
        // both the plan and the permutation it induces re-verify.
        let mut tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 4, 1, 2)];
        tasks.push(IndexTask::new(
            TaskId(2),
            1,
            "b",
            Domain::linear(1),
            vec![StoreArg::new(StoreId(100), Partition::Replicate, Privilege::Write)],
            vec![],
        ));
        tasks.extend([chain_task(3, 4, 10, 11), chain_task(4, 4, 11, 12)]);
        let segments = fusible_segments(&tasks);
        let plan = plan_horizontal(&tasks, &segments);
        assert!(!plan.is_identity());
        assert!(verify_horizontal_plan(&tasks, &segments, &plan).unwrap() > 0);
        let permuted = plan.apply(&tasks);
        assert!(verify_reorder(&tasks, &permuted).unwrap() > 0);
    }

    #[test]
    fn flipping_a_dependent_pair_is_rejected() {
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 4, 1, 2)];
        let flipped = vec![tasks[1].clone(), tasks[0].clone()];
        assert_eq!(
            verify_reorder(&tasks, &flipped),
            Err(VerifyError::DependenceOrderViolation {
                store: StoreId(1),
                earlier: TaskId(0),
                later: TaskId(1),
            })
        );
    }

    #[test]
    fn flipping_an_independent_pair_is_admitted() {
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 4, 10, 11)];
        let flipped = vec![tasks[1].clone(), tasks[0].clone()];
        assert!(verify_reorder(&tasks, &flipped).is_ok());
    }

    #[test]
    fn dropping_or_duplicating_a_task_is_not_a_permutation() {
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 4, 10, 11)];
        assert_eq!(
            verify_reorder(&tasks, &tasks[..1]),
            Err(VerifyError::NotAPermutation { task: TaskId(1) })
        );
        let duplicated = vec![tasks[0].clone(), tasks[0].clone()];
        assert_eq!(
            verify_reorder(&tasks, &duplicated),
            Err(VerifyError::NotAPermutation { task: TaskId(0) })
        );
    }

    #[test]
    fn skeleton_matches_its_own_prefix() {
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 4, 1, 2)];
        let fused = FusedTask::build(tasks.clone());
        // Canonical numbering: store 0 -> 0, store 1 -> 1, store 2 -> 2.
        let skeleton: Vec<(u32, PartitionId, Privilege)> = fused
            .args
            .iter()
            .map(|(s, p, pr)| (s.0 as u32, *p, *pr))
            .collect();
        assert!(verify_skeleton(&tasks, &skeleton).unwrap() > 0);

        // Corrupt the privilege of one merged arg: the re-derivation catches it.
        let mut corrupt = skeleton.clone();
        corrupt[1].2 = Privilege::Read;
        assert_eq!(
            verify_skeleton(&tasks, &corrupt),
            Err(VerifyError::SkeletonArgMismatch { index: 1 })
        );

        // Drop an arg: the count check catches it.
        assert_eq!(
            verify_skeleton(&tasks, &skeleton[..2]),
            Err(VerifyError::SkeletonArgCount {
                expected: 3,
                found: 2,
            })
        );
    }

    #[test]
    fn bad_group_cover_is_rejected() {
        // Different launch domains keep the two tasks in separate segments.
        let tasks = vec![chain_task(0, 4, 0, 1), chain_task(1, 8, 10, 11)];
        let segments = fusible_segments(&tasks);
        assert_eq!(segments, vec![1, 1]);
        let plan = plan_horizontal(&tasks, &segments);
        // The real plan covers; verify against a mismatched window panics, so
        // instead drop a segment from the plan's coverage by shrinking the
        // segmentation contract: use a plan from a sub-window.
        assert!(verify_horizontal_plan(&tasks, &segments, &plan).is_ok());
        let sub_plan = plan_horizontal(&tasks[..1], &segments[..1]);
        assert!(matches!(
            verify_horizontal_plan(&tasks, &segments, &sub_plan),
            Err(VerifyError::BadGroupCover { .. })
        ));
    }
}
