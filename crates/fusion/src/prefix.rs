//! Greedy search for the longest fusible prefix of a task window.

use ir::IndexTask;

use crate::constraints::{ConstraintState, FusionViolation};

/// Returns the length of the longest prefix of `tasks` that satisfies all
/// fusion constraints (Section 4.2). A result of `0` or `1` means no fusion is
/// possible at the head of the window.
pub fn find_fusible_prefix(tasks: &[IndexTask]) -> usize {
    find_fusible_prefix_explained(tasks).0
}

/// Like [`find_fusible_prefix`], additionally returning the constraint
/// violation that stopped the prefix (if the whole window did not fuse).
pub fn find_fusible_prefix_explained(tasks: &[IndexTask]) -> (usize, Option<FusionViolation>) {
    let mut state = ConstraintState::new();
    for (i, task) in tasks.iter().enumerate() {
        match state.try_push(task) {
            Ok(()) => {}
            Err(violation) => return (i, Some(violation)),
        }
    }
    (tasks.len(), None)
}

/// Partitions a whole window into consecutive fusible segments in **one
/// forward pass**: whenever a task violates a constraint against the running
/// prefix, the current segment is closed and the constraint state restarts at
/// that task (a lone task is always admissible against a fresh state).
///
/// The returned lengths sum to `tasks.len()`. Draining segments front to back
/// therefore never re-checks the untouched suffix — the per-flush
/// re-analysis the greedy `find_fusible_prefix`-per-iteration loop used to
/// pay is eliminated.
///
/// # Example
///
/// ```
/// use ir::{Domain, IndexTask, Partition, Privilege, StoreArg, StoreId, TaskId};
/// use fusion::fusible_segments;
///
/// let t = |id, points, store: u64| IndexTask::new(
///     TaskId(id), 0, "t", Domain::linear(points),
///     vec![StoreArg::new(StoreId(store), Partition::block(vec![4]), Privilege::Write)],
///     vec![],
/// );
/// // A launch-domain change splits the window into two segments.
/// let tasks = vec![t(0, 4, 0), t(1, 4, 1), t(2, 8, 2)];
/// assert_eq!(fusible_segments(&tasks), vec![2, 1]);
/// ```
pub fn fusible_segments(tasks: &[IndexTask]) -> Vec<usize> {
    fusible_segments_explained(tasks)
        .into_iter()
        .map(|(len, _)| len)
        .collect()
}

/// Like [`fusible_segments`], additionally pairing every segment with the
/// constraint violation that *closed* it — the reason the first task of the
/// next segment could not join. The final segment carries `None` (nothing
/// rejected it; the window simply ended). This is the raw material for the
/// why-not explainer ([`crate::explain`]) and for the per-class rejection
/// counters in `ExecutionStats`.
pub fn fusible_segments_explained(
    tasks: &[IndexTask],
) -> Vec<(usize, Option<FusionViolation>)> {
    let mut segments = Vec::new();
    let mut state = ConstraintState::new();
    for task in tasks {
        if let Err(violation) = state.try_push(task) {
            segments.push((state.len().max(1), Some(violation)));
            state = ConstraintState::new();
            state
                .try_push(task)
                .expect("a single task is always admissible against an empty state");
        }
    }
    if !state.is_empty() {
        segments.push((state.len(), None));
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Domain, Partition, Privilege, Projection, StoreArg, StoreId, TaskId};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn elementwise(id: u64, inputs: &[u64], output: u64) -> IndexTask {
        let mut args: Vec<StoreArg> = inputs
            .iter()
            .map(|&s| StoreArg::new(StoreId(s), block(), Privilege::Read))
            .collect();
        args.push(StoreArg::new(StoreId(output), block(), Privilege::Write));
        IndexTask::new(TaskId(id), 0, "ew", Domain::linear(4), args, vec![])
    }

    #[test]
    fn empty_window() {
        assert_eq!(find_fusible_prefix(&[]), 0);
    }

    #[test]
    fn whole_window_fuses() {
        // The Figure 1c stream before the aliasing copy: a chain of adds and a
        // multiply over disjoint temporaries.
        let tasks = vec![
            elementwise(0, &[0, 1], 10),
            elementwise(1, &[10, 2], 11),
            elementwise(2, &[11, 3], 12),
            elementwise(3, &[12, 4], 13),
            elementwise(4, &[13], 14),
        ];
        assert_eq!(find_fusible_prefix(&tasks), 5);
    }

    #[test]
    fn figure1_stencil_prefix_stops_before_aliasing_copy() {
        // Stores: 0 = grid. Views of grid: center (offset 1), north (offset 0),
        // east (offset 2). Temporaries 10..; work = 13.
        let grid = StoreId(0);
        let center = Partition::tiling(vec![4], vec![1], Projection::Identity);
        let north = Partition::tiling(vec![4], vec![0], Projection::Identity);
        let east = Partition::tiling(vec![4], vec![2], Projection::Identity);
        let domain = Domain::linear(4);
        let add1 = IndexTask::new(
            TaskId(0),
            0,
            "add",
            domain.clone(),
            vec![
                StoreArg::new(grid, center.clone(), Privilege::Read),
                StoreArg::new(grid, north, Privilege::Read),
                StoreArg::new(StoreId(10), block(), Privilege::Write),
            ],
            vec![],
        );
        let add2 = IndexTask::new(
            TaskId(1),
            0,
            "add",
            domain.clone(),
            vec![
                StoreArg::new(StoreId(10), block(), Privilege::Read),
                StoreArg::new(grid, east, Privilege::Read),
                StoreArg::new(StoreId(11), block(), Privilege::Write),
            ],
            vec![],
        );
        let mult = IndexTask::new(
            TaskId(2),
            1,
            "mult",
            domain.clone(),
            vec![
                StoreArg::new(StoreId(11), block(), Privilege::Read),
                StoreArg::new(StoreId(12), block(), Privilege::Write),
            ],
            vec![0.2],
        );
        let copy_back = IndexTask::new(
            TaskId(3),
            2,
            "copy",
            domain,
            vec![
                StoreArg::new(StoreId(12), block(), Privilege::Read),
                StoreArg::new(grid, center, Privilege::Write),
            ],
            vec![],
        );
        let tasks = vec![add1, add2, mult, copy_back];
        // The adds and the multiply fuse; the copy back into the aliased
        // center view does not (anti dependence against the north/east reads).
        let (len, violation) = find_fusible_prefix_explained(&tasks);
        assert_eq!(len, 3);
        assert!(matches!(
            violation,
            Some(crate::FusionViolation::AntiDependence { store }) if store == grid
        ));
    }

    #[test]
    fn prefix_respects_launch_domain_change() {
        let mut tasks = vec![elementwise(0, &[0], 1), elementwise(1, &[1], 2)];
        tasks.push(IndexTask::new(
            TaskId(2),
            0,
            "other",
            Domain::linear(8),
            vec![StoreArg::new(StoreId(2), block(), Privilege::Read)],
            vec![],
        ));
        let (len, violation) = find_fusible_prefix_explained(&tasks);
        assert_eq!(len, 2);
        assert!(matches!(
            violation,
            Some(crate::FusionViolation::LaunchDomainMismatch { .. })
        ));
    }

    #[test]
    fn segments_agree_with_iterated_prefix_search() {
        // The one-pass segmentation must produce exactly the lengths the
        // drain-and-research loop would: find a prefix, drop it, repeat.
        let grid = StoreId(0);
        let shifted = Partition::tiling(vec![4], vec![1], Projection::Identity);
        let mut tasks = vec![elementwise(0, &[0, 1], 10)];
        // Reads grid through a shifted view...
        tasks.push(IndexTask::new(
            TaskId(1),
            0,
            "r",
            Domain::linear(4),
            vec![
                StoreArg::new(grid, shifted, Privilege::Read),
                StoreArg::new(StoreId(11), block(), Privilege::Write),
            ],
            vec![],
        ));
        // ...then an anti-dependent write-back through the block view splits
        // the window here.
        tasks.push(IndexTask::new(
            TaskId(2),
            0,
            "w",
            Domain::linear(4),
            vec![
                StoreArg::new(StoreId(11), block(), Privilege::Read),
                StoreArg::new(grid, block(), Privilege::Write),
            ],
            vec![],
        ));
        tasks.push(elementwise(3, &[12], 13));
        let segments = fusible_segments(&tasks);
        assert_eq!(segments.iter().sum::<usize>(), tasks.len());
        assert_eq!(segments.len(), 2, "the anti dependence splits the window");
        let mut rest: &[IndexTask] = &tasks;
        for &seg in &segments {
            assert_eq!(find_fusible_prefix(rest).max(1).min(rest.len()), seg);
            rest = &rest[seg..];
        }
        assert!(rest.is_empty());
    }

    #[test]
    fn segments_of_empty_window() {
        assert!(fusible_segments(&[]).is_empty());
    }

    #[test]
    fn soundness_against_ground_truth_on_fused_prefix() {
        // Every pair of tasks inside a fusible prefix must be fusible by the
        // ground-truth dependence maps of Definition 3.
        use std::collections::HashMap;
        let tasks = vec![
            elementwise(0, &[0, 1], 10),
            elementwise(1, &[10, 2], 11),
            elementwise(2, &[11], 12),
        ];
        let len = find_fusible_prefix(&tasks);
        let shapes: HashMap<StoreId, Vec<u64>> = [0, 1, 2, 10, 11, 12]
            .into_iter()
            .map(|s| (StoreId(s), vec![16]))
            .collect();
        for i in 0..len {
            for j in (i + 1)..len {
                assert!(ir::fusible_ground_truth(&tasks[i], &tasks[j], &shapes));
            }
        }
    }
}
