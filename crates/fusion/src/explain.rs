//! The fusion why-not explainer.
//!
//! `diffuse-analyze` turns every window split into a structured report: which
//! task was rejected, which constraint fired, how the offending dependence
//! edge classifies ([`DepClass`]), and what change to the program would admit
//! fusion. The report is computed from the same one-pass segmentation the
//! execution path uses ([`crate::prefix::fusible_segments_explained`]), so it
//! always agrees with what the runtime actually fused.

use ir::{IndexTask, StoreId, TaskId};

use crate::classify::{classify_edge, DepClass};
use crate::constraints::FusionViolation;
use crate::prefix::fusible_segments_explained;

/// Why one window split happened: the violation, the classified dependence
/// edge behind it, and a suggestion that would admit fusion.
#[derive(Debug, Clone)]
pub struct BoundaryReport {
    /// Window index of the rejected task (the first task of the next
    /// segment).
    pub boundary: usize,
    /// Id of the rejected task.
    pub task: TaskId,
    /// Name of the rejected task.
    pub task_name: String,
    /// The constraint that fired.
    pub violation: FusionViolation,
    /// Classification of the offending dependence edge. `None` for
    /// launch-domain mismatches, which are not dependence edges.
    pub class: Option<DepClass>,
    /// What change to the program would admit fusion across this boundary.
    pub suggestion: String,
}

/// A structured why-not report over a whole task window.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Consecutive fusible segment lengths (sums to the window length).
    pub segments: Vec<usize>,
    /// One report per split boundary (`segments.len() - 1` entries for a
    /// non-empty window).
    pub boundaries: Vec<BoundaryReport>,
}

impl WindowReport {
    /// Whether the whole window fused into a single segment.
    pub fn fully_fused(&self) -> bool {
        self.boundaries.is_empty()
    }
}

impl std::fmt::Display for WindowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total: usize = self.segments.iter().sum();
        writeln!(
            f,
            "window of {total} task(s) fuses into {} segment(s): {:?}",
            self.segments.len(),
            self.segments
        )?;
        for b in &self.boundaries {
            writeln!(
                f,
                "  boundary before task {} (`{}`, window index {}):",
                b.task, b.task_name, b.boundary
            )?;
            writeln!(f, "    violation: {}", b.violation)?;
            if let Some(class) = &b.class {
                writeln!(f, "    dependence class: {class}")?;
            }
            writeln!(f, "    to admit fusion: {}", b.suggestion)?;
        }
        Ok(())
    }
}

/// Explains a window assuming every kernel may touch its whole sub-store
/// (exact whole-tile access summaries). Use [`explain_window_with`] to feed
/// analyzer-computed exactness per (task, argument).
pub fn explain_window(tasks: &[IndexTask]) -> WindowReport {
    explain_window_with(tasks, &|_, _| true)
}

/// Explains a window. `arg_is_exact(task, arg)` reports whether the
/// kernel-level access summary for that argument is exact (see
/// `ir::BufferFootprint::is_exact`); inexact edges classify as
/// [`DepClass::Unknown`].
pub fn explain_window_with(
    tasks: &[IndexTask],
    arg_is_exact: &dyn Fn(&IndexTask, usize) -> bool,
) -> WindowReport {
    let mut segments = Vec::new();
    let mut boundaries = Vec::new();
    let mut start = 0usize;
    for (len, violation) in fusible_segments_explained(tasks) {
        segments.push(len);
        let boundary = start + len;
        if let Some(violation) = violation {
            let task = &tasks[boundary];
            let class = classify_boundary(&tasks[start..boundary], task, &violation, arg_is_exact);
            let suggestion = suggest(&violation, class.as_ref());
            boundaries.push(BoundaryReport {
                boundary,
                task: task.id,
                task_name: task.name.clone(),
                violation,
                class,
                suggestion,
            });
        }
        start = boundary;
    }
    WindowReport {
        segments,
        boundaries,
    }
}

/// Finds and classifies the dependence edge behind a rejection: the most
/// recent conflicting access in the closed segment paired with the rejected
/// task's access of the same store.
fn classify_boundary(
    segment: &[IndexTask],
    rejected: &IndexTask,
    violation: &FusionViolation,
    arg_is_exact: &dyn Fn(&IndexTask, usize) -> bool,
) -> Option<DepClass> {
    type PrivPred = fn(ir::Privilege) -> bool;
    let (store, src_conflicts, dst_conflicts): (StoreId, PrivPred, PrivPred) = match violation {
        // Not dependence edges: nothing to classify.
        FusionViolation::LaunchDomainMismatch { .. } | FusionViolation::Reduction { .. } => {
            return None;
        }
        // True dependence: an earlier write, a later read or write.
        FusionViolation::TrueDependence { store } => {
            (*store, |p| p.writes(), |p| p.reads() || p.writes())
        }
        // Anti dependence: an earlier read, a later write.
        FusionViolation::AntiDependence { store } => (*store, |p| p.reads(), |p| p.writes()),
    };
    let dst_arg = rejected
        .args
        .iter()
        .position(|a| a.store == store && dst_conflicts(a.privilege))?;
    let dst_partition = rejected.args[dst_arg].partition;
    for src in segment.iter().rev() {
        let src_arg = src.args.iter().position(|a| {
            a.store == store
                && src_conflicts(a.privilege)
                && (a.partition != dst_partition
                    || a.partition.may_alias_across_points()
                    || dst_partition.may_alias_across_points())
        });
        if let Some(src_arg) = src_arg {
            return Some(classify_edge(src, src_arg, rejected, dst_arg, arg_is_exact));
        }
    }
    Some(DepClass::Unknown)
}

fn suggest(violation: &FusionViolation, class: Option<&DepClass>) -> String {
    match violation {
        FusionViolation::LaunchDomainMismatch { expected, found } => format!(
            "launch both stages over the same domain (prefix uses {expected}, task uses {found}); \
             repartitioning the smaller stage to match would admit fusion"
        ),
        FusionViolation::TrueDependence { store } => match class {
            Some(DepClass::Carried { distance }) => format!(
                "the consumer's tiles of {store} are shifted by {distance:?} whole launch point(s) \
                 from the producer's; a halo exchange that pre-communicates the shifted tiles, or \
                 consuming through the producer's partition, would admit fusion"
            ),
            _ => format!(
                "the consumer may read values of {store} written by arbitrary other launch points; \
                 accessing {store} through the same disjoint tiling on both sides would make the \
                 dependence point-wise and admit fusion"
            ),
        },
        FusionViolation::AntiDependence { store } => format!(
            "the write-back to {store} overlaps sub-stores earlier tasks read from other launch \
             points; writing into a fresh temporary instead (double buffering) would break the \
             anti dependence and admit fusion"
        ),
        FusionViolation::Reduction { store } => format!(
            "a partially reduced value of {store} would become visible inside the fused task; keep \
             the reduction and its readers in separate fused tasks (the window must split here)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Domain, Partition, Privilege, Projection, StoreArg};

    fn block() -> Partition {
        Partition::block(vec![4])
    }

    fn task(id: u64, name: &str, args: Vec<StoreArg>) -> IndexTask {
        IndexTask::new(TaskId(id), 0, name, Domain::linear(4), args, vec![])
    }

    #[test]
    fn fully_fused_window_has_no_boundaries() {
        let tasks = vec![
            task(0, "a", vec![
                StoreArg::new(StoreId(0), block(), Privilege::Read),
                StoreArg::new(StoreId(1), block(), Privilege::Write),
            ]),
            task(1, "b", vec![
                StoreArg::new(StoreId(1), block(), Privilege::Read),
                StoreArg::new(StoreId(2), block(), Privilege::Write),
            ]),
        ];
        let report = explain_window(&tasks);
        assert!(report.fully_fused());
        assert_eq!(report.segments, vec![2]);
    }

    #[test]
    fn stencil_write_back_is_anti_dependence_unknown() {
        // Figure 1: read the shifted view, write a temporary, then copy back
        // into the center view — a sub-tile shift, so the class is unknown.
        let grid = StoreId(0);
        let shifted = Partition::tiling(vec![4], vec![1], Projection::Identity);
        let tasks = vec![
            task(0, "stencil", vec![
                StoreArg::new(grid, shifted, Privilege::Read),
                StoreArg::new(StoreId(10), block(), Privilege::Write),
            ]),
            task(1, "copy", vec![
                StoreArg::new(StoreId(10), block(), Privilege::Read),
                StoreArg::new(grid, block(), Privilege::Write),
            ]),
        ];
        let report = explain_window(&tasks);
        assert_eq!(report.segments, vec![1, 1]);
        assert_eq!(report.boundaries.len(), 1);
        let b = &report.boundaries[0];
        assert_eq!(b.boundary, 1);
        assert_eq!(b.task_name, "copy");
        assert!(matches!(b.violation, FusionViolation::AntiDependence { store } if store == grid));
        assert_eq!(b.class, Some(DepClass::Unknown));
        assert!(b.suggestion.contains("temporary"), "{}", b.suggestion);
        let rendered = report.to_string();
        assert!(rendered.contains("anti dependence"), "{rendered}");
        assert!(rendered.contains("unknown"), "{rendered}");
    }

    #[test]
    fn whole_tile_shift_classifies_as_carried() {
        // Producer writes through tiles at offset 4; consumer reads the block
        // view: a whole-tile shift, carried with distance 1.
        let shifted_tile = Partition::tiling(vec![4], vec![4], Projection::Identity);
        let tasks = vec![
            task(0, "produce", vec![StoreArg::new(StoreId(0), shifted_tile, Privilege::Write)]),
            task(1, "consume", vec![StoreArg::new(StoreId(0), block(), Privilege::Read)]),
        ];
        let report = explain_window(&tasks);
        assert_eq!(report.boundaries.len(), 1);
        let b = &report.boundaries[0];
        assert!(matches!(b.violation, FusionViolation::TrueDependence { .. }));
        assert_eq!(b.class, Some(DepClass::Carried { distance: vec![1] }));
        assert!(b.suggestion.contains("halo exchange"), "{}", b.suggestion);
    }

    #[test]
    fn inexact_summaries_downgrade_carried_to_unknown() {
        let shifted_tile = Partition::tiling(vec![4], vec![4], Projection::Identity);
        let tasks = vec![
            task(0, "produce", vec![StoreArg::new(StoreId(0), shifted_tile, Privilege::Write)]),
            task(1, "consume", vec![StoreArg::new(StoreId(0), block(), Privilege::Read)]),
        ];
        let report = explain_window_with(&tasks, &|_, _| false);
        assert_eq!(report.boundaries[0].class, Some(DepClass::Unknown));
    }

    #[test]
    fn launch_domain_mismatch_has_no_class() {
        let tasks = vec![
            task(0, "a", vec![StoreArg::new(StoreId(0), block(), Privilege::Write)]),
            IndexTask::new(
                TaskId(1),
                0,
                "b",
                Domain::linear(8),
                vec![StoreArg::new(StoreId(1), block(), Privilege::Write)],
                vec![],
            ),
        ];
        let report = explain_window(&tasks);
        let b = &report.boundaries[0];
        assert!(matches!(b.violation, FusionViolation::LaunchDomainMismatch { .. }));
        assert_eq!(b.class, None);
        assert!(b.suggestion.contains("same domain"), "{}", b.suggestion);
    }

    #[test]
    fn reduction_boundary_suggests_flush() {
        let tasks = vec![
            task(0, "dot", vec![StoreArg::new(
                StoreId(0),
                Partition::Replicate,
                Privilege::Reduce(ir::ReductionOp::Sum),
            )]),
            task(1, "scale", vec![StoreArg::new(StoreId(0), Partition::Replicate, Privilege::Read)]),
        ];
        let report = explain_window(&tasks);
        let b = &report.boundaries[0];
        assert!(matches!(b.violation, FusionViolation::Reduction { .. }));
        assert_eq!(b.class, None);
        assert!(b.suggestion.contains("separate fused tasks"), "{}", b.suggestion);
    }
}
