//! Mutation-style negative property tests for `fusion::verify`.
//!
//! Each test generates a random *valid* window transform — an admitted
//! fusible prefix, a sound horizontal permutation, a faithful memo skeleton —
//! and applies one targeted corruption of the kind a buggy planner or a
//! fingerprint collision could introduce: aliasing a partition across a
//! dependence, swapping two dependent launches, dropping or duplicating a
//! task, perturbing a cached skeleton argument. The verifier must reject each
//! mutant with the *specific* [`VerifyError`] variant naming the violated
//! invariant, and must keep admitting the uncorrupted original.

use fusion::{
    fusible_segments, plan_horizontal, verify_fused_prefix, verify_horizontal_plan,
    verify_reorder, verify_skeleton, DepKind, FusedTask, VerifyError,
};
use ir::{
    Domain, IndexTask, Partition, PartitionId, Privilege, Projection, ReductionOp, StoreArg,
    StoreId, TaskId,
};
use proptest::prelude::*;

const POINTS: u64 = 4;

fn block() -> Partition {
    Partition::block(vec![4])
}

/// A tiling shifted by one element: overlaps neighbouring launch points, so
/// any dependence through it is not point-wise.
fn shifted() -> Partition {
    Partition::tiling(vec![4], vec![1], Projection::Identity)
}

fn task(id: u64, points: u64, args: Vec<StoreArg>) -> IndexTask {
    IndexTask::new(TaskId(id), 0, format!("t{id}"), Domain::linear(points), args, vec![])
}

/// A dependence chain: task `i` reads store `i` and writes store `i + 1`,
/// all through the same block partition — a prefix the vertical pass admits
/// in full.
fn chain(n: usize) -> Vec<IndexTask> {
    (0..n)
        .map(|i| {
            task(
                i as u64,
                POINTS,
                vec![
                    StoreArg::new(StoreId(i as u64), block(), Privilege::Read),
                    StoreArg::new(StoreId(i as u64 + 1), block(), Privilege::Write),
                ],
            )
        })
        .collect()
}

proptest! {
    /// Uncorrupted chains of any length re-verify: the baseline every
    /// mutation below perturbs.
    #[test]
    fn valid_chains_verify(n in 2usize..7) {
        prop_assert!(verify_fused_prefix(&chain(n)).unwrap() > 0);
    }

    /// Re-pointing one task's *read* through an aliasing partition turns the
    /// RAW edge from its producer non-point-wise; the verifier names the
    /// edge, the store and both endpoints.
    #[test]
    fn aliased_raw_edge_is_rejected(n in 2usize..7, pick in 0usize..16) {
        let mut tasks = chain(n);
        let t = 1 + pick % (n - 1);
        tasks[t].args[0].partition = shifted().into();
        prop_assert_eq!(
            verify_fused_prefix(&tasks),
            Err(VerifyError::NonPointwiseDependence {
                kind: DepKind::True,
                store: StoreId(t as u64),
                earlier: TaskId(t as u64 - 1),
                later: TaskId(t as u64),
            })
        );
    }

    /// A writer that overwrites a previously read store through an aliasing
    /// partition creates a non-point-wise WAR edge.
    #[test]
    fn aliased_war_edge_is_rejected(readers in 1usize..4) {
        let mut tasks: Vec<IndexTask> = (0..readers)
            .map(|i| {
                task(
                    i as u64,
                    POINTS,
                    vec![
                        StoreArg::new(StoreId(0), block(), Privilege::Read),
                        StoreArg::new(StoreId(10 + i as u64), block(), Privilege::Write),
                    ],
                )
            })
            .collect();
        tasks.push(task(
            readers as u64,
            POINTS,
            vec![StoreArg::new(StoreId(0), shifted(), Privilege::Write)],
        ));
        prop_assert_eq!(
            verify_fused_prefix(&tasks),
            Err(VerifyError::NonPointwiseDependence {
                kind: DepKind::Anti,
                store: StoreId(0),
                earlier: TaskId(0),
                later: TaskId(readers as u64),
            })
        );
    }

    /// A read of a store that an earlier task reduces into would observe a
    /// partially folded value; rejected whatever the partitions.
    #[test]
    fn reduction_overlap_is_rejected(leading in 0usize..3) {
        let mut tasks = chain(leading.max(1));
        let base = tasks.len() as u64;
        tasks.push(task(
            base,
            POINTS,
            vec![StoreArg::new(
                StoreId(100),
                Partition::Replicate,
                Privilege::Reduce(ReductionOp::Sum),
            )],
        ));
        tasks.push(task(
            base + 1,
            POINTS,
            vec![StoreArg::new(StoreId(100), Partition::Replicate, Privilege::Read)],
        ));
        prop_assert_eq!(
            verify_fused_prefix(&tasks),
            Err(VerifyError::NonPointwiseDependence {
                kind: DepKind::Reduction,
                store: StoreId(100),
                earlier: TaskId(base),
                later: TaskId(base + 1),
            })
        );
    }

    /// Perturbing one task's launch domain breaks the group-wide domain
    /// equality every fused launch requires.
    #[test]
    fn domain_drift_is_rejected(n in 2usize..7, pick in 0usize..16) {
        let mut tasks = chain(n);
        let t = 1 + pick % (n - 1);
        tasks[t].launch_domain = Domain::linear(POINTS * 2);
        prop_assert!(matches!(
            verify_fused_prefix(&tasks),
            Err(VerifyError::LaunchDomainMismatch { task, .. }) if task == TaskId(t as u64)
        ));
    }

    /// Swapping two adjacent launches of a dependence chain flips a RAW pair;
    /// the reorder check names the flipped pair and the store they share.
    #[test]
    fn swapping_dependent_launches_is_rejected(n in 2usize..7, pick in 0usize..16) {
        let tasks = chain(n);
        let i = pick % (n - 1);
        let mut permuted = tasks.clone();
        permuted.swap(i, i + 1);
        prop_assert_eq!(
            verify_reorder(&tasks, &permuted),
            Err(VerifyError::DependenceOrderViolation {
                store: StoreId(i as u64 + 1),
                earlier: TaskId(i as u64),
                later: TaskId(i as u64 + 1),
            })
        );
    }

    /// Tasks over disjoint stores commute: any pairwise swap is admitted.
    #[test]
    fn swapping_independent_launches_is_admitted(n in 2usize..7, pick in 0usize..16) {
        let tasks: Vec<IndexTask> = (0..n)
            .map(|i| {
                task(
                    i as u64,
                    POINTS,
                    vec![
                        StoreArg::new(StoreId(10 * i as u64), block(), Privilege::Read),
                        StoreArg::new(StoreId(10 * i as u64 + 1), block(), Privilege::Write),
                    ],
                )
            })
            .collect();
        let i = pick % (n - 1);
        let mut permuted = tasks.clone();
        permuted.swap(i, i + 1);
        prop_assert!(verify_reorder(&tasks, &permuted).is_ok());
    }

    /// Dropping any task makes the permutation check fail on that task.
    #[test]
    fn dropped_task_is_not_a_permutation(n in 2usize..7, pick in 0usize..16) {
        let tasks = chain(n);
        let drop = pick % n;
        let mut permuted = tasks.clone();
        permuted.remove(drop);
        prop_assert_eq!(
            verify_reorder(&tasks, &permuted),
            Err(VerifyError::NotAPermutation { task: TaskId(drop as u64) })
        );
    }

    /// Duplicating one task over another is caught as a duplicate id.
    #[test]
    fn duplicated_task_is_not_a_permutation(n in 3usize..7, pick in 0usize..16) {
        let tasks = chain(n);
        let overwritten = pick % n;
        let duplicated = (overwritten + 1) % n;
        let mut permuted = tasks.clone();
        permuted[overwritten] = tasks[duplicated].clone();
        prop_assert_eq!(
            verify_reorder(&tasks, &permuted),
            Err(VerifyError::NotAPermutation { task: TaskId(duplicated as u64) })
        );
    }

    /// A faithful memo skeleton re-verifies; corrupting any merged argument's
    /// privilege (a structural divergence only a fingerprint collision could
    /// produce) is caught at that argument, and dropping one is caught by the
    /// count check.
    #[test]
    fn corrupted_skeleton_is_rejected(n in 2usize..7, pick in 0usize..32) {
        let tasks = chain(n);
        let fused = FusedTask::build(tasks.clone());
        // In a chain, store ids coincide with first-occurrence canonical
        // numbering, so the skeleton is the fused arg list verbatim.
        let skeleton: Vec<(u32, PartitionId, Privilege)> = fused
            .args
            .iter()
            .map(|(s, p, pr)| (s.0 as u32, *p, *pr))
            .collect();
        prop_assert!(verify_skeleton(&tasks, &skeleton).unwrap() > 0);

        let idx = pick % skeleton.len();
        let mut corrupt = skeleton.clone();
        corrupt[idx].2 = match corrupt[idx].2 {
            Privilege::Read => Privilege::ReadWrite,
            _ => Privilege::Read,
        };
        prop_assert_eq!(
            verify_skeleton(&tasks, &corrupt),
            Err(VerifyError::SkeletonArgMismatch { index: idx })
        );
        prop_assert_eq!(
            verify_skeleton(&tasks, &skeleton[..skeleton.len() - 1]),
            Err(VerifyError::SkeletonArgCount {
                expected: skeleton.len(),
                found: skeleton.len() - 1,
            })
        );
    }

    /// Random batches of independent chains split by domain-1 breakers: the
    /// horizontal planner merges the chain segments, and both the plan and
    /// the permutation it induces re-verify — while a plan for a sub-window
    /// fails the exact-cover check.
    #[test]
    fn planner_output_reverifies_and_subplans_fail_cover(
        chains in 2usize..5,
        len in 1usize..3,
    ) {
        let mut tasks = Vec::new();
        let mut id = 0u64;
        for c in 0..chains {
            let base = 100 * c as u64;
            for i in 0..len {
                tasks.push(task(
                    id,
                    POINTS,
                    vec![
                        StoreArg::new(StoreId(base + i as u64), block(), Privilege::Read),
                        StoreArg::new(StoreId(base + i as u64 + 1), block(), Privilege::Write),
                    ],
                ));
                id += 1;
            }
            if c + 1 < chains {
                // Domain-1 breaker on a unique store: its own segment.
                tasks.push(task(
                    id,
                    1,
                    vec![StoreArg::new(
                        StoreId(9000 + c as u64),
                        Partition::Replicate,
                        Privilege::Write,
                    )],
                ));
                id += 1;
            }
        }
        let segments = fusible_segments(&tasks);
        prop_assert!(segments.len() > 1);
        let plan = plan_horizontal(&tasks, &segments);
        prop_assert!(verify_horizontal_plan(&tasks, &segments, &plan).unwrap() > 0);
        let permuted = plan.apply(&tasks);
        prop_assert!(verify_reorder(&tasks, &permuted).unwrap() > 0);

        // A plan over only the first segment cannot cover this window.
        let sub_plan = plan_horizontal(&tasks[..segments[0]], &segments[..1]);
        prop_assert!(matches!(
            verify_horizontal_plan(&tasks, &segments, &sub_plan),
            Err(VerifyError::BadGroupCover { .. })
        ));
    }
}
