//! Property tests: the scale-free fusion constraints are sound with respect to
//! the ground-truth dependence definitions (Theorem 1, part 1).
//!
//! For arbitrary task streams over a small machine, every pair of tasks inside
//! the fusible prefix found by the greedy algorithm must be fusible according
//! to the materialized dependence maps of Definition 3, and temporary stores
//! must never be observable by pending tasks.

use std::collections::HashMap;

use fusion::{find_fusible_prefix, temporary_stores, CanonicalWindow};
use ir::{
    fusible_ground_truth, Domain, IndexTask, Partition, Privilege, Projection, ReductionOp,
    StoreArg, StoreId, TaskId,
};
use proptest::prelude::*;

const NUM_STORES: u64 = 6;
const STORE_LEN: u64 = 24;
const LAUNCH_POINTS: u64 = 4;

fn arb_partition() -> impl Strategy<Value = Partition> {
    prop_oneof![
        Just(Partition::Replicate),
        Just(Partition::block(vec![STORE_LEN / LAUNCH_POINTS])),
        (0i64..3).prop_map(|off| Partition::tiling(
            vec![STORE_LEN / LAUNCH_POINTS],
            vec![off],
            Projection::Identity
        )),
        Just(Partition::tiling(
            vec![STORE_LEN / 2],
            vec![0],
            Projection::Constant(vec![0])
        )),
    ]
}

fn arb_privilege() -> impl Strategy<Value = Privilege> {
    prop_oneof![
        Just(Privilege::Read),
        Just(Privilege::Write),
        Just(Privilege::ReadWrite),
        Just(Privilege::Reduce(ReductionOp::Sum)),
    ]
}

fn arb_arg() -> impl Strategy<Value = StoreArg> {
    (0..NUM_STORES, arb_partition(), arb_privilege()).prop_map(|(s, p, pr)| {
        // Stamp the store shape the way the Diffuse context does at submit
        // time: the analyses read shapes straight off the arguments.
        StoreArg::new(StoreId(s), p, pr).with_shape(vec![STORE_LEN])
    })
}

fn arb_task(id: u64) -> impl Strategy<Value = IndexTask> {
    prop::collection::vec(arb_arg(), 1..4).prop_map(move |args| {
        IndexTask::new(
            TaskId(id),
            0,
            format!("t{id}"),
            Domain::linear(LAUNCH_POINTS),
            args,
            vec![],
        )
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<IndexTask>> {
    prop::collection::vec(arb_task(0), 1..8).prop_map(|mut tasks| {
        for (i, t) in tasks.iter_mut().enumerate() {
            t.id = TaskId(i as u64);
        }
        tasks
    })
}

fn store_shapes() -> HashMap<StoreId, Vec<u64>> {
    (0..NUM_STORES)
        .map(|s| (StoreId(s), vec![STORE_LEN]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every pair of tasks inside the fusible prefix is fusible by
    /// the ground-truth dependence maps.
    #[test]
    fn fusible_prefix_is_sound(tasks in arb_stream()) {
        let shapes = store_shapes();
        let len = find_fusible_prefix(&tasks);
        prop_assert!(len <= tasks.len());
        for i in 0..len {
            for j in (i + 1)..len {
                prop_assert!(
                    fusible_ground_truth(&tasks[i], &tasks[j], &shapes),
                    "tasks {i} and {j} admitted by the constraints but not fusible \
                     by the ground truth"
                );
            }
        }
    }

    /// The greedy search is monotone: a prefix of a stream never produces a
    /// longer fusible prefix than the full stream allows at the same cut.
    #[test]
    fn prefix_search_is_greedy_and_stable(tasks in arb_stream()) {
        let len = find_fusible_prefix(&tasks);
        if len > 1 {
            // Every shorter prefix of the fusible prefix must itself be fully
            // fusible.
            for cut in 1..len {
                prop_assert_eq!(find_fusible_prefix(&tasks[..cut]), cut);
            }
        }
    }

    /// Temporary stores are never read or reduced by pending tasks and never
    /// application-referenced.
    #[test]
    fn temporaries_are_unobservable(tasks in arb_stream(), split in 0usize..8) {
        let len = find_fusible_prefix(&tasks);
        let split = split.min(len);
        let (prefix, pending) = tasks.split_at(split.max(1).min(tasks.len()));
        let temps = temporary_stores(prefix, pending, |_| false);
        for s in &temps {
            for t in pending {
                prop_assert!(!t.reads(*s) && !t.reduces(*s));
            }
            // A temporary must have been written inside the prefix.
            prop_assert!(prefix.iter().any(|t| t.writes(*s)));
        }
    }

    /// Canonicalization is invariant under store renaming (alpha-equivalence).
    #[test]
    fn canonicalization_is_renaming_invariant(tasks in arb_stream(), offset in 1u64..40) {
        let renamed: Vec<IndexTask> = tasks
            .iter()
            .map(|t| {
                let mut t = t.clone();
                for arg in &mut t.args {
                    arg.store = StoreId(arg.store.0 + offset);
                }
                t
            })
            .collect();
        let a = CanonicalWindow::new(&tasks);
        let b = CanonicalWindow::new(&renamed);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a, b);
    }

    /// The fusion decision itself is replayable on isomorphic windows: two
    /// windows with equal canonical forms produce the same fusible prefix
    /// length.
    #[test]
    fn isomorphic_windows_fuse_identically(tasks in arb_stream(), offset in 1u64..40) {
        let renamed: Vec<IndexTask> = tasks
            .iter()
            .map(|t| {
                let mut t = t.clone();
                for arg in &mut t.args {
                    arg.store = StoreId(arg.store.0 + offset);
                }
                t
            })
            .collect();
        prop_assert_eq!(find_fusible_prefix(&tasks), find_fusible_prefix(&renamed));
    }
}
