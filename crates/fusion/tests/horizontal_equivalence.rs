//! Property-test harness for horizontal fusion: randomly generated batches of
//! independent equal-domain chains, interleaved with domain-1 finalizes and
//! cross-batch couplings, must execute bit-identically whether the stream is
//! left alone (unfused), vertically fused, or vertically fused after the
//! horizontal pass reorders it — while the horizontal run launches strictly
//! fewer tasks.
//!
//! Horizontal fusion is the first analysis that *reorders* the stream, so the
//! soundness argument (pairwise disjointness means any interleaving of group
//! members is valid, and overtaken segments are proven conflict-free) lives
//! here as an executable property rather than a comment. The configurations
//! are built through the `DiffuseConfig::fused`/`unfused` presets so the
//! `DIFFUSE_EXECUTOR` x `DIFFUSE_BACKEND` CI matrix applies to every case.

use diffuse::{Context, DiffuseConfig, StoreHandle, TaskKind, TaskSignature};
use ir::{Domain, Partition};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder};
use machine::MachineConfig;
use proptest::prelude::*;

const GPUS: usize = 4;
const N: u64 = 16;

/// One independent batch: a chain of `len` elementwise scales over fresh
/// stores, closed by a domain-1 finalize. `couple` adds a second domain-1
/// task that reads the *previous* batch's finalize output, exercising the
/// ordering checks (the coupled finalize segment must not overtake the chain
/// that feeds it).
#[derive(Debug, Clone)]
struct BatchSpec {
    len: usize,
    seed: u32,
    couple: bool,
}

fn register_scale(ctx: &Context) -> TaskKind {
    let lib = ctx.register_library("hscale");
    lib.register(
        "scale",
        TaskSignature::new().read().write().scalars(1),
        |_args| {
            let mut m = KernelModule::new(2);
            m.set_role(BufferId(1), BufferRole::Output);
            let mut b = LoopBuilder::new("scale", BufferId(1));
            let x = b.load(BufferId(0));
            let s = b.param(0);
            let v = b.mul(x, s);
            b.store(BufferId(1), v);
            m.push_loop(b.finish());
            m
        },
    )
}

struct RunOutcome {
    /// Raw f64 bit patterns of every observable store, in submission order.
    bits: Vec<Vec<u64>>,
    stats: diffuse::ExecutionStats,
    submitted: u64,
}

/// Builds the batched stream under `config` and executes it. Every
/// configuration submits the *same* task sequence over identically filled
/// stores; only the analysis differs.
fn run(config: DiffuseConfig, batches: &[BatchSpec], shared_input: bool) -> RunOutcome {
    let ctx = Context::new(config.with_window(256, 256));
    let scale = register_scale(&ctx);
    let p = Partition::block(vec![N.div_ceil(GPUS as u64)]);

    // Allocate and fill every input up front: `fill` flushes the window, so
    // data setup must finish before the first task submission to keep all
    // configurations analyzing one identical window.
    let shared = ctx.create_store(vec![N], "shared");
    ctx.fill(&shared, 1.5);
    let inputs: Vec<StoreHandle> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let s = ctx.create_store(vec![N], "in");
            ctx.fill(&s, 1.0 + (i as f64) + (b.seed % 3) as f64 * 0.25);
            s
        })
        .collect();

    let mut observable: Vec<StoreHandle> = Vec::new();
    let mut prev_resp: Option<StoreHandle> = None;
    let mut submitted = 0u64;
    let stats0 = ctx.stats();
    for (i, b) in batches.iter().enumerate() {
        let mut cur = if shared_input { shared.clone() } else { inputs[i].clone() };
        for j in 0..b.len {
            let next = ctx.create_store(vec![N], "link");
            let c = 0.5 + ((b.seed as usize + j) % 4) as f64 * 0.25;
            ctx.task(scale)
                .read(&cur, p.clone())
                .write(&next, p.clone())
                .scalar(c)
                .launch();
            submitted += 1;
            cur = next;
        }
        let resp = ctx.create_store(vec![N], "resp");
        ctx.task(scale)
            .domain(Domain::linear(1))
            .read(&cur, Partition::Replicate)
            .write(&resp, Partition::Replicate)
            .scalar(0.5)
            .launch();
        submitted += 1;
        observable.push(cur);
        observable.push(resp.clone());
        if b.couple {
            if let Some(prev) = &prev_resp {
                let w = ctx.create_store(vec![N], "coupled");
                ctx.task(scale)
                    .domain(Domain::linear(1))
                    .read(prev, Partition::Replicate)
                    .write(&w, Partition::Replicate)
                    .scalar(2.0)
                    .launch();
                submitted += 1;
                observable.push(w);
            }
        }
        prev_resp = Some(resp);
    }
    ctx.flush();
    let bits = observable
        .iter()
        .map(|s| {
            ctx.read_store(s)
                .unwrap()
                .into_iter()
                .map(f64::to_bits)
                .collect()
        })
        .collect();
    RunOutcome {
        bits,
        stats: ctx.stats().since(&stats0),
        submitted,
    }
}

fn machine() -> MachineConfig {
    MachineConfig::with_gpus(GPUS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core soundness property: reordering proven-independent segments
    /// never changes a single output bit, and always launches strictly fewer
    /// tasks than the purely vertical analysis on batched streams.
    #[test]
    fn horizontal_fusion_is_bitwise_invisible(
        batches in prop::collection::vec(
            (1..4usize, 0..7u32, 0..2u8)
                .prop_map(|(len, seed, couple)| BatchSpec { len, seed, couple: couple == 1 }),
            2..5,
        ),
        shared_input in (0..2u8).prop_map(|b| b == 1),
    ) {
        let unfused = run(DiffuseConfig::unfused(machine()), &batches, shared_input);
        let vertical = run(
            DiffuseConfig::fused(machine()).with_horizontal_fusion(false),
            &batches,
            shared_input,
        );
        let horizontal = run(
            DiffuseConfig::fused(machine()).with_horizontal_fusion(true),
            &batches,
            shared_input,
        );

        prop_assert_eq!(&vertical.bits, &unfused.bits,
            "vertical fusion changed results");
        prop_assert_eq!(&horizontal.bits, &unfused.bits,
            "horizontal fusion changed results");

        // The unfused baseline forwards every submission unchanged.
        prop_assert_eq!(unfused.stats.tasks_launched, unfused.submitted);
        prop_assert!(vertical.stats.tasks_launched <= unfused.stats.tasks_launched);
        // With at least two independent chains the pass always finds a merge:
        // the chains are pairwise disjoint (shared stores are read-only on
        // both sides) and every intervening domain-1 segment commutes with
        // them, so the launch count must drop strictly.
        prop_assert!(
            horizontal.stats.tasks_launched < vertical.stats.tasks_launched,
            "expected a strict launch-count drop: horizontal {} vs vertical {}",
            horizontal.stats.tasks_launched,
            vertical.stats.tasks_launched,
        );
        prop_assert!(horizontal.stats.horizontally_fused_tasks > 0);
        prop_assert_eq!(vertical.stats.horizontally_fused_tasks, 0);
        prop_assert_eq!(unfused.stats.horizontally_fused_tasks, 0);
    }
}

/// The ISSUE acceptance shape: eight independent equal-domain batches land in
/// exactly two launches (one wide chain launch, one wide finalize launch).
#[test]
fn eight_independent_batches_land_in_two_launches() {
    let batches: Vec<BatchSpec> = (0..8)
        .map(|i| BatchSpec { len: 1, seed: i, couple: false })
        .collect();
    let horizontal = run(
        DiffuseConfig::fused(machine()).with_horizontal_fusion(true),
        &batches,
        false,
    );
    let vertical = run(
        DiffuseConfig::fused(machine()).with_horizontal_fusion(false),
        &batches,
        false,
    );
    assert_eq!(vertical.stats.tasks_launched, 16);
    assert_eq!(horizontal.stats.tasks_launched, 2);
    assert_eq!(horizontal.stats.horizontally_fused_tasks, 16);
    assert_eq!(horizontal.bits, vertical.bits);
}

/// The horizontal pass is backend-invariant: the wide merged launches
/// produce the same bits under the interpreter, closure and SIMD kernel
/// backends, with identical launch accounting. This pins the reordered
/// skeleton's soundness to every shipped lowering, not just the default.
#[test]
fn horizontal_fusion_is_backend_invariant() {
    use kernel::BackendKind;
    let batches: Vec<BatchSpec> = (0..4)
        .map(|i| BatchSpec { len: 2, seed: i, couple: i % 2 == 1 })
        .collect();
    let mut reference: Option<RunOutcome> = None;
    for backend in [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd] {
        let outcome = run(
            DiffuseConfig::fused(machine())
                .with_horizontal_fusion(true)
                .with_backend(backend),
            &batches,
            false,
        );
        assert!(outcome.stats.horizontally_fused_tasks > 0);
        match &reference {
            None => reference = Some(outcome),
            Some(expected) => {
                assert_eq!(
                    expected.bits,
                    outcome.bits,
                    "{} diverged from the interpreter on the merged launches",
                    backend.id()
                );
                assert_eq!(expected.stats.tasks_launched, outcome.stats.tasks_launched);
                assert_eq!(
                    expected.stats.horizontally_fused_tasks,
                    outcome.stats.horizontally_fused_tasks
                );
                assert_eq!(expected.submitted, outcome.submitted);
            }
        }
    }
}
