//! Property tests: the fingerprint-first memo probe is **behaviorally
//! identical** to a full-key lookup.
//!
//! The fast path never builds a `CanonicalWindow` on a hit — it probes by the
//! window's rolling fingerprint and verifies candidates in place. These tests
//! drive the fast cache and a reference `HashMap<CanonicalWindow, u32>` with
//! the same window sequences — including renamed (isomorphic) windows and
//! deliberately *near*-isomorphic mutants that differ in exactly one
//! privilege, partition, shape or store choice — and require the same
//! hit/miss sequence and the same returned entries.

use std::collections::HashMap;

use fusion::{fusible_segments, plan_horizontal, CanonicalWindow, MemoCache};
use ir::{
    window_fingerprint, Domain, IndexTask, Partition, Privilege, Projection, ReductionOp, ShapeId,
    StoreArg, StoreId, TaskId, TaskWindow,
};
use proptest::prelude::*;

const NUM_STORES: u64 = 6;
const STORE_LEN: u64 = 24;
const LAUNCH_POINTS: u64 = 4;

fn arb_partition() -> impl Strategy<Value = Partition> {
    prop_oneof![
        Just(Partition::Replicate),
        Just(Partition::block(vec![STORE_LEN / LAUNCH_POINTS])),
        (0i64..3).prop_map(|off| Partition::tiling(
            vec![STORE_LEN / LAUNCH_POINTS],
            vec![off],
            Projection::Identity
        )),
    ]
}

fn arb_privilege() -> impl Strategy<Value = Privilege> {
    prop_oneof![
        Just(Privilege::Read),
        Just(Privilege::Write),
        Just(Privilege::ReadWrite),
        Just(Privilege::Reduce(ReductionOp::Sum)),
    ]
}

fn arb_arg() -> impl Strategy<Value = StoreArg> {
    (0..NUM_STORES, arb_partition(), arb_privilege(), 0u8..2).prop_map(|(s, p, pr, wide)| {
        // Two shape choices so mutants can differ in shape alone.
        let shape = if wide == 0 {
            vec![STORE_LEN]
        } else {
            vec![STORE_LEN * 2]
        };
        StoreArg::new(StoreId(s), p, pr).with_shape(shape)
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<IndexTask>> {
    prop::collection::vec(
        prop::collection::vec(arb_arg(), 1..4),
        1..6,
    )
    .prop_map(|arg_lists| {
        arg_lists
            .into_iter()
            .enumerate()
            .map(|(i, args)| {
                IndexTask::new(
                    TaskId(i as u64),
                    0,
                    format!("t{i}"),
                    Domain::linear(LAUNCH_POINTS),
                    args,
                    vec![],
                )
            })
            .collect()
    })
}

/// Renames every store id by a fixed offset: an isomorphic window.
fn renamed(tasks: &[IndexTask], offset: u64) -> Vec<IndexTask> {
    tasks
        .iter()
        .map(|t| {
            let mut t = t.clone();
            for arg in &mut t.args {
                arg.store = StoreId(arg.store.0 + offset);
            }
            t
        })
        .collect()
}

/// Near-isomorphic mutants of a stream: identical except for one argument's
/// privilege, partition, shape or store.
fn mutants(tasks: &[IndexTask]) -> Vec<Vec<IndexTask>> {
    let mut out = Vec::new();
    let mut m = tasks.to_vec();
    m[0].args[0].privilege = match m[0].args[0].privilege {
        Privilege::Read => Privilege::ReadWrite,
        _ => Privilege::Read,
    };
    out.push(m);
    let mut m = tasks.to_vec();
    m[0].args[0].partition = Partition::tiling(
        vec![STORE_LEN / LAUNCH_POINTS],
        vec![7],
        Projection::Identity,
    )
    .into();
    out.push(m);
    let mut m = tasks.to_vec();
    m[0].args[0].shape = ShapeId::intern(&[STORE_LEN * 4]);
    out.push(m);
    let last = tasks.len() - 1;
    let mut m = tasks.to_vec();
    let a = m[last].args.len() - 1;
    m[last].args[a].store = StoreId(m[last].args[a].store.0 % NUM_STORES + NUM_STORES * 3);
    out.push(m);
    out
}

/// Drives the fingerprint-first cache and a full-key reference map with the
/// same window sequence; returns both observation logs.
fn drive(sequence: &[Vec<IndexTask>]) -> (Vec<Option<u32>>, Vec<Option<u32>>) {
    let mut fast: MemoCache<u32> = MemoCache::new();
    let mut reference: HashMap<CanonicalWindow, u32> = HashMap::new();
    let mut fast_log = Vec::new();
    let mut ref_log = Vec::new();
    for (i, tasks) in sequence.iter().enumerate() {
        let window: TaskWindow = tasks.iter().cloned().collect();
        let fast_hit = fast.probe(&window).copied();
        fast_log.push(fast_hit);
        if fast_hit.is_none() {
            fast.insert(CanonicalWindow::new(tasks), i as u32);
        }
        let key = CanonicalWindow::new(tasks);
        let ref_hit = reference.get(&key).copied();
        ref_log.push(ref_hit);
        if ref_hit.is_none() {
            reference.insert(key, i as u32);
        }
    }
    (fast_log, ref_log)
}

/// One independent unit of a batch: a chain of `len` elementwise tasks over
/// the unit's private store range (optionally also reading one shared store,
/// read-only), closed by a domain-1 breaker so adjacent units stay separate
/// vertical segments.
fn batch_stream(specs: &[(usize, bool)], order: &[usize]) -> Vec<IndexTask> {
    let shared = StoreId(900);
    let block = Partition::block(vec![STORE_LEN / LAUNCH_POINTS]);
    let mut out = Vec::new();
    let mut next_id = 0u64;
    for &u in order {
        let (len, extra) = specs[u];
        let base = 100 + (u as u64) * 16;
        for j in 0..len as u64 {
            let mut args = vec![
                StoreArg::new(StoreId(base + j), block.clone(), Privilege::Read)
                    .with_shape(vec![STORE_LEN]),
                StoreArg::new(StoreId(base + j + 1), block.clone(), Privilege::Write)
                    .with_shape(vec![STORE_LEN]),
            ];
            if extra {
                args.push(
                    StoreArg::new(shared, Partition::Replicate, Privilege::Read)
                        .with_shape(vec![STORE_LEN]),
                );
            }
            out.push(IndexTask::new(
                TaskId(next_id),
                0,
                format!("chain{u}t{j}"),
                Domain::linear(LAUNCH_POINTS),
                args,
                vec![],
            ));
            next_id += 1;
        }
        out.push(IndexTask::new(
            TaskId(next_id),
            1,
            format!("break{u}"),
            Domain::linear(1),
            vec![
                StoreArg::new(StoreId(base + 15), Partition::Replicate, Privilege::Write)
                    .with_shape(vec![STORE_LEN]),
            ],
            vec![],
        ));
        next_id += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fingerprint-first lookup sees exactly the hits and misses — with the
    /// same entries — that full-key lookup sees, over a sequence containing
    /// the base window, an isomorphic renaming, near-isomorphic mutants and
    /// repeats of all of them.
    #[test]
    fn probe_is_equivalent_to_full_key_lookup(tasks in arb_stream(), offset in 1u64..32) {
        let mut sequence = vec![tasks.clone(), renamed(&tasks, offset)];
        sequence.extend(mutants(&tasks));
        // Replay everything once more: the second pass must be all hits on
        // both sides, returning the entries inserted by the first pass.
        let replay: Vec<Vec<IndexTask>> = sequence.clone();
        sequence.extend(replay);
        let (fast_log, ref_log) = drive(&sequence);
        prop_assert_eq!(&fast_log, &ref_log);
        // Sanity: the renamed window hit the base entry on both sides.
        prop_assert_eq!(fast_log[1], Some(0));
        // And every window in the replayed half hit.
        let half = fast_log.len() / 2;
        prop_assert!(fast_log[half..].iter().all(|h| h.is_some()));
    }

    /// The rolling fingerprint a window maintains incrementally equals the
    /// batch fingerprint of its contents after any sequence of pushes and
    /// prefix drains (which renumber the remaining suffix).
    #[test]
    fn rolling_fingerprint_survives_drains(tasks in arb_stream(), drain in 1usize..4) {
        let mut window = TaskWindow::new();
        for t in tasks.clone() {
            window.push(t);
        }
        prop_assert_eq!(window.fingerprint(), window_fingerprint(&tasks));
        let n = drain.min(window.len());
        let _ = window.drain_prefix(n);
        prop_assert_eq!(window.fingerprint(), window_fingerprint(&tasks[n..]));
        // Pushing on top of the drained window stays consistent.
        let mut expected: Vec<IndexTask> = tasks[n..].to_vec();
        for t in tasks.iter().take(1).cloned() {
            window.push(t.clone());
            expected.push(t);
        }
        prop_assert_eq!(window.fingerprint(), window_fingerprint(&expected));
    }

    /// A bounded cache still agrees with the unbounded reference as long as
    /// the working set fits (the eviction policy only evicts beyond
    /// capacity, and the probed entry is always most-recently used).
    #[test]
    fn bounded_probe_agrees_within_capacity(tasks in arb_stream(), offset in 1u64..32) {
        let windows = [tasks.clone(), renamed(&tasks, offset), tasks.clone()];
        let mut bounded: MemoCache<u32> = MemoCache::with_capacity_limit(4);
        let mut log = Vec::new();
        for (i, w) in windows.iter().enumerate() {
            let window: TaskWindow = w.iter().cloned().collect();
            let hit = bounded.probe(&window).copied();
            log.push(hit);
            if hit.is_none() {
                bounded.insert(CanonicalWindow::new(w), i as u32);
            }
        }
        prop_assert_eq!(log[0], None);
        prop_assert_eq!(log[1], Some(0), "isomorphic renaming must hit");
        prop_assert_eq!(log[2], Some(0));
        prop_assert_eq!(bounded.evictions(), 0);
    }

    /// Two permutations of the same independent batch canonicalize to the
    /// same stream after the horizontal pass reorders them: equal rolling
    /// fingerprints, equal canonical windows, and one shared memo entry.
    /// This is the order-insensitivity the horizontal pass buys — isomorphic
    /// batches submitted in any order replay one compiled skeleton.
    #[test]
    fn permuted_batches_share_one_memo_entry(
        specs in prop::collection::vec((1usize..4, 0u8..2), 2..5),
        rotate in 0usize..4,
        reverse in 0u8..2,
    ) {
        let specs: Vec<(usize, bool)> =
            specs.into_iter().map(|(l, e)| (l, e == 1)).collect();
        let order_a: Vec<usize> = (0..specs.len()).collect();
        let mut order_b = order_a.clone();
        order_b.rotate_left(rotate % specs.len());
        if reverse == 1 {
            order_b.reverse();
        }

        let apply = |order: &[usize]| {
            let stream = batch_stream(&specs, order);
            let segments = fusible_segments(&stream);
            let plan = plan_horizontal(&stream, &segments);
            (plan.merged_tasks(), plan.apply(&stream))
        };
        let (merged_a, applied_a) = apply(&order_a);
        let (merged_b, applied_b) = apply(&order_b);

        // The units are pairwise disjoint (shared store is read-only on both
        // sides), so both permutations pack all chains into one group and all
        // breakers into another.
        prop_assert!(merged_a > 0);
        prop_assert_eq!(merged_a, merged_b);
        prop_assert_eq!(
            window_fingerprint(&applied_a),
            window_fingerprint(&applied_b),
            "permuted batches must canonicalize identically"
        );
        prop_assert_eq!(
            CanonicalWindow::new(&applied_a),
            CanonicalWindow::new(&applied_b)
        );

        // And the memo cache treats them as one entry: insert under the first
        // permutation's key, probe with the second's applied window.
        let mut cache: MemoCache<u32> = MemoCache::new();
        cache.insert(CanonicalWindow::new(&applied_a), 7);
        let window: TaskWindow = applied_b.iter().cloned().collect();
        prop_assert_eq!(cache.probe(&window).copied(), Some(7));
    }
}

/// End-to-end skeleton replay is backend-invariant: a second, freshly
/// allocated (isomorphic, store ids all different) copy of a batched stream
/// must hit the memo instead of recompiling — under every shipped kernel
/// backend, including `simd` — and all backends must agree bitwise on every
/// observable store. Memo entries are per-context and a context pins one
/// backend, so each backend id exercises its own cache and its own compiled
/// skeletons here.
#[test]
fn isomorphic_windows_replay_one_skeleton_under_every_backend() {
    use diffuse::{Context, DiffuseConfig};
    use kernel::{BackendKind, BufferId, BufferRole, KernelModule, LoopBuilder};
    use machine::MachineConfig;

    const GPUS: usize = 4;
    const N: u64 = 16;
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for backend in [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd] {
        let ctx = Context::new(
            DiffuseConfig::fused(MachineConfig::with_gpus(GPUS))
                .with_backend(backend)
                .with_window(256, 256),
        );
        let lib = ctx.register_library("memo_replay");
        let scale = lib.register(
            "scale",
            diffuse::TaskSignature::new().read().write().scalars(1),
            |_args| {
                let mut m = KernelModule::new(2);
                m.set_role(BufferId(1), BufferRole::Output);
                let mut b = LoopBuilder::new("scale", BufferId(1));
                let x = b.load(BufferId(0));
                let s = b.param(0);
                let v = b.mul(x, s);
                b.store(BufferId(1), v);
                m.push_loop(b.finish());
                m
            },
        );
        let p = Partition::block(vec![N / GPUS as u64]);

        let mut all_bits: Vec<Vec<u64>> = Vec::new();
        let mut rounds = Vec::new();
        for round in 0..2u32 {
            // Fresh stores every round: the second window is isomorphic to
            // the first, never identical.
            let input = ctx.create_store(vec![N], "in");
            ctx.fill(&input, 1.0 + f64::from(round) * 0.5);
            let stats0 = ctx.stats();
            let mut cur = input;
            for step in 0..2 {
                let next = ctx.create_store(vec![N], "link");
                ctx.task(scale)
                    .read(&cur, p.clone())
                    .write(&next, p.clone())
                    .scalar(1.25 + f64::from(step) * 0.5)
                    .launch();
                cur = next;
            }
            ctx.flush();
            all_bits.push(
                ctx.read_store(&cur)
                    .unwrap()
                    .into_iter()
                    .map(f64::to_bits)
                    .collect(),
            );
            rounds.push(ctx.stats().since(&stats0));
        }
        assert!(
            rounds[0].memo_misses >= 1,
            "{}: the first window must miss and compile",
            backend.id()
        );
        assert!(rounds[0].compilations >= 1);
        assert!(
            rounds[1].memo_hits >= 1,
            "{}: the isomorphic replay must hit the memo",
            backend.id()
        );
        assert_eq!(
            rounds[1].compilations, 0,
            "{}: a memo hit must skip backend compilation",
            backend.id()
        );
        match &reference {
            None => reference = Some(all_bits),
            Some(expected) => assert_eq!(
                expected,
                &all_bits,
                "{} diverged from the interpreter",
                backend.id()
            ),
        }
    }
}
