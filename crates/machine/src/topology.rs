//! Mapping between global GPU indices and nodes.

use crate::MachineConfig;

/// Identifier of a GPU in the machine, numbered globally from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub usize);

/// Identifier of a node in the machine, numbered from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Answers locality questions about a [`MachineConfig`]: which node a GPU is
/// on and whether two GPUs communicate over NVLink or the network.
#[derive(Debug, Clone)]
pub struct Topology {
    gpus_per_node: usize,
    total_gpus: usize,
}

impl Topology {
    /// Builds the topology for a machine configuration.
    pub fn new(config: &MachineConfig) -> Self {
        Topology {
            gpus_per_node: config.gpus_per_node,
            total_gpus: config.total_gpus(),
        }
    }

    /// Total number of GPUs.
    pub fn total_gpus(&self) -> usize {
        self.total_gpus
    }

    /// Node that owns GPU `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range for the machine.
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        assert!(gpu.0 < self.total_gpus, "gpu {} out of range", gpu.0);
        NodeId(gpu.0 / self.gpus_per_node)
    }

    /// Whether the two GPUs live on the same node (and therefore communicate
    /// over NVLink rather than the network).
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterator over all GPU ids in the machine.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.total_gpus).map(GpuId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_assignment() {
        let t = Topology::new(&MachineConfig::a100_superpod(2));
        assert_eq!(t.node_of(GpuId(0)), NodeId(0));
        assert_eq!(t.node_of(GpuId(7)), NodeId(0));
        assert_eq!(t.node_of(GpuId(8)), NodeId(1));
        assert_eq!(t.node_of(GpuId(15)), NodeId(1));
    }

    #[test]
    fn same_node_checks() {
        let t = Topology::new(&MachineConfig::a100_superpod(2));
        assert!(t.same_node(GpuId(0), GpuId(7)));
        assert!(!t.same_node(GpuId(7), GpuId(8)));
    }

    #[test]
    #[should_panic]
    fn out_of_range_gpu_panics() {
        let t = Topology::new(&MachineConfig::single_node(4));
        let _ = t.node_of(GpuId(4));
    }

    #[test]
    fn gpu_iterator_covers_machine() {
        let t = Topology::new(&MachineConfig::a100_superpod(2));
        let ids: Vec<_> = t.gpus().collect();
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0], GpuId(0));
        assert_eq!(ids[15], GpuId(15));
    }

    #[test]
    fn display_impls() {
        assert_eq!(GpuId(3).to_string(), "gpu3");
        assert_eq!(NodeId(2).to_string(), "node2");
    }
}
