//! Machine description used by the cost model.

/// Description of the simulated distributed GPU machine.
///
/// The defaults in [`MachineConfig::a100_superpod`] approximate the NVIDIA
/// A100 DGX SuperPOD used in the paper's evaluation (Section 7): 8 A100-80GB
/// GPUs per node, NVLink/NVSwitch within a node, and 8 InfiniBand NICs per
/// node between nodes.
///
/// All bandwidths are bytes/second and all latencies/overheads are seconds so
/// the cost model never needs unit conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes in the machine.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Achievable HBM streaming bandwidth per GPU (bytes/s).
    pub gpu_bandwidth: f64,
    /// Peak double-precision throughput per GPU (FLOP/s).
    pub gpu_peak_flops: f64,
    /// Device memory per GPU (bytes).
    pub gpu_memory: f64,
    /// Fixed overhead of launching one GPU kernel (seconds).
    pub kernel_launch_overhead: f64,
    /// Per-task overhead imposed by the task-based runtime (seconds).
    ///
    /// The paper cites Legion's minimum effective task granularity of roughly
    /// 1 ms per task; a well-pipelined runtime hides part of it, so the
    /// default charges a fraction of that per task on the critical path.
    pub task_runtime_overhead: f64,
    /// Per-task overhead of an explicitly parallel MPI library (seconds).
    ///
    /// Used by the PETSc-equivalent baseline, which does not pay dynamic
    /// dependence-analysis costs.
    pub mpi_call_overhead: f64,
    /// Achievable NVLink/NVSwitch bandwidth between two GPUs in the same node
    /// (bytes/s).
    pub nvlink_bandwidth: f64,
    /// Achievable network bandwidth between two GPUs on different nodes
    /// (bytes/s, per GPU pair).
    pub network_bandwidth: f64,
    /// One-way network latency between nodes (seconds).
    pub network_latency: f64,
    /// Latency of an intra-node GPU-to-GPU copy (seconds).
    pub nvlink_latency: f64,
}

impl MachineConfig {
    /// A machine shaped like the paper's evaluation platform with the given
    /// number of nodes (8 GPUs per node).
    pub fn a100_superpod(nodes: usize) -> Self {
        MachineConfig {
            nodes: nodes.max(1),
            gpus_per_node: 8,
            // ~2.0 TB/s peak HBM2e, ~1.7 TB/s achievable on streaming kernels.
            gpu_bandwidth: 1.7e12,
            // 9.7 TFLOP/s FP64 (19.5 with tensor cores; plain FMA pipeline here).
            gpu_peak_flops: 9.7e12,
            gpu_memory: 80.0 * 1e9,
            kernel_launch_overhead: 6e-6,
            task_runtime_overhead: 350e-6,
            mpi_call_overhead: 25e-6,
            nvlink_bandwidth: 250e9,
            network_bandwidth: 22e9,
            network_latency: 4e-6,
            nvlink_latency: 2e-6,
        }
    }

    /// A single-node machine with the given number of GPUs, otherwise shaped
    /// like [`MachineConfig::a100_superpod`]. Useful for small tests.
    pub fn single_node(gpus: usize) -> Self {
        MachineConfig {
            nodes: 1,
            gpus_per_node: gpus.max(1),
            ..MachineConfig::a100_superpod(1)
        }
    }

    /// A machine with exactly `gpus` GPUs arranged into nodes of at most 8,
    /// mirroring how the paper scales from 1 to 128 GPUs.
    pub fn with_gpus(gpus: usize) -> Self {
        let gpus = gpus.max(1);
        if gpus <= 8 {
            Self::single_node(gpus)
        } else {
            assert!(
                gpus.is_multiple_of(8),
                "multi-node configurations must use whole nodes of 8 GPUs, got {gpus}"
            );
            Self::a100_superpod(gpus / 8)
        }
    }

    /// Total number of GPUs in the machine.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::a100_superpod(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superpod_gpu_count() {
        assert_eq!(MachineConfig::a100_superpod(4).total_gpus(), 32);
        assert_eq!(MachineConfig::a100_superpod(16).total_gpus(), 128);
    }

    #[test]
    fn with_gpus_small_counts_are_single_node() {
        for g in 1..=8 {
            let c = MachineConfig::with_gpus(g);
            assert_eq!(c.nodes, 1);
            assert_eq!(c.total_gpus(), g);
        }
    }

    #[test]
    fn with_gpus_large_counts_use_whole_nodes() {
        let c = MachineConfig::with_gpus(128);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.total_gpus(), 128);
    }

    #[test]
    #[should_panic]
    fn with_gpus_rejects_partial_nodes() {
        let _ = MachineConfig::with_gpus(12);
    }

    #[test]
    fn zero_nodes_clamped_to_one() {
        assert_eq!(MachineConfig::a100_superpod(0).nodes, 1);
        assert_eq!(MachineConfig::single_node(0).gpus_per_node, 1);
    }

    #[test]
    fn default_is_one_node() {
        assert_eq!(MachineConfig::default().total_gpus(), 8);
    }
}
