//! Per-GPU simulated clocks.

use crate::{GpuId, SimTime};

/// Tracks simulated time for every GPU in the machine.
///
/// Work issued to a GPU advances that GPU's clock; bulk-synchronous phases
/// (index-task launches, collectives) advance every GPU to the maximum clock
/// before adding the phase's time, which models the implicit barrier at task
/// boundaries in a bulk-synchronous execution of data-parallel programs.
#[derive(Debug, Clone)]
pub struct SimClock {
    times: Vec<SimTime>,
}

impl SimClock {
    /// Creates a clock for `gpus` GPUs, all starting at time zero.
    pub fn new(gpus: usize) -> Self {
        SimClock {
            times: vec![0.0; gpus.max(1)],
        }
    }

    /// Number of GPUs tracked.
    pub fn gpus(&self) -> usize {
        self.times.len()
    }

    /// Current simulated time of one GPU.
    pub fn time_of(&self, gpu: GpuId) -> SimTime {
        self.times[gpu.0]
    }

    /// The machine-wide simulated time: the maximum over all GPU clocks.
    pub fn now(&self) -> SimTime {
        self.times.iter().cloned().fold(0.0, f64::max)
    }

    /// Advances a single GPU's clock by `dt` seconds.
    pub fn advance(&mut self, gpu: GpuId, dt: SimTime) {
        assert!(dt >= 0.0, "cannot advance time by a negative amount");
        self.times[gpu.0] += dt;
    }

    /// Synchronizes all GPUs to the global maximum time (a barrier).
    pub fn barrier(&mut self) {
        let now = self.now();
        for t in &mut self.times {
            *t = now;
        }
    }

    /// Models a bulk-synchronous phase: synchronizes all GPUs, then advances
    /// every GPU by the per-GPU durations in `durations` (indexed by GPU).
    /// GPUs not named keep the barrier time. Returns the new global time.
    pub fn bulk_phase(&mut self, durations: &[(GpuId, SimTime)]) -> SimTime {
        self.barrier();
        for (gpu, dt) in durations {
            self.advance(*gpu, *dt);
        }
        self.now()
    }

    /// Models a bulk-synchronous phase in which every GPU does the same amount
    /// of work. Returns the new global time.
    pub fn uniform_phase(&mut self, dt: SimTime) -> SimTime {
        self.barrier();
        for t in &mut self.times {
            *t += dt;
        }
        self.now()
    }

    /// Resets every GPU's clock to zero.
    pub fn reset(&mut self) {
        for t in &mut self.times {
            *t = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new(4);
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.time_of(GpuId(2)), 0.0);
    }

    #[test]
    fn advance_single_gpu() {
        let mut c = SimClock::new(2);
        c.advance(GpuId(0), 1.5);
        assert_eq!(c.time_of(GpuId(0)), 1.5);
        assert_eq!(c.time_of(GpuId(1)), 0.0);
        assert_eq!(c.now(), 1.5);
    }

    #[test]
    fn barrier_synchronizes() {
        let mut c = SimClock::new(3);
        c.advance(GpuId(1), 2.0);
        c.barrier();
        for g in 0..3 {
            assert_eq!(c.time_of(GpuId(g)), 2.0);
        }
    }

    #[test]
    fn bulk_phase_takes_max() {
        let mut c = SimClock::new(2);
        let now = c.bulk_phase(&[(GpuId(0), 1.0), (GpuId(1), 3.0)]);
        assert_eq!(now, 3.0);
        let now = c.bulk_phase(&[(GpuId(0), 2.0)]);
        assert_eq!(now, 5.0);
    }

    #[test]
    fn uniform_phase_advances_all() {
        let mut c = SimClock::new(4);
        c.uniform_phase(0.5);
        c.uniform_phase(0.25);
        assert_eq!(c.now(), 0.75);
        for g in 0..4 {
            assert_eq!(c.time_of(GpuId(g)), 0.75);
        }
    }

    #[test]
    fn reset_zeroes_clocks() {
        let mut c = SimClock::new(2);
        c.uniform_phase(1.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_advance_panics() {
        let mut c = SimClock::new(1);
        c.advance(GpuId(0), -1.0);
    }
}
