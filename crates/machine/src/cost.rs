//! Analytic performance model for kernels, launches, tasks and transfers.

use crate::{GpuId, MachineConfig, SimTime, Topology};

/// Analytic cost model over a [`MachineConfig`].
///
/// The model follows the structure described in DESIGN.md: a GPU kernel costs
/// the maximum of its memory-traffic time and its arithmetic time plus a fixed
/// launch overhead; a task additionally pays the runtime's per-task overhead;
/// and moving bytes between GPUs pays latency plus bytes over the bandwidth of
/// the narrowest link crossed (NVLink within a node, InfiniBand across nodes).
#[derive(Debug, Clone)]
pub struct CostModel {
    config: MachineConfig,
    topology: Topology,
}

impl CostModel {
    /// Creates a cost model for the given machine.
    pub fn new(config: MachineConfig) -> Self {
        let topology = Topology::new(&config);
        CostModel { config, topology }
    }

    /// The machine description this model was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The machine topology this model was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Time for one GPU kernel that moves `bytes` through device memory and
    /// performs `flops` floating point operations, excluding launch overhead.
    ///
    /// The roofline-style estimate takes the maximum of the bandwidth term and
    /// the compute term; `extra_passes` charges additional full passes over
    /// the moved data (used for kernels with poor locality).
    pub fn kernel_time(&self, bytes: u64, flops: u64, extra_passes: u64) -> SimTime {
        let bw_time = (bytes as f64) * (1 + extra_passes) as f64 / self.config.gpu_bandwidth;
        let compute_time = flops as f64 / self.config.gpu_peak_flops;
        bw_time.max(compute_time)
    }

    /// Fixed overhead of launching a single GPU kernel.
    pub fn launch_time(&self) -> SimTime {
        self.config.kernel_launch_overhead
    }

    /// Per-task overhead charged by the dynamic task-based runtime
    /// (dependence analysis, mapping, and metadata movement).
    pub fn task_overhead(&self) -> SimTime {
        self.config.task_runtime_overhead
    }

    /// Per-operation overhead charged by the explicitly parallel MPI baseline.
    pub fn mpi_overhead(&self) -> SimTime {
        self.config.mpi_call_overhead
    }

    /// Time to move `bytes` from GPU `src` to GPU `dst`.
    ///
    /// Transfers within a GPU are free; transfers within a node use NVLink;
    /// transfers across nodes use the network.
    pub fn transfer_time(&self, bytes: u64, src: GpuId, dst: GpuId) -> SimTime {
        if src == dst {
            return 0.0;
        }
        if self.topology.same_node(src, dst) {
            self.config.nvlink_latency + bytes as f64 / self.config.nvlink_bandwidth
        } else {
            self.config.network_latency + bytes as f64 / self.config.network_bandwidth
        }
    }

    /// Time for every GPU to exchange `bytes_per_gpu` with a small, fixed set
    /// of neighbours (halo exchange). `off_node_fraction` in `[0, 1]` gives the
    /// fraction of the exchanged data that crosses node boundaries.
    pub fn halo_exchange_time(&self, bytes_per_gpu: u64, off_node_fraction: f64) -> SimTime {
        if bytes_per_gpu == 0 || self.topology.total_gpus() == 1 {
            return 0.0;
        }
        let frac = off_node_fraction.clamp(0.0, 1.0);
        let on_node = bytes_per_gpu as f64 * (1.0 - frac);
        let off_node = bytes_per_gpu as f64 * frac;
        let mut t = 0.0;
        if on_node > 0.0 {
            t += self.config.nvlink_latency + on_node / self.config.nvlink_bandwidth;
        }
        if off_node > 0.0 && self.config.nodes > 1 {
            t += self.config.network_latency + off_node / self.config.network_bandwidth;
        } else if off_node > 0.0 {
            // Single-node machine: "off node" traffic stays on NVLink.
            t += self.config.nvlink_latency + off_node / self.config.nvlink_bandwidth;
        }
        t
    }

    /// Time for an all-gather in which every GPU ends up with the full
    /// `total_bytes` of a value currently partitioned across all GPUs.
    ///
    /// Modelled as a ring: each GPU receives `total_bytes * (G-1)/G`, limited
    /// by the slowest link it must traverse.
    pub fn allgather_time(&self, total_bytes: u64) -> SimTime {
        let g = self.topology.total_gpus();
        if g <= 1 || total_bytes == 0 {
            return 0.0;
        }
        let recv_bytes = total_bytes as f64 * (g as f64 - 1.0) / g as f64;
        let bw = if self.config.nodes > 1 {
            self.config.network_bandwidth
        } else {
            self.config.nvlink_bandwidth
        };
        let latency = if self.config.nodes > 1 {
            self.config.network_latency
        } else {
            self.config.nvlink_latency
        };
        latency * (g as f64 - 1.0).log2().max(1.0) + recv_bytes / bw
    }

    /// Time for an all-reduce of `bytes_per_gpu` (for example the partial sums
    /// of a distributed dot product). Modelled as a latency-dominated
    /// tree reduction plus broadcast, since the reduced values are tiny.
    pub fn allreduce_time(&self, bytes_per_gpu: u64) -> SimTime {
        let g = self.topology.total_gpus();
        if g <= 1 {
            return 0.0;
        }
        let rounds = (g as f64).log2().ceil().max(1.0);
        let latency = if self.config.nodes > 1 {
            self.config.network_latency
        } else {
            self.config.nvlink_latency
        };
        let bw = if self.config.nodes > 1 {
            self.config.network_bandwidth
        } else {
            self.config.nvlink_bandwidth
        };
        2.0 * rounds * (latency + bytes_per_gpu as f64 / bw)
    }

    /// Fraction of a block-partitioned array's halo traffic that crosses node
    /// boundaries when the array is distributed over all GPUs in contiguous
    /// blocks. With `G` GPUs in nodes of `n`, `(G/n - 1)` of the `G - 1`
    /// internal block boundaries separate different nodes.
    pub fn off_node_boundary_fraction(&self) -> f64 {
        let g = self.topology.total_gpus();
        if g <= 1 {
            return 0.0;
        }
        let node_boundaries = (self.config.nodes - 1) as f64;
        let total_boundaries = (g - 1) as f64;
        node_boundaries / total_boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gpus: usize) -> CostModel {
        CostModel::new(MachineConfig::with_gpus(gpus))
    }

    #[test]
    fn kernel_time_scales_with_bytes() {
        let m = model(1);
        let t1 = m.kernel_time(1 << 20, 0, 0);
        let t2 = m.kernel_time(1 << 24, 0, 0);
        assert!(t2 > t1 * 15.0 && t2 < t1 * 17.0);
    }

    #[test]
    fn kernel_time_roofline_picks_max() {
        let m = model(1);
        // Huge flop count with no bytes: compute bound.
        let compute = m.kernel_time(0, 1 << 40, 0);
        assert!(compute > 0.0);
        // Huge byte count with no flops: bandwidth bound.
        let bw = m.kernel_time(1 << 40, 0, 0);
        assert!(bw > 0.0);
        let both = m.kernel_time(1 << 40, 1 << 40, 0);
        assert!((both - compute.max(bw)).abs() < 1e-12);
    }

    #[test]
    fn extra_passes_increase_time() {
        let m = model(1);
        assert!(m.kernel_time(1 << 24, 0, 1) > m.kernel_time(1 << 24, 0, 0));
    }

    #[test]
    fn transfer_same_gpu_is_free() {
        let m = model(8);
        assert_eq!(m.transfer_time(1 << 30, GpuId(3), GpuId(3)), 0.0);
    }

    #[test]
    fn transfer_cross_node_slower_than_intra_node() {
        let m = model(16);
        let intra = m.transfer_time(1 << 26, GpuId(0), GpuId(1));
        let inter = m.transfer_time(1 << 26, GpuId(0), GpuId(8));
        assert!(inter > intra);
    }

    #[test]
    fn halo_exchange_zero_on_single_gpu() {
        let m = model(1);
        assert_eq!(m.halo_exchange_time(1 << 20, 0.5), 0.0);
    }

    #[test]
    fn allgather_grows_with_gpus() {
        let small = model(8).allgather_time(1 << 28);
        let large = model(64).allgather_time(1 << 28);
        assert!(large > small);
    }

    #[test]
    fn allreduce_zero_on_single_gpu() {
        assert_eq!(model(1).allreduce_time(8), 0.0);
        assert!(model(16).allreduce_time(8) > 0.0);
    }

    #[test]
    fn off_node_fraction_bounds() {
        assert_eq!(model(1).off_node_boundary_fraction(), 0.0);
        assert_eq!(model(8).off_node_boundary_fraction(), 0.0);
        let f = model(128).off_node_boundary_fraction();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn task_overhead_exceeds_mpi_overhead() {
        let m = model(8);
        assert!(m.task_overhead() > m.mpi_overhead());
    }
}
