//! Per-GPU device-memory accounting.

use crate::GpuId;

/// Tracks the number of bytes allocated on each GPU and the allocation
/// high-water mark.
///
/// The paper's motivation for temporary-store elimination (Section 5.1) is
/// that unfused task streams allocate distributed temporaries for every
/// intermediate result. This tracker lets the reproduction report exactly how
/// many bytes of distributed temporaries fusion removed.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    current: Vec<u64>,
    peak: Vec<u64>,
    total_allocated: u64,
    allocation_count: u64,
}

impl MemoryTracker {
    /// Creates a tracker for `gpus` GPUs with nothing allocated.
    pub fn new(gpus: usize) -> Self {
        let gpus = gpus.max(1);
        MemoryTracker {
            current: vec![0; gpus],
            peak: vec![0; gpus],
            total_allocated: 0,
            allocation_count: 0,
        }
    }

    /// Records an allocation of `bytes` on GPU `gpu`.
    pub fn allocate(&mut self, gpu: GpuId, bytes: u64) {
        self.current[gpu.0] += bytes;
        self.peak[gpu.0] = self.peak[gpu.0].max(self.current[gpu.0]);
        self.total_allocated += bytes;
        self.allocation_count += 1;
    }

    /// Records an allocation of `bytes_per_gpu` on every GPU (a distributed
    /// allocation partitioned evenly across the machine).
    pub fn allocate_distributed(&mut self, bytes_per_gpu: u64) {
        for g in 0..self.current.len() {
            self.allocate(GpuId(g), bytes_per_gpu);
        }
        // Distributed allocations count as one logical allocation.
        self.allocation_count -= self.current.len() as u64;
        self.allocation_count += 1;
    }

    /// Records a free of `bytes` on GPU `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if more bytes are freed than are currently allocated.
    pub fn free(&mut self, gpu: GpuId, bytes: u64) {
        assert!(
            self.current[gpu.0] >= bytes,
            "freeing {} bytes but only {} allocated on {}",
            bytes,
            self.current[gpu.0],
            gpu
        );
        self.current[gpu.0] -= bytes;
    }

    /// Records a distributed free of `bytes_per_gpu` on every GPU.
    pub fn free_distributed(&mut self, bytes_per_gpu: u64) {
        for g in 0..self.current.len() {
            self.free(GpuId(g), bytes_per_gpu);
        }
    }

    /// Bytes currently allocated on one GPU.
    pub fn current_bytes(&self, gpu: GpuId) -> u64 {
        self.current[gpu.0]
    }

    /// High-water mark of allocated bytes on one GPU.
    pub fn peak_bytes(&self, gpu: GpuId) -> u64 {
        self.peak[gpu.0]
    }

    /// The largest per-GPU high-water mark across the machine.
    pub fn max_peak_bytes(&self) -> u64 {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// Total bytes ever allocated across the whole machine.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Number of logical allocations recorded.
    pub fn allocation_count(&self) -> u64 {
        self.allocation_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free() {
        let mut m = MemoryTracker::new(2);
        m.allocate(GpuId(0), 100);
        m.allocate(GpuId(0), 50);
        assert_eq!(m.current_bytes(GpuId(0)), 150);
        m.free(GpuId(0), 100);
        assert_eq!(m.current_bytes(GpuId(0)), 50);
        assert_eq!(m.peak_bytes(GpuId(0)), 150);
        assert_eq!(m.current_bytes(GpuId(1)), 0);
    }

    #[test]
    fn distributed_allocation_touches_every_gpu() {
        let mut m = MemoryTracker::new(4);
        m.allocate_distributed(1024);
        for g in 0..4 {
            assert_eq!(m.current_bytes(GpuId(g)), 1024);
        }
        assert_eq!(m.allocation_count(), 1);
        assert_eq!(m.total_allocated(), 4096);
        m.free_distributed(1024);
        assert_eq!(m.current_bytes(GpuId(0)), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new(1);
        m.allocate(GpuId(0), 10);
        m.free(GpuId(0), 10);
        m.allocate(GpuId(0), 5);
        assert_eq!(m.peak_bytes(GpuId(0)), 10);
        assert_eq!(m.max_peak_bytes(), 10);
    }

    #[test]
    #[should_panic]
    fn over_free_panics() {
        let mut m = MemoryTracker::new(1);
        m.allocate(GpuId(0), 10);
        m.free(GpuId(0), 11);
    }
}
