//! Simulated distributed GPU machine and analytic cost model.
//!
//! The paper evaluates Diffuse on an NVIDIA A100 DGX SuperPOD: nodes of 8 A100
//! GPUs connected by NVLink/NVSwitch within a node and InfiniBand between
//! nodes. This crate provides the stand-in for that hardware: a description of
//! the machine ([`MachineConfig`]), a topology helper ([`Topology`]) mapping
//! global GPU indices to nodes, an analytic cost model ([`CostModel`]) for
//! kernels, kernel launches, task overheads and data transfers, a per-GPU
//! simulated clock ([`SimClock`]), and a per-GPU memory tracker
//! ([`MemoryTracker`]).
//!
//! All execution in this reproduction is *functional* (kernels run on real
//! buffers on the host) while *performance* is simulated through this crate's
//! cost model. Weak-scaling shapes in the paper are driven by bytes moved,
//! kernel-launch counts, per-task runtime overhead and network traffic — all
//! of which the model captures.
//!
//! # Example
//!
//! ```
//! use machine::{MachineConfig, CostModel};
//!
//! let config = MachineConfig::a100_superpod(2); // 2 nodes x 8 GPUs
//! assert_eq!(config.total_gpus(), 16);
//! let cost = CostModel::new(config);
//! // A kernel streaming 1 GiB on one GPU takes on the order of a millisecond.
//! let t = cost.kernel_time(1 << 30, 0, 0);
//! assert!(t > 0.0 && t < 0.1);
//! ```

pub mod clock;
pub mod config;
pub mod cost;
pub mod memory;
pub mod topology;

pub use clock::SimClock;
pub use config::MachineConfig;
pub use cost::CostModel;
pub use memory::MemoryTracker;
pub use topology::{GpuId, NodeId, Topology};

/// Seconds of simulated time. All cost-model results are expressed in seconds.
pub type SimTime = f64;
