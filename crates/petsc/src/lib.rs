//! An explicitly parallel, hand-fused solver baseline (the PETSc stand-in).
//!
//! The paper compares Diffuse-optimized cuPyNumeric/Legate Sparse solvers
//! against solvers written in MPI+C with PETSc, which (a) pays only small
//! per-call overheads instead of a dynamic runtime's per-task overhead,
//! (b) ships hand-fused vector kernels such as `VecAXPBYPCZ`, and (c) stores
//! sparse coordinates as 32-bit integers. This crate reproduces that baseline
//! directly on the Legion-style [`runtime`] substrate: every operation is a
//! single launch with [`runtime::OverheadClass::Mpi`], vector updates are
//! performed in place with hand-written fused kernels, and SpMV uses 32-bit
//! coordinates.
//!
//! The two solvers the evaluation needs — Conjugate Gradient and BiCGSTAB —
//! are provided as [`PetscSolver::cg`] and [`PetscSolver::bicgstab`].
//!
//! # Example
//!
//! ```
//! use machine::MachineConfig;
//! use petsc::PetscSolver;
//!
//! // A functional run (real arithmetic) of CG on an 8×8 Poisson grid.
//! let mut solver = PetscSolver::new(MachineConfig::single_node(4), true);
//! let a = solver.poisson_2d(8); // 64 unknowns
//! let b = solver.vector(64, 1.0);
//! let x = solver.vector(64, 0.0);
//! let result = solver.cg(&a, b, x, 10);
//! assert_eq!(result.iterations, 10);
//! assert!(result.elapsed > 0.0, "simulated time advances");
//! assert!(result.residual.unwrap().is_finite());
//! ```

use ir::{Domain, Partition, PartitionId};
use kernel::{
    BufferId, BufferRole, IndexWidth, KernelModule, LoopBuilder, OpaqueOp, ReduceOp,
};
use machine::MachineConfig;
use runtime::{
    OverheadClass, RegionId, Runtime, RuntimeConfig, TaskLaunch, TaskLaunchBuilder,
};

/// Result of running a solver: simulated time and (in functional mode) the
/// final residual norm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveResult {
    /// Iterations executed.
    pub iterations: u64,
    /// Simulated seconds for the measured iterations (excludes setup).
    pub elapsed: f64,
    /// Final squared residual norm, when running functionally.
    pub residual: Option<f64>,
}

/// The explicitly parallel solver library.
#[derive(Debug)]
pub struct PetscSolver {
    rt: Runtime,
    gpus: u64,
}

/// A CSR matrix owned by the baseline (regions on the runtime).
#[derive(Debug, Clone)]
pub struct PetscCsr {
    pos: RegionId,
    crd: RegionId,
    vals: RegionId,
    rows: u64,
    nnz: u64,
}

impl PetscSolver {
    /// Creates the baseline over a machine, optionally executing functionally.
    pub fn new(machine: MachineConfig, functional: bool) -> Self {
        let config = if functional {
            RuntimeConfig::functional(machine)
        } else {
            RuntimeConfig::simulation_only(machine)
        };
        let rt = Runtime::new(config);
        let gpus = rt.gpus() as u64;
        PetscSolver { rt, gpus }
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> u64 {
        self.gpus
    }

    /// Simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.rt.elapsed()
    }

    /// Resets the simulated clock (e.g. after assembly/setup).
    pub fn reset_timing(&mut self) {
        self.rt.reset_timing();
    }

    /// The interned block partition for a vector of `len` elements: hot PETSc
    /// call paths hand launches pre-interned partition ids, so building a
    /// requirement never walks or clones partition structure.
    fn block(&self, len: u64) -> PartitionId {
        PartitionId::intern(&Partition::block(vec![len.div_ceil(self.gpus).max(1)]))
    }

    /// Allocates a vector region of length `n`, optionally filled.
    pub fn vector(&mut self, n: u64, value: f64) -> RegionId {
        let r = self.rt.allocate_region(vec![n], "vec");
        self.rt.fill(r, value).expect("fill failed");
        r
    }

    /// Reads a vector back (functional mode only), synchronizing with any
    /// outstanding launches first.
    pub fn vector_data(&mut self, v: RegionId) -> Option<Vec<f64>> {
        self.rt.region_data(v)
    }

    /// Builds the 5-point Poisson matrix of an `n x n` grid in CSR form with
    /// 32-bit coordinates.
    pub fn poisson_2d(&mut self, n: u64) -> PetscCsr {
        let size = n * n;
        let mut pos = Vec::with_capacity(size as usize + 1);
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        pos.push(0.0);
        for i in 0..n {
            for j in 0..n {
                let mut push = |r: i64, c: i64, v: f64| {
                    if r >= 0 && c >= 0 && (r as u64) < n && (c as u64) < n {
                        crd.push((r as u64 * n + c as u64) as f64);
                        vals.push(v);
                    }
                };
                push(i as i64 - 1, j as i64, -1.0);
                push(i as i64, j as i64 - 1, -1.0);
                push(i as i64, j as i64, 4.0);
                push(i as i64, j as i64 + 1, -1.0);
                push(i as i64 + 1, j as i64, -1.0);
                pos.push(crd.len() as f64);
            }
        }
        let nnz = crd.len() as u64;
        let pos_r = self.rt.allocate_region(vec![size + 1], "pos");
        let crd_r = self.rt.allocate_region(vec![nnz], "crd");
        let vals_r = self.rt.allocate_region(vec![nnz], "vals");
        self.rt.write_region_data(pos_r, pos).unwrap();
        self.rt.write_region_data(crd_r, crd).unwrap();
        self.rt.write_region_data(vals_r, vals).unwrap();
        PetscCsr {
            pos: pos_r,
            crd: crd_r,
            vals: vals_r,
            rows: size,
            nnz,
        }
    }

    /// Symbolic variant of [`PetscSolver::poisson_2d`]: allocates the CSR
    /// regions with the right shapes but generates no host data. For use in
    /// simulation-only runs at machine-scale problem sizes.
    pub fn poisson_2d_symbolic(&mut self, n: u64) -> PetscCsr {
        let size = n * n;
        let nnz = 5 * size - 4 * n;
        PetscCsr {
            pos: self.rt.allocate_region(vec![size + 1], "pos"),
            crd: self.rt.allocate_region(vec![nnz], "crd"),
            vals: self.rt.allocate_region(vec![nnz], "vals"),
            rows: size,
            nnz,
        }
    }

    /// Starts a typed launch with the baseline's common settings pre-applied:
    /// the per-GPU launch domain, the MPI overhead class, and the compiled
    /// kernel. The baseline models PETSc's pre-compiled kernels: compilation
    /// through the runtime's backend happens per call but charges no
    /// simulated compile time (only Diffuse windows pay the JIT).
    fn mpi_task(&mut self, name: &str, module: &KernelModule) -> TaskLaunchBuilder {
        TaskLaunch::builder(name)
            .domain(Domain::linear(self.gpus))
            .overhead(OverheadClass::Mpi)
            .kernel(self.rt.compile(module).expect("petsc kernel compilation failed"))
    }

    fn run(&mut self, launch: TaskLaunch) {
        self.rt.execute(&launch).expect("petsc launch failed");
    }

    /// `y = A x` with 32-bit CSR coordinates.
    pub fn spmv(&mut self, a: &PetscCsr, x: RegionId, y: RegionId) {
        let mut module = KernelModule::new(5);
        module.set_role(BufferId(4), BufferRole::Output);
        module.push_opaque(OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: IndexWidth::U32,
        });
        let launch = self
            .mpi_task("MatMult", &module)
            .read(a.pos, self.block(a.rows + 1))
            .read(a.crd, self.block(a.nnz))
            .read(a.vals, self.block(a.nnz))
            .read(x, Partition::Replicate)
            .write(y, self.block(a.rows))
            .build();
        self.run(launch);
    }

    /// `y = y + alpha * x` (VecAXPY), in place.
    pub fn axpy(&mut self, n: u64, alpha: f64, x: RegionId, y: RegionId) {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::InOut);
        let mut b = LoopBuilder::new("VecAXPY", BufferId(1));
        let xv = b.load(BufferId(0));
        let yv = b.load(BufferId(1));
        let a = b.param(0);
        let ax = b.mul(a, xv);
        let v = b.add(yv, ax);
        b.store(BufferId(1), v);
        module.push_loop(b.finish());
        let launch = self
            .mpi_task("VecAXPY", &module)
            .read(x, self.block(n))
            .read_write(y, self.block(n))
            .scalar(alpha)
            .build();
        self.run(launch);
    }

    /// `y = x + beta * y` (VecAYPX), in place.
    pub fn aypx(&mut self, n: u64, beta: f64, x: RegionId, y: RegionId) {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::InOut);
        let mut b = LoopBuilder::new("VecAYPX", BufferId(1));
        let xv = b.load(BufferId(0));
        let yv = b.load(BufferId(1));
        let bt = b.param(0);
        let by = b.mul(bt, yv);
        let v = b.add(xv, by);
        b.store(BufferId(1), v);
        module.push_loop(b.finish());
        let launch = self
            .mpi_task("VecAYPX", &module)
            .read(x, self.block(n))
            .read_write(y, self.block(n))
            .scalar(beta)
            .build();
        self.run(launch);
    }

    /// `z = alpha * x + beta * y + gamma * z` (the fused VecAXPBYPCZ kernel
    /// PETSc exposes for BiCGSTAB).
    #[allow(clippy::too_many_arguments)] // mirrors PETSc's VecAXPBYPCZ signature
    pub fn axpbypcz(
        &mut self,
        n: u64,
        alpha: f64,
        x: RegionId,
        beta: f64,
        y: RegionId,
        gamma: f64,
        z: RegionId,
    ) {
        let mut module = KernelModule::new(3);
        module.set_role(BufferId(2), BufferRole::InOut);
        let mut b = LoopBuilder::new("VecAXPBYPCZ", BufferId(2));
        let xv = b.load(BufferId(0));
        let yv = b.load(BufferId(1));
        let zv = b.load(BufferId(2));
        let (pa, pb, pc) = (b.param(0), b.param(1), b.param(2));
        let ax = b.mul(pa, xv);
        let by = b.mul(pb, yv);
        let cz = b.mul(pc, zv);
        let s1 = b.add(ax, by);
        let v = b.add(s1, cz);
        b.store(BufferId(2), v);
        module.push_loop(b.finish());
        let launch = self
            .mpi_task("VecAXPBYPCZ", &module)
            .read(x, self.block(n))
            .read(y, self.block(n))
            .read_write(z, self.block(n))
            .scalars(&[alpha, beta, gamma])
            .build();
        self.run(launch);
    }

    /// Copies `x` into `y`.
    pub fn copy(&mut self, n: u64, x: RegionId, y: RegionId) {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut b = LoopBuilder::new("VecCopy", BufferId(1));
        let xv = b.load(BufferId(0));
        b.store(BufferId(1), xv);
        module.push_loop(b.finish());
        let launch = self
            .mpi_task("VecCopy", &module)
            .read(x, self.block(n))
            .write(y, self.block(n))
            .build();
        self.run(launch);
    }

    /// Dot product. Returns the value in functional mode and `None` otherwise
    /// (the caller then continues with a placeholder, which does not affect
    /// the simulated cost).
    pub fn dot(&mut self, n: u64, x: RegionId, y: RegionId) -> Option<f64> {
        let result = self.rt.allocate_region(vec![1], "dot");
        let mut module = KernelModule::new(3);
        module.set_role(BufferId(2), BufferRole::Reduction);
        let mut b = LoopBuilder::new("VecDot", BufferId(0));
        let xv = b.load(BufferId(0));
        let yv = b.load(BufferId(1));
        let p = b.mul(xv, yv);
        b.reduce(BufferId(2), ReduceOp::Sum, p);
        module.push_loop(b.finish());
        let launch = self
            .mpi_task("VecDot", &module)
            .read(x, self.block(n))
            .read(y, self.block(n))
            .reduce(result, Partition::Replicate, ir::ReductionOp::Sum)
            .build();
        self.run(launch);
        let value = self.rt.region_data(result).map(|d| d[0]);
        let _ = self.rt.free_region(result);
        value
    }

    /// Conjugate gradient on `A x = b`, starting from `x = 0`, for a fixed
    /// number of iterations (mirroring the weak-scaling methodology: no
    /// convergence test, warmup excluded by the caller via
    /// [`PetscSolver::reset_timing`]).
    pub fn cg(&mut self, a: &PetscCsr, b: RegionId, x: RegionId, iterations: u64) -> SolveResult {
        let n = a.rows;
        let r = self.vector(n, 0.0);
        let p = self.vector(n, 0.0);
        let q = self.vector(n, 0.0);
        // r = b (x = 0), p = r.
        self.copy(n, b, r);
        self.copy(n, r, p);
        let mut rs_old = self.dot(n, r, r).unwrap_or(1.0);
        let start = self.elapsed();
        for _ in 0..iterations {
            self.spmv(a, p, q);
            let p_ap = self.dot(n, p, q).unwrap_or(1.0);
            let alpha = if p_ap != 0.0 { rs_old / p_ap } else { 0.0 };
            self.axpy(n, alpha, p, x);
            self.axpy(n, -alpha, q, r);
            let rs_new = self.dot(n, r, r).unwrap_or(1.0);
            let beta = if rs_old != 0.0 { rs_new / rs_old } else { 0.0 };
            self.aypx(n, beta, r, p);
            rs_old = rs_new;
        }
        SolveResult {
            iterations,
            elapsed: self.elapsed() - start,
            residual: if self.rt.is_functional() {
                Some(rs_old)
            } else {
                None
            },
        }
    }

    /// BiCGSTAB on `A x = b`, starting from `x = 0`, for a fixed number of
    /// iterations, using the fused `VecAXPBYPCZ` kernel as PETSc does.
    pub fn bicgstab(
        &mut self,
        a: &PetscCsr,
        b: RegionId,
        x: RegionId,
        iterations: u64,
    ) -> SolveResult {
        let n = a.rows;
        let r = self.vector(n, 0.0);
        let r0 = self.vector(n, 0.0);
        let p = self.vector(n, 0.0);
        let v = self.vector(n, 0.0);
        let s = self.vector(n, 0.0);
        let t = self.vector(n, 0.0);
        self.copy(n, b, r);
        self.copy(n, r, r0);
        self.copy(n, r, p);
        let mut rho = self.dot(n, r0, r).unwrap_or(1.0);
        let start = self.elapsed();
        for _ in 0..iterations {
            self.spmv(a, p, v);
            let r0v = self.dot(n, r0, v).unwrap_or(1.0);
            let alpha = if r0v != 0.0 { rho / r0v } else { 0.0 };
            // s = r - alpha v
            self.copy(n, r, s);
            self.axpy(n, -alpha, v, s);
            self.spmv(a, s, t);
            let tt = self.dot(n, t, t).unwrap_or(1.0);
            let ts = self.dot(n, t, s).unwrap_or(0.5);
            let omega = if tt != 0.0 { ts / tt } else { 0.0 };
            // x = x + alpha p + omega s
            self.axpy(n, alpha, p, x);
            self.axpy(n, omega, s, x);
            // r = s - omega t
            self.copy(n, s, r);
            self.axpy(n, -omega, t, r);
            let rho_new = self.dot(n, r0, r).unwrap_or(1.0);
            let beta = if rho != 0.0 && omega != 0.0 {
                (rho_new / rho) * (alpha / omega)
            } else {
                0.0
            };
            // p = r + beta (p - omega v): the fused VecAXPBYPCZ update.
            self.axpbypcz(n, 1.0, r, -beta * omega, v, beta, p);
            rho = rho_new;
        }
        let residual = self.dot(n, r, r);
        SolveResult {
            iterations,
            elapsed: self.elapsed() - start,
            residual: if self.rt.is_functional() { residual } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver(gpus: usize) -> PetscSolver {
        PetscSolver::new(MachineConfig::with_gpus(gpus), true)
    }

    #[test]
    fn vector_ops_are_correct() {
        let mut s = solver(2);
        let x = s.vector(8, 2.0);
        let y = s.vector(8, 1.0);
        s.axpy(8, 3.0, x, y); // y = 1 + 3*2 = 7
        assert_eq!(s.vector_data(y).unwrap(), vec![7.0; 8]);
        s.aypx(8, 0.5, x, y); // y = 2 + 0.5*7 = 5.5
        assert_eq!(s.vector_data(y).unwrap(), vec![5.5; 8]);
        let z = s.vector(8, 1.0);
        s.axpbypcz(8, 2.0, x, 1.0, y, 0.5, z); // z = 4 + 5.5 + 0.5 = 10
        assert_eq!(s.vector_data(z).unwrap(), vec![10.0; 8]);
        assert_eq!(s.dot(8, x, y).unwrap(), 8.0 * 2.0 * 5.5);
    }

    #[test]
    fn cg_converges_on_poisson() {
        let mut s = solver(2);
        let a = s.poisson_2d(8);
        let b = s.vector(64, 1.0);
        let x = s.vector(64, 0.0);
        s.reset_timing();
        let result = s.cg(&a, b, x, 40);
        assert!(result.residual.unwrap() < 1e-8, "CG should converge: {result:?}");
        assert!(result.elapsed > 0.0);
    }

    #[test]
    fn bicgstab_converges_on_poisson() {
        let mut s = solver(2);
        let a = s.poisson_2d(8);
        let b = s.vector(64, 1.0);
        let x = s.vector(64, 0.0);
        s.reset_timing();
        let result = s.bicgstab(&a, b, x, 40);
        assert!(
            result.residual.unwrap() < 1e-8,
            "BiCGSTAB should converge: {result:?}"
        );
    }

    #[test]
    fn simulation_only_mode_reports_time_without_data() {
        let mut s = PetscSolver::new(MachineConfig::with_gpus(8), false);
        let a = s.poisson_2d(16);
        let b = s.vector(256, 1.0);
        let x = s.vector(256, 0.0);
        s.reset_timing();
        let result = s.cg(&a, b, x, 5);
        assert!(result.elapsed > 0.0);
        assert!(result.residual.is_none());
    }
}
