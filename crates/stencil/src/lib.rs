//! A star-stencil library written against the Diffuse core alone.
//!
//! This crate is the proof that the [`diffuse::Library`] registration API is
//! sufficient for a **third, independently written library**: it depends only
//! on the core (plus the shared IR/kernel crates), registers the `stencil`
//! namespace through the chained [`diffuse::LibraryBuilder`], and submits
//! every launch through the typed builder. It never touches the `dense` or
//! `sparse` crates — composition with them happens purely through
//! [`StoreHandle`]s, and stencil tasks submitted to a shared context fuse
//! with dense and sparse tasks in one window (see `tests/cross_library.rs`
//! and `examples/cross_library.rs` at the workspace root).
//!
//! The operations are star stencils over grids with a one-cell ghost
//! boundary: a 3-point star in 1-D, the classic 5-point star in 2-D
//! (Figure 1 of the paper), and a 7-point star in 3-D (the ROADMAP's "3-D
//! stencils" workload). Each applies
//!
//! ```text
//! out[p] = c_center * grid[p] + sum_d (c_minus_d * grid[p - e_d] + c_plus_d * grid[p + e_d])
//! ```
//!
//! over every interior point `p`, leaving the ghost boundary of `out`
//! untouched (the caller owns the boundary condition). The shifted neighbor
//! accesses are expressed as *offset tilings* of the same store — the
//! aliasing-views structure of Figure 1 — so the fusion analysis sees the
//! stencil exactly as it sees cuPyNumeric's sliced views.
//!
//! # Example
//!
//! ```
//! use diffuse::{Context, DiffuseConfig};
//! use machine::MachineConfig;
//! use stencil::StencilContext;
//!
//! let ctx = Context::new(DiffuseConfig::fused(MachineConfig::single_node(2)));
//! let st = StencilContext::new(&ctx);
//! // A 1-D grid of 10 cells: 8 interior + one ghost cell per side.
//! let grid = ctx.create_store(vec![10], "grid");
//! let out = ctx.create_store(vec![10], "out");
//! ctx.fill(&grid, 1.0);
//! ctx.fill(&out, 0.0);
//! // Second-difference stencil: out = grid[i-1] - 2 grid[i] + grid[i+1] = 0
//! // on the constant grid.
//! st.star_1d(&grid, &out, [-2.0, 1.0, 1.0]);
//! let data = ctx.read_store(&out).unwrap();
//! assert_eq!(&data[1..9], &[0.0; 8]);
//! assert_eq!((data[0], data[9]), (0.0, 0.0), "ghost cells stay untouched");
//! ```

use diffuse::{Context, Library, StoreHandle, TaskSignature};
use ir::{Partition, Projection};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskKind};

/// Builds the generator for a star stencil with `points` input views: loads
/// each view, scales it by the matching scalar coefficient and accumulates
/// into the output buffer (buffer id `points`).
fn star_generator(points: usize) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let out = BufferId(points as u32);
        let mut m = KernelModule::new(points as u32 + 1);
        m.set_role(out, BufferRole::Output);
        let mut b = LoopBuilder::new("star", out);
        let mut acc = None;
        for i in 0..points {
            let x = b.load(BufferId(i as u32));
            let c = b.param(i);
            let term = b.mul(c, x);
            acc = Some(match acc {
                None => term,
                Some(prev) => b.add(prev, term),
            });
        }
        b.store(out, acc.expect("a star stencil has at least one point"));
        m.push_loop(b.finish());
        m
    }
}

/// The stencil library: registers the `stencil` namespace and applies star
/// stencils to grid stores.
#[derive(Clone, Debug)]
pub struct StencilContext {
    ctx: Context,
    lib: Library,
    star3: TaskKind,
    star5: TaskKind,
    star7: TaskKind,
}

impl StencilContext {
    /// Creates the stencil library over a Diffuse context, registering its
    /// three star operations through the chained builder.
    pub fn new(ctx: &Context) -> Self {
        let star_sig = |points: usize| {
            let mut sig = TaskSignature::new();
            for _ in 0..points {
                sig = sig.read();
            }
            sig.write().scalars(points)
        };
        let lib = ctx
            .library("stencil")
            .op("star3", star_sig(3), star_generator(3))
            .op("star5", star_sig(5), star_generator(5))
            .op("star7", star_sig(7), star_generator(7))
            .build();
        StencilContext {
            ctx: ctx.clone(),
            lib: lib.clone(),
            star3: lib.kind("star3").expect("registered above"),
            star5: lib.kind("star5").expect("registered above"),
            star7: lib.kind("star7").expect("registered above"),
        }
    }

    /// The Diffuse context the library is registered on.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The library namespace this context registered.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// The interior extents of a ghost-bordered grid shape.
    ///
    /// # Panics
    ///
    /// Panics if any extent is smaller than 3 (no interior).
    fn interior(shape: &[u64]) -> Vec<u64> {
        assert!(
            shape.iter().all(|&s| s >= 3),
            "a stencil grid needs at least one interior cell per dimension, got {shape:?}"
        );
        shape.iter().map(|&s| s - 2).collect()
    }

    /// The offset tiling through which a point task accesses the grid view
    /// shifted by `offset` (per-dimension ghost offsets in `0..=2`): row
    /// blocks of the leading interior dimension, one block per GPU — the
    /// same convention the dense library uses for views, so point-wise
    /// dependences between stencil outputs and dense view reads line up.
    fn view_partition(&self, interior: &[u64], offset: &[u64]) -> Partition {
        let gpus = (self.ctx.gpus() as u64).max(1);
        assert!(
            interior[0].is_multiple_of(gpus) || gpus == 1,
            "stencil leading interior extent {} must be divisible by the GPU count {gpus}",
            interior[0]
        );
        let mut tile = interior.to_vec();
        tile[0] = (interior[0].div_ceil(gpus)).max(1);
        let proj = match interior.len() {
            1 => Projection::Identity,
            rank => Projection::PadZeros { rank },
        };
        Partition::tiling(tile, offset.iter().map(|&o| o as i64).collect(), proj)
    }

    /// Shared implementation of the three star ops. `offsets` lists the
    /// per-view ghost offsets (center first, then minus/plus per dimension),
    /// matching the coefficient order.
    fn apply_star(
        &self,
        kind: TaskKind,
        name: &str,
        grid: &StoreHandle,
        out: &StoreHandle,
        offsets: &[&[u64]],
        coeffs: &[f64],
    ) {
        assert_eq!(
            grid.shape(),
            out.shape(),
            "stencil input and output grids must have the same shape"
        );
        let interior = Self::interior(grid.shape());
        let mut launch = self.ctx.task(kind).name(name);
        for offset in offsets {
            launch = launch.read(grid, self.view_partition(&interior, offset));
        }
        let center: Vec<u64> = vec![1; interior.len()];
        launch
            .write(out, self.view_partition(&interior, &center))
            .scalars(coeffs)
            .launch();
    }

    /// Applies the 3-point star to a 1-D ghost-bordered grid:
    /// `out[i] = c0*grid[i] + c1*grid[i-1] + c2*grid[i+1]` over the interior.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree, the grid is not 1-D, or the interior
    /// does not block-partition over the machine.
    pub fn star_1d(&self, grid: &StoreHandle, out: &StoreHandle, coeffs: [f64; 3]) {
        assert_eq!(grid.rank(), 1, "star_1d needs a 1-D grid");
        self.apply_star(
            self.star3,
            "star3",
            grid,
            out,
            &[&[1], &[0], &[2]],
            &coeffs,
        );
    }

    /// Applies the 5-point star to a 2-D ghost-bordered grid. Coefficient
    /// order: center, north (`-row`), south (`+row`), west (`-col`), east
    /// (`+col`) — the Figure 1 stencil is `[0.2, 0.2, 0.2, 0.2, 0.2]`.
    ///
    /// # Panics
    ///
    /// As [`StencilContext::star_1d`], for 2-D grids.
    pub fn star_2d(&self, grid: &StoreHandle, out: &StoreHandle, coeffs: [f64; 5]) {
        assert_eq!(grid.rank(), 2, "star_2d needs a 2-D grid");
        self.apply_star(
            self.star5,
            "star5",
            grid,
            out,
            &[&[1, 1], &[0, 1], &[2, 1], &[1, 0], &[1, 2]],
            &coeffs,
        );
    }

    /// Applies the 7-point star to a 3-D ghost-bordered grid. Coefficient
    /// order: center, then minus/plus along each dimension in order.
    ///
    /// # Panics
    ///
    /// As [`StencilContext::star_1d`], for 3-D grids.
    pub fn star_3d(&self, grid: &StoreHandle, out: &StoreHandle, coeffs: [f64; 7]) {
        assert_eq!(grid.rank(), 3, "star_3d needs a 3-D grid");
        self.apply_star(
            self.star7,
            "star7",
            grid,
            out,
            &[
                &[1, 1, 1],
                &[0, 1, 1],
                &[2, 1, 1],
                &[1, 0, 1],
                &[1, 2, 1],
                &[1, 1, 0],
                &[1, 1, 2],
            ],
            &coeffs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse::DiffuseConfig;
    use machine::MachineConfig;

    fn setup(gpus: usize) -> (Context, StencilContext) {
        let ctx = Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(gpus)));
        let st = StencilContext::new(&ctx);
        (ctx, st)
    }

    fn grid_from(ctx: &Context, shape: &[u64], f: impl Fn(usize) -> f64) -> StoreHandle {
        let volume: u64 = shape.iter().product();
        let h = ctx.create_store(shape.to_vec(), "grid");
        ctx.write_store(&h, (0..volume as usize).map(f).collect());
        h
    }

    /// Host reference: applies the star to the interior of a row-major grid.
    fn reference_star(
        shape: &[u64],
        data: &[f64],
        coeffs: &[f64],
        neighbors: &[Vec<i64>],
    ) -> Vec<f64> {
        let rank = shape.len();
        let strides: Vec<usize> = {
            let mut s = vec![1usize; rank];
            for d in (0..rank - 1).rev() {
                s[d] = s[d + 1] * shape[d + 1] as usize;
            }
            s
        };
        let mut out = vec![0.0; data.len()];
        let mut idx = vec![1u64; rank];
        loop {
            let flat: usize = idx
                .iter()
                .zip(&strides)
                .map(|(&i, &s)| i as usize * s)
                .sum();
            for (c, off) in coeffs.iter().zip(neighbors) {
                let nflat: usize = idx
                    .iter()
                    .zip(off)
                    .zip(&strides)
                    .map(|((&i, &o), &s)| (i as i64 + o) as usize * s)
                    .sum();
                out[flat] += c * data[nflat];
            }
            // Advance the interior odometer.
            let mut d = rank;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < shape[d] - 1 {
                    break;
                }
                idx[d] = 1;
            }
        }
    }

    #[test]
    fn star_1d_matches_reference() {
        let (ctx, st) = setup(2);
        let grid = grid_from(&ctx, &[10], |i| (i * i % 13) as f64);
        let out = ctx.create_store(vec![10], "out");
        ctx.fill(&out, 0.0);
        let coeffs = [-2.0, 1.0, 1.0];
        st.star_1d(&grid, &out, coeffs);
        let data = ctx.read_store(&grid).unwrap();
        let expect = reference_star(&[10], &data, &coeffs, &[vec![0], vec![-1], vec![1]]);
        assert_eq!(ctx.read_store(&out).unwrap()[1..9], expect[1..9]);
    }

    #[test]
    fn star_2d_matches_reference_on_figure1_coefficients() {
        for gpus in [1, 2, 4] {
            let (ctx, st) = setup(gpus);
            let n = 8u64; // interior 8 divides 1, 2 and 4 GPUs
            let shape = [n + 2, n + 2];
            let grid = grid_from(&ctx, &shape, |i| (i % 7) as f64);
            let out = ctx.create_store(shape.to_vec(), "out");
            ctx.fill(&out, 0.0);
            let coeffs = [0.2; 5];
            st.star_2d(&grid, &out, coeffs);
            let data = ctx.read_store(&grid).unwrap();
            let neighbors = vec![
                vec![0, 0],
                vec![-1, 0],
                vec![1, 0],
                vec![0, -1],
                vec![0, 1],
            ];
            let expect = reference_star(&shape, &data, &coeffs, &neighbors);
            let got = ctx.read_store(&out).unwrap();
            for r in 1..=n as usize {
                for c in 1..=n as usize {
                    let i = r * (n as usize + 2) + c;
                    assert!(
                        (got[i] - expect[i]).abs() < 1e-12,
                        "gpus={gpus} ({r},{c}): {} vs {}",
                        got[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn star_3d_matches_reference() {
        let (ctx, st) = setup(2);
        let shape = [6u64, 5, 4]; // interior 4x3x2, leading interior divides 2 GPUs
        let grid = grid_from(&ctx, &shape, |i| ((i * 5 + 3) % 11) as f64);
        let out = ctx.create_store(shape.to_vec(), "out");
        ctx.fill(&out, 0.0);
        let coeffs = [-6.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        st.star_3d(&grid, &out, coeffs);
        let data = ctx.read_store(&grid).unwrap();
        let neighbors = vec![
            vec![0, 0, 0],
            vec![-1, 0, 0],
            vec![1, 0, 0],
            vec![0, -1, 0],
            vec![0, 1, 0],
            vec![0, 0, -1],
            vec![0, 0, 1],
        ];
        let expect = reference_star(&shape, &data, &coeffs, &neighbors);
        let got = ctx.read_store(&out).unwrap();
        for x in 1..5usize {
            for y in 1..4usize {
                for z in 1..3usize {
                    let i = x * 20 + y * 4 + z;
                    assert!(
                        (got[i] - expect[i]).abs() < 1e-12,
                        "({x},{y},{z}): {} vs {}",
                        got[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn laplacian_of_constant_grid_is_zero() {
        let (ctx, st) = setup(2);
        let shape = [6u64, 6];
        let grid = ctx.create_store(shape.to_vec(), "grid");
        let out = ctx.create_store(shape.to_vec(), "out");
        ctx.fill(&grid, 3.5);
        ctx.fill(&out, -1.0);
        st.star_2d(&grid, &out, [-4.0, 1.0, 1.0, 1.0, 1.0]);
        let got = ctx.read_store(&out).unwrap();
        // Interior is the discrete Laplacian of a constant: zero.
        for r in 1..5usize {
            for c in 1..5usize {
                assert_eq!(got[r * 6 + c], 0.0);
            }
        }
        // Ghost border untouched.
        assert_eq!(got[0], -1.0);
    }

    #[test]
    fn stencil_registers_its_own_namespace() {
        let (ctx, st) = setup(2);
        assert_eq!(st.library().name(), "stencil");
        for op in ["star3", "star5", "star7"] {
            assert!(st.library().kind(op).is_some());
        }
        let grid = ctx.create_store(vec![6], "g");
        let out = ctx.create_store(vec![6], "o");
        ctx.fill(&grid, 1.0);
        ctx.fill(&out, 0.0);
        st.star_1d(&grid, &out, [1.0, 0.0, 0.0]);
        ctx.flush();
        assert_eq!(ctx.stats().library("stencil").unwrap().tasks_submitted, 1);
    }

    #[test]
    fn repeated_stars_hit_the_memo_cache() {
        let (ctx, st) = setup(2);
        let shape = [10u64, 10];
        let grid = ctx.create_store(shape.to_vec(), "grid");
        ctx.fill(&grid, 2.0);
        for _ in 0..3 {
            let out = ctx.create_store(shape.to_vec(), "out");
            ctx.fill(&out, 0.0);
            st.star_2d(&grid, &out, [0.2; 5]);
            drop(out);
            ctx.flush();
        }
        let stats = ctx.stats();
        assert!(stats.memo_hits >= 1, "isomorphic star windows must memoize");
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn shape_mismatch_panics() {
        let (ctx, st) = setup(1);
        let grid = ctx.create_store(vec![8], "g");
        let out = ctx.create_store(vec![6], "o");
        st.star_1d(&grid, &out, [1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_interior_panics() {
        let (ctx, st) = setup(4);
        // Interior 5 does not divide 4 GPUs.
        let grid = ctx.create_store(vec![7], "g");
        let out = ctx.create_store(vec![7], "o");
        st.star_1d(&grid, &out, [1.0, 1.0, 1.0]);
    }
}
