//! Dense Jacobi iteration (Figure 10b).
//!
//! Each iteration is one dense matrix-vector product plus two cheap vector
//! operations. The GEMV dominates, so fusion has negligible potential benefit;
//! the paper uses this benchmark to show Diffuse's analyses do not hurt when
//! there is nothing to fuse (0.93x–1.08x).

use dense::{DArray, DenseContext};

use crate::common::{dense_context, measure, BenchmarkResult, Mode};

/// Diagonal value of the synthetic diagonally-dominant system.
const DIAG: f64 = 64.0;

fn setup(np: &DenseContext, n: u64, functional: bool) -> (DArray, DArray, DArray) {
    let a = if functional {
        // Random off-diagonal entries in [0, 1), strongly dominant diagonal.
        let mut data: Vec<f64> = {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(7);
            (0..n * n).map(|_| rng.gen::<f64>() / n as f64).collect()
        };
        for i in 0..n {
            data[(i * n + i) as usize] = DIAG;
        }
        np.from_vec(&[n, n], data)
    } else {
        np.zeros(&[n, n])
    };
    let b = np.full(&[n], 1.0);
    let x = np.zeros(&[n]);
    (a, b, x)
}

/// Runs dense Jacobi iteration with `per_gpu` *matrix elements* per GPU, weak
/// scaled (the matrix edge grows with the square root of the machine size so
/// the per-GPU matrix block stays constant).
///
/// # Panics
///
/// Panics if `mode` is not [`Mode::Fused`] or [`Mode::Unfused`].
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(
        matches!(mode, Mode::Fused | Mode::Unfused),
        "Jacobi supports only the fused and unfused modes"
    );
    let np = dense_context(mode, gpus, functional);
    let n = ((per_gpu * gpus as u64) as f64).sqrt().floor().max(4.0) as u64;
    let (a, b, x0) = setup(&np, n, functional);
    let mut x = x0;
    let mut result = measure(
        "Jacobi",
        mode,
        &np,
        1,
        iterations,
        |_| {
            // x = x + (b - A x) / diag
            let ax = a.matvec(&x);
            let residual = b.sub(&ax);
            let correction = residual.scalar_mul(1.0 / DIAG);
            x = x.add(&correction);
        },
        None,
    );
    if functional {
        result.checksum = x.sum().scalar_value();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_towards_the_solution() {
        // With a strongly dominant diagonal the iteration converges quickly;
        // the solution of A x = 1 has entries close to 1/DIAG.
        let result = run(Mode::Fused, 2, 128, 20, true);
        let sum = result.checksum.unwrap();
        let n = 16.0;
        assert!((sum - n / DIAG).abs() < 0.05 * n / DIAG, "sum {sum}");
    }

    #[test]
    fn fused_matches_unfused() {
        let fused = run(Mode::Fused, 2, 128, 5, true);
        let unfused = run(Mode::Unfused, 2, 128, 5, true);
        assert!((fused.checksum.unwrap() - unfused.checksum.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn few_tasks_per_iteration_and_no_large_penalty() {
        let fused = run(Mode::Fused, 4, 64, 4, true);
        let unfused = run(Mode::Unfused, 4, 64, 4, true);
        // The paper reports 3 tasks per iteration unfused, 2 fused.
        assert!(unfused.tasks_per_iteration <= 5.0);
        assert!(fused.launches_per_iteration <= unfused.tasks_per_iteration);
        // Fusion must not slow Jacobi down by more than a few percent.
        assert!(fused.elapsed <= unfused.elapsed * 1.1);
    }
}
