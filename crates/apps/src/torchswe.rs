//! TorchSWE shallow-water equation solver (Figure 12c).
//!
//! The cuPyNumeric port of TorchSWE updates water height and momentum fields
//! with long sequences of elementwise operations over shifted views of the
//! state grids. The paper compares the natural port, a version the developers
//! manually vectorized with `numpy.vectorize` (here: a hand-restructured
//! update that folds several scalar factors together), and the natural port
//! under Diffuse — which finds fusion opportunities the manual optimization
//! missed.

use dense::{DArray, DenseContext};

use crate::common::{dense_context, measure, BenchmarkResult, Mode};

const DT: f64 = 0.0005;
const DX: f64 = 0.1;
const GRAVITY: f64 = 9.81;

struct State {
    h: DArray,
    hu: DArray,
    hv: DArray,
    n: u64,
}

struct Views {
    c: DArray,
    n: DArray,
    s: DArray,
    e: DArray,
    w: DArray,
}

/// Interior column count of the weak-scaling grids: the row count grows with
/// the machine so the per-GPU tile stays constant under row-block
/// partitioning.
pub const COLS: u64 = 256;

fn views(grid: &DArray, rows: u64) -> Views {
    Views {
        c: grid.slice_2d(1..rows + 1, 1..COLS + 1),
        n: grid.slice_2d(0..rows, 1..COLS + 1),
        s: grid.slice_2d(2..rows + 2, 1..COLS + 1),
        e: grid.slice_2d(1..rows + 1, 2..COLS + 2),
        w: grid.slice_2d(1..rows + 1, 0..COLS),
    }
}

impl State {
    fn new(np: &DenseContext, n: u64, functional: bool) -> State {
        let shape = [n + 2, COLS + 2];
        let h = if functional {
            np.random(&shape, 21).scalar_mul(0.2).scalar_add(1.0)
        } else {
            np.full(&shape, 1.0)
        };
        State {
            h,
            hu: np.zeros(&shape),
            hv: np.zeros(&shape),
            n,
        }
    }

    /// A central-difference flux-divergence step written naturally, one small
    /// array operation at a time (the structure of the unoptimized port).
    fn step_natural(&self) {
        let n = self.n;
        let h = views(&self.h, n);
        let hu = views(&self.hu, n);
        let hv = views(&self.hv, n);
        // Velocities.
        let u = hu.c.div(&h.c);
        let v = hv.c.div(&h.c);
        // Height update: dh/dt = -(d(hu)/dx + d(hv)/dy).
        let dhu_dx = hu.e.sub(&hu.w).scalar_mul(1.0 / (2.0 * DX));
        let dhv_dy = hv.n.sub(&hv.s).scalar_mul(1.0 / (2.0 * DX));
        let dh = dhu_dx.add(&dhv_dy).scalar_mul(-DT);
        let h_new = h.c.add(&dh);
        // x-momentum: d(hu)/dt = -(d(hu*u)/dx + g*h*dh/dx).
        let huu = hu.c.mul(&u);
        let dhuu_dx = huu.mul(&self.gradient_weight(&hu.e, &hu.w));
        let dh_dx = h.e.sub(&h.w).scalar_mul(1.0 / (2.0 * DX));
        let pressure_x = h.c.mul(&dh_dx).scalar_mul(GRAVITY);
        let dhu = dhuu_dx.add(&pressure_x).scalar_mul(-DT);
        let hu_new = hu.c.add(&dhu);
        // y-momentum: d(hv)/dt = -(d(hv*v)/dy + g*h*dh/dy).
        let hvv = hv.c.mul(&v);
        let dhvv_dy = hvv.mul(&self.gradient_weight(&hv.n, &hv.s));
        let dh_dy = h.n.sub(&h.s).scalar_mul(1.0 / (2.0 * DX));
        let pressure_y = h.c.mul(&dh_dy).scalar_mul(GRAVITY);
        let dhv = dhvv_dy.add(&pressure_y).scalar_mul(-DT);
        let hv_new = hv.c.add(&dhv);
        // Write the new state back through the center views.
        h.c.assign(&h_new);
        hu.c.assign(&hu_new);
        hv.c.assign(&hv_new);
    }

    /// A normalized central-difference factor used by the advection terms.
    fn gradient_weight(&self, plus: &DArray, minus: &DArray) -> DArray {
        plus.sub(minus).scalar_mul(1.0 / (2.0 * DX)).scalar_add(1.0)
    }

    /// The manually "vectorized" step: the developers folded the scalar
    /// factors and some differences into combined expressions, reducing the
    /// number of array operations but not eliminating the temporaries that
    /// only whole-program fusion can remove.
    fn step_manual(&self) {
        let n = self.n;
        let h = views(&self.h, n);
        let hu = views(&self.hu, n);
        let hv = views(&self.hv, n);
        let u = hu.c.div(&h.c);
        let v = hv.c.div(&h.c);
        let c1 = -DT / (2.0 * DX);
        // dh folded into two ops per direction.
        let dh = hu.e.sub(&hu.w).add(&hv.n.sub(&hv.s)).scalar_mul(c1);
        let h_new = h.c.add(&dh);
        let adv_x = hu.c.mul(&u).mul(&hu.e.sub(&hu.w)).scalar_mul(c1 / DX);
        let press_x = h.c.mul(&h.e.sub(&h.w)).scalar_mul(c1 * GRAVITY);
        let hu_new = hu.c.add(&adv_x).add(&press_x);
        let adv_y = hv.c.mul(&v).mul(&hv.n.sub(&hv.s)).scalar_mul(c1 / DX);
        let press_y = h.c.mul(&h.n.sub(&h.s)).scalar_mul(c1 * GRAVITY);
        let hv_new = hv.c.add(&adv_y).add(&press_y);
        h.c.assign(&h_new);
        hu.c.assign(&hu_new);
        hv.c.assign(&hv_new);
    }
}

/// Runs TorchSWE with a `per_gpu`-row interior per GPU, weak scaled.
///
/// # Panics
///
/// Panics if `mode` is [`Mode::Petsc`] (there is no PETSc shallow-water
/// baseline).
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(mode != Mode::Petsc, "TorchSWE has no PETSc baseline");
    let np = dense_context(mode, gpus, functional);
    let n = per_gpu * gpus as u64;
    let state = State::new(&np, n, functional);
    let mut result = measure(
        "TorchSWE",
        mode,
        &np,
        1,
        iterations,
        |_| match mode {
            Mode::ManuallyFused => state.step_manual(),
            _ => state.step_natural(),
        },
        None,
    );
    if functional {
        result.checksum = state.h.sum().scalar_value();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_roughly_conserved_and_modes_agree() {
        let fused = run(Mode::Fused, 2, 8, 4, true);
        let unfused = run(Mode::Unfused, 2, 8, 4, true);
        let (a, b) = (fused.checksum.unwrap(), unfused.checksum.unwrap());
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        // Total interior mass should stay near its initial value (~1.1 per cell).
        let per_cell = a / (16.0 * 16.0 + 2.0 * 18.0 * 2.0 - 4.0);
        assert!(per_cell.is_finite());
    }

    #[test]
    fn diffuse_beats_the_manual_vectorization_in_launch_count() {
        let fused = run(Mode::Fused, 4, 8, 3, true);
        let manual = run(Mode::ManuallyFused, 4, 8, 3, true);
        let unfused = run(Mode::Unfused, 4, 8, 3, true);
        // The manual restructuring reduces the task count...
        assert!(manual.tasks_per_iteration < unfused.tasks_per_iteration);
        // ...but Diffuse launches even fewer tasks from the natural code.
        assert!(fused.launches_per_iteration < manual.tasks_per_iteration);
    }
}
