//! Geometric multigrid solver (Figure 12a).
//!
//! A V-cycle solver with a weighted-Jacobi smoother, injection restriction and
//! linear prolongation, built by composing Legate-Sparse SpMV with
//! cuPyNumeric vector operations. The restriction and prolongation operators
//! are registered as additional kernel generators by the application itself,
//! demonstrating that Diffuse's generator interface is open to applications
//! and not just to the two libraries.
//!
//! The reproduction solves the 1-D Poisson problem so that injection and
//! linear interpolation are geometrically exact; the paper's GMG solves a 2-D
//! problem, but the task-stream structure per V-cycle (smooth, residual,
//! restrict, recurse, prolong, correct, smooth) is the same.

use dense::{DArray, DenseContext};
use diffuse::TaskSignature;
use ir::Partition;
use kernel::{BufferId, BufferRole, KernelModule, OpaqueOp, TaskKind};
use sparse::{CsrMatrix, SparseContext};

use crate::common::{dense_context, measure, spmv, BenchmarkResult, Mode};

/// Weighted-Jacobi damping factor.
const OMEGA: f64 = 2.0 / 3.0;

struct Level {
    a: CsrMatrix,
    n: u64,
}

struct Gmg {
    np: DenseContext,
    levels: Vec<Level>,
    restrict_kind: TaskKind,
    prolong_kind: TaskKind,
}

fn register_transfer_ops(np: &DenseContext) -> (TaskKind, TaskKind) {
    // The application registers its own library namespace: the generator
    // interface is open to applications, not just to the dense and sparse
    // libraries.
    let transfer = || TaskSignature::new().read().write();
    let lib = np
        .context()
        .library("gmg_app")
        .op("gmg_restrict", transfer(), |_args| {
            let mut m = KernelModule::new(2);
            m.set_role(BufferId(1), BufferRole::Output);
            m.push_opaque(OpaqueOp::Restrict {
                fine: BufferId(0),
                coarse: BufferId(1),
            });
            m
        })
        .op("gmg_prolong", transfer(), |_args| {
            let mut m = KernelModule::new(2);
            m.set_role(BufferId(1), BufferRole::Output);
            m.push_opaque(OpaqueOp::Prolong {
                coarse: BufferId(0),
                fine: BufferId(1),
            });
            m
        })
        .build();
    (
        lib.kind("gmg_restrict").expect("registered above"),
        lib.kind("gmg_prolong").expect("registered above"),
    )
}

fn laplacian_1d(sp: &SparseContext, n: u64, functional: bool) -> CsrMatrix {
    if functional {
        CsrMatrix::from_dense(sp, n, n, &|r, c| {
            if r == c {
                2.0
            } else if r.abs_diff(c) == 1 {
                -1.0
            } else {
                0.0
            }
        })
    } else {
        // Symbolic tridiagonal matrix: 3n - 2 nonzeros.
        CsrMatrix::symbolic(sp, n, n, 3 * n - 2)
    }
}

impl Gmg {
    fn new(np: &DenseContext, finest: u64, levels: usize, functional: bool) -> Gmg {
        let sp = SparseContext::new(np.context());
        let (restrict_kind, prolong_kind) = register_transfer_ops(np);
        let mut lvl = Vec::new();
        let mut n = finest;
        for _ in 0..levels {
            lvl.push(Level {
                a: laplacian_1d(&sp, n, functional),
                n,
            });
            n = (n / 2).max(4);
        }
        Gmg {
            np: np.clone(),
            levels: lvl,
            restrict_kind,
            prolong_kind,
        }
    }

    /// One weighted-Jacobi smoothing step: `x = x + omega/2 * (b - A x)`.
    fn smooth(&self, level: usize, x: &DArray, b: &DArray) -> DArray {
        let ax = spmv(&self.levels[level].a, x);
        let r = b.sub(&ax);
        let correction = r.scalar_mul(OMEGA / 2.0);
        x.add(&correction)
    }

    fn restrict(&self, fine: &DArray, coarse_n: u64) -> DArray {
        let coarse = self.np.zeros(&[coarse_n]);
        let gpus = self.np.gpus();
        let block = |len: u64| Partition::block(vec![len.div_ceil(gpus).max(1)]);
        self.np
            .context()
            .task(self.restrict_kind)
            .name("restrict")
            .read(fine.handle(), block(fine.len()))
            .write(coarse.handle(), block(coarse_n))
            .launch();
        coarse
    }

    fn prolong(&self, coarse: &DArray, fine_n: u64) -> DArray {
        let fine = self.np.zeros(&[fine_n]);
        let gpus = self.np.gpus();
        let block = |len: u64| Partition::block(vec![len.div_ceil(gpus).max(1)]);
        self.np
            .context()
            .task(self.prolong_kind)
            .name("prolong")
            .read(coarse.handle(), block(coarse.len()))
            .write(fine.handle(), block(fine_n))
            .launch();
        fine
    }

    /// One V-cycle starting at `level`, returning the improved solution.
    fn v_cycle(&self, level: usize, x: DArray, b: &DArray) -> DArray {
        if level + 1 == self.levels.len() {
            // Coarsest level: smooth repeatedly.
            let mut x = x;
            for _ in 0..4 {
                x = self.smooth(level, &x, b);
            }
            return x;
        }
        // Pre-smooth.
        let x = self.smooth(level, &x, b);
        // Residual and restriction.
        let ax = spmv(&self.levels[level].a, &x);
        let r = b.sub(&ax);
        let coarse_n = self.levels[level + 1].n;
        let rc = self.restrict(&r, coarse_n);
        // Coarse-grid correction.
        let ec = self.np.zeros(&[coarse_n]);
        let ec = self.v_cycle(level + 1, ec, &rc);
        let e = self.prolong(&ec, self.levels[level].n);
        let x = x.add(&e);
        // Post-smooth.
        self.smooth(level, &x, b)
    }
}

/// Runs the GMG solver with `per_gpu` fine-grid points per GPU, weak scaled.
///
/// # Panics
///
/// Panics if `mode` is not [`Mode::Fused`] or [`Mode::Unfused`].
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(
        matches!(mode, Mode::Fused | Mode::Unfused),
        "GMG supports only the fused and unfused modes"
    );
    let np = dense_context(mode, gpus, functional);
    let n = per_gpu * gpus as u64;
    let gmg = Gmg::new(&np, n, 3, functional);
    let b = np.ones(&[n]);
    let mut x = np.zeros(&[n]);
    let mut result = measure(
        "GMG",
        mode,
        &np,
        1,
        iterations,
        |_| {
            x = gmg.v_cycle(0, x.clone(), &b);
        },
        None,
    );
    if functional {
        let residual = b.sub(&spmv(&gmg.levels[0].a, &x));
        result.checksum = residual.dot(&residual).scalar_value();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_cycles_reduce_the_residual() {
        let few = run(Mode::Fused, 2, 32, 2, true);
        let many = run(Mode::Fused, 2, 32, 12, true);
        assert!(many.checksum.unwrap() < few.checksum.unwrap());
    }

    #[test]
    fn fused_matches_unfused() {
        let fused = run(Mode::Fused, 2, 32, 4, true);
        let unfused = run(Mode::Unfused, 2, 32, 4, true);
        let (a, b) = (fused.checksum.unwrap(), unfused.checksum.unwrap());
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        assert!(fused.launches_per_iteration < unfused.tasks_per_iteration);
        // The paper reports ~24 tasks per V-cycle for the GMG solver.
        assert!(unfused.tasks_per_iteration >= 15.0);
    }
}
