//! Navier-Stokes channel flow (Figure 12b).
//!
//! A cuPyNumeric port of the "CFD Python" 2-D channel-flow solver: every step
//! performs elementwise operations on aliasing slices of the velocity and
//! pressure grids (the same view structure as Figure 1). On a single GPU the
//! data is not partitioned and long prefixes fuse; on multiple GPUs the
//! aliasing views limit fusion, as the paper discusses.

use dense::{DArray, DenseContext};

use crate::common::{dense_context, measure, BenchmarkResult, Mode};

const DT: f64 = 0.001;
const DX: f64 = 0.05;
const RHO: f64 = 1.0;
const NU: f64 = 0.1;

/// The five stencil views of a grid array (center, north, south, east, west).
struct Views {
    c: DArray,
    n: DArray,
    s: DArray,
    e: DArray,
    w: DArray,
}

/// Interior column count of the weak-scaling grids: the row count grows with
/// the machine so the per-GPU tile stays constant under row-block
/// partitioning.
pub const COLS: u64 = 256;

fn views(grid: &DArray, rows: u64) -> Views {
    Views {
        c: grid.slice_2d(1..rows + 1, 1..COLS + 1),
        n: grid.slice_2d(0..rows, 1..COLS + 1),
        s: grid.slice_2d(2..rows + 2, 1..COLS + 1),
        e: grid.slice_2d(1..rows + 1, 2..COLS + 2),
        w: grid.slice_2d(1..rows + 1, 0..COLS),
    }
}

struct Cfd {
    u: DArray,
    v: DArray,
    p: DArray,
    n: u64,
}

impl Cfd {
    fn new(np: &DenseContext, n: u64, functional: bool) -> Cfd {
        let shape = [n + 2, COLS + 2];
        let (u, v, p) = if functional {
            (
                np.random(&shape, 11).scalar_mul(0.1),
                np.random(&shape, 12).scalar_mul(0.1),
                np.random(&shape, 13).scalar_mul(0.1),
            )
        } else {
            (np.full(&shape, 0.1), np.full(&shape, 0.1), np.zeros(&shape))
        };
        Cfd { u, v, p, n }
    }

    /// One time step: build the pressure source term, relax the pressure
    /// Poisson equation, then update the velocities.
    fn step(&self) {
        let n = self.n;
        let u = views(&self.u, n);
        let v = views(&self.v, n);
        // Source term b = rho/dt * (du/dx + dv/dy).
        let dudx = u.e.sub(&u.w).scalar_mul(1.0 / (2.0 * DX));
        let dvdy = v.n.sub(&v.s).scalar_mul(1.0 / (2.0 * DX));
        let b = dudx.add(&dvdy).scalar_mul(RHO / DT);
        // Pressure Poisson relaxation sweeps (Jacobi form).
        for _ in 0..2 {
            let p = views(&self.p, n);
            let neighbours = p.e.add(&p.w).add(&p.n).add(&p.s);
            let relaxed = neighbours.scalar_mul(0.25);
            let source = b.scalar_mul(DX * DX / 4.0);
            let p_new = relaxed.sub(&source);
            p.c.assign(&p_new);
        }
        // Velocity update: advection-free channel-flow form
        // u += dt * (-1/rho dp/dx + nu laplacian(u)).
        let p = views(&self.p, n);
        let dpdx = p.e.sub(&p.w).scalar_mul(1.0 / (2.0 * DX * RHO));
        let lap_u = u
            .e
            .add(&u.w)
            .add(&u.n)
            .add(&u.s)
            .sub(&u.c.scalar_mul(4.0))
            .scalar_mul(NU / (DX * DX));
        let du = lap_u.sub(&dpdx).scalar_mul(DT);
        let u_new = u.c.add(&du);
        u.c.assign(&u_new);
        let dpdy = p.n.sub(&p.s).scalar_mul(1.0 / (2.0 * DX * RHO));
        let lap_v = v
            .e
            .add(&v.w)
            .add(&v.n)
            .add(&v.s)
            .sub(&v.c.scalar_mul(4.0))
            .scalar_mul(NU / (DX * DX));
        let dv = lap_v.sub(&dpdy).scalar_mul(DT);
        let v_new = v.c.add(&dv);
        v.c.assign(&v_new);
    }
}

/// Runs the channel-flow solver with a `per_gpu`-row interior per GPU,
/// weak scaled.
///
/// # Panics
///
/// Panics if `mode` is not [`Mode::Fused`] or [`Mode::Unfused`].
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(
        matches!(mode, Mode::Fused | Mode::Unfused),
        "CFD supports only the fused and unfused modes"
    );
    let np = dense_context(mode, gpus, functional);
    let n = per_gpu * gpus as u64;
    let sim = Cfd::new(&np, n, functional);
    let mut result = measure("CFD", mode, &np, 1, iterations, |_| sim.step(), None);
    if functional {
        let total = sim.u.sum().scalar_value().unwrap_or(0.0)
            + sim.v.sum().scalar_value().unwrap_or(0.0)
            + sim.p.sum().scalar_value().unwrap_or(0.0);
        result.checksum = Some(total);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_matches_unfused() {
        let fused = run(Mode::Fused, 2, 8, 3, true);
        let unfused = run(Mode::Unfused, 2, 8, 3, true);
        let (a, b) = (fused.checksum.unwrap(), unfused.checksum.unwrap());
        assert!(
            (a - b).abs() < 1e-9 * a.abs().max(1.0),
            "fused {a} vs unfused {b}"
        );
        assert!(a.is_finite());
    }

    #[test]
    fn fusion_reduces_launches_but_aliasing_limits_it() {
        let fused = run(Mode::Fused, 4, 8, 3, true);
        let unfused = run(Mode::Unfused, 4, 8, 3, true);
        assert!(unfused.tasks_per_iteration >= 25.0);
        assert!(fused.launches_per_iteration < unfused.launches_per_iteration);
        // The aliasing writes to the center views prevent total fusion.
        assert!(fused.launches_per_iteration > 1.0);
    }

    #[test]
    fn single_gpu_fuses_longer_sequences_than_multi_gpu() {
        // The paper observes higher CFD speedups on one GPU because data is
        // not partitioned and longer prefixes satisfy the constraints.
        let single = run(Mode::Fused, 1, 8, 3, true);
        let multi = run(Mode::Fused, 4, 8, 3, true);
        assert!(single.launches_per_iteration <= multi.launches_per_iteration);
    }
}
