//! Batched Black-Scholes: the horizontal-fusion workload.
//!
//! One iteration prices `batches` *independent* option portfolios. Each batch
//! is the standard elementwise pricing chain over its own arrays, followed by
//! `call.sum()` / `put.sum()` (which fuse into the chain) and a domain-1
//! "combine" task that folds the two reduced scalars into the batch's
//! response store. The domain change breaks vertical fusion after every
//! batch, so the purely vertical analysis launches two tasks per batch.
//! Horizontal fusion packs all the pricing chains into one wide launch and
//! all the combines into another: launches per iteration drop from `2 * N`
//! to 2, bit-identically, with the merge attributed to
//! [`diffuse::ExecutionStats::horizontally_fused_tasks`].

use dense::{DArray, DenseContext};
use diffuse::{Context, DiffuseConfig, StoreHandle, TaskKind, TaskSignature};
use ir::{Domain, Partition};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder};
use machine::MachineConfig;

use crate::black_scholes::price;
use crate::common::{measure, BenchmarkResult, Mode};

/// Builds the dense library over a context sized for the batched stream: the
/// window must hold a whole iteration (every batch's chain plus its combine)
/// so the horizontal pass sees all the independent batches side by side.
/// Executor and backend follow `DIFFUSE_EXECUTOR` / `DIFFUSE_BACKEND` as
/// everywhere else.
fn batched_context(mode: Mode, gpus: usize, functional: bool, horizontal: bool, batches: usize) -> DenseContext {
    let machine = MachineConfig::with_gpus(gpus);
    let mut config = match mode {
        Mode::Fused => DiffuseConfig::fused(machine),
        Mode::Unfused => DiffuseConfig::unfused(machine),
        _ => panic!("batched Black-Scholes supports only the fused and unfused modes"),
    };
    let window = batches * 50 + 16;
    config = config.with_window(window, window).with_horizontal_fusion(horizontal);
    if !functional {
        config = config.simulation_only();
    }
    DenseContext::new(Context::new(config))
}

/// Registers the domain-1 combine op: `resp[0] = call_sum[0] + put_sum[0]`.
fn register_combine(ctx: &Context) -> TaskKind {
    let lib = ctx.register_library("bs_batched");
    lib.register(
        "combine",
        TaskSignature::new().read().read().write(),
        |_args| {
            let mut m = KernelModule::new(3);
            m.set_role(BufferId(2), BufferRole::Output);
            let mut b = LoopBuilder::new("combine", BufferId(2));
            let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
            let s = b.add(x, y);
            b.store(BufferId(2), s);
            m.push_loop(b.finish());
            m
        },
    )
}

/// One batch's input arrays (spot, strike, expiry).
fn setup_batch(np: &DenseContext, n: u64, functional: bool, seed: u64) -> (DArray, DArray, DArray) {
    if functional {
        let s = np.random(&[n], seed * 3 + 1).scalar_mul(100.0).scalar_add(50.0);
        let k = np.random(&[n], seed * 3 + 2).scalar_mul(100.0).scalar_add(50.0);
        let t = np.random(&[n], seed * 3 + 3).scalar_mul(2.0).scalar_add(0.05);
        (s, k, t)
    } else {
        (np.full(&[n], 100.0), np.full(&[n], 105.0), np.full(&[n], 1.0))
    }
}

/// Prices every batch once and flushes: the unit of measurement, shared by
/// `run` and the stats-attribution test.
fn price_batches(
    np: &DenseContext,
    combine: TaskKind,
    inputs: &[(DArray, DArray, DArray)],
    resps: &[StoreHandle],
) {
    let ctx = np.context();
    for ((s, k, t), resp) in inputs.iter().zip(resps) {
        let (call, put) = price(s, k, t);
        let call_sum = call.sum();
        let put_sum = put.sum();
        ctx.task(combine)
            .domain(Domain::linear(1))
            .read(call_sum.handle(), Partition::Replicate)
            .read(put_sum.handle(), Partition::Replicate)
            .write(resp, Partition::Replicate)
            .launch();
    }
    ctx.flush();
}

/// Runs batched Black-Scholes: `batches` independent portfolios of
/// `per_gpu * gpus` options each, `horizontal` selecting whether the
/// horizontal pass may pack the batches into wide launches.
///
/// # Panics
///
/// Panics if `mode` is not [`Mode::Fused`] or [`Mode::Unfused`].
pub fn run(
    mode: Mode,
    gpus: usize,
    per_gpu: u64,
    batches: usize,
    iterations: u64,
    functional: bool,
    horizontal: bool,
) -> BenchmarkResult {
    assert!(
        matches!(mode, Mode::Fused | Mode::Unfused),
        "batched Black-Scholes supports only the fused and unfused modes"
    );
    let np = batched_context(mode, gpus, functional, horizontal, batches);
    let ctx = np.context().clone();
    let combine = register_combine(&ctx);
    let n = per_gpu * gpus as u64;
    let inputs: Vec<_> = (0..batches)
        .map(|b| setup_batch(&np, n, functional, b as u64))
        .collect();
    let resps: Vec<StoreHandle> = (0..batches)
        .map(|_| ctx.create_store(vec![1], "bs_resp"))
        .collect();
    let mut result = measure(
        "Black-Scholes (batched)",
        mode,
        &np,
        1,
        iterations,
        |_| price_batches(&np, combine, &inputs, &resps),
        None,
    );
    if functional {
        let checksum = resps
            .iter()
            .map(|r| np.wrap(r.clone()).scalar_value().unwrap_or(0.0))
            .sum();
        result.checksum = Some(checksum);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_fusion_packs_the_batches_bit_identically() {
        let batches = 8;
        let horizontal = run(Mode::Fused, 4, 16, batches, 2, true, true);
        let vertical = run(Mode::Fused, 4, 16, batches, 2, true, false);
        let unfused = run(Mode::Unfused, 4, 16, batches, 2, true, false);

        // Reordering independent batches must not change a single bit.
        let h = horizontal.checksum.unwrap();
        let v = vertical.checksum.unwrap();
        let u = unfused.checksum.unwrap();
        assert_eq!(h.to_bits(), v.to_bits(), "horizontal diverged from vertical");
        assert_eq!(h.to_bits(), u.to_bits(), "horizontal diverged from unfused");
        assert!(h.is_finite());

        // Vertically every batch is two launches (the domain-1 combine breaks
        // the chain); horizontally all chains share one launch and all
        // combines another.
        assert_eq!(vertical.launches_per_iteration, 2.0 * batches as f64);
        assert_eq!(horizontal.launches_per_iteration, 2.0);
        // The unfused baseline launches every submitted task.
        assert!(unfused.launches_per_iteration > 30.0 * batches as f64);
    }

    #[test]
    fn merges_are_attributed_to_the_horizontal_counter() {
        let np = batched_context(Mode::Fused, 2, true, true, 4);
        let ctx = np.context().clone();
        let combine = register_combine(&ctx);
        let inputs: Vec<_> = (0..4).map(|b| setup_batch(&np, 16, true, b)).collect();
        let resps: Vec<StoreHandle> =
            (0..4).map(|_| ctx.create_store(vec![1], "bs_resp")).collect();
        // Drain the setup tasks: otherwise they share the window with the
        // first batch's chain and skew the segment structure.
        ctx.flush();
        let stats0 = ctx.stats();
        price_batches(&np, combine, &inputs, &resps);
        let stats = ctx.stats().since(&stats0);
        // Every submitted task ends up in one of the two merged groups.
        assert_eq!(stats.horizontally_fused_tasks, stats.tasks_submitted);
        assert_eq!(stats.tasks_launched, 2);
    }

    #[test]
    fn horizontal_knob_is_inert_when_fusion_is_off() {
        let on = run(Mode::Unfused, 2, 8, 3, 1, true, true);
        let off = run(Mode::Unfused, 2, 8, 3, 1, true, false);
        assert_eq!(on.checksum.unwrap().to_bits(), off.checksum.unwrap().to_bits());
        assert_eq!(on.launches_per_iteration, off.launches_per_iteration);
    }
}
