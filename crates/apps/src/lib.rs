//! The benchmark applications: the seven from the paper's evaluation
//! (Section 7) plus a cross-library heat solver exercising the stencil
//! library.
//!
//! Every application is written naturally against the public APIs of the
//! `dense`, `sparse` and `stencil` libraries — no Diffuse-specific code —
//! exactly as the paper's applications are written against cuPyNumeric and
//! Legate Sparse.
//! Switching between the fused and unfused configurations changes nothing in
//! the application code; the PETSc baseline uses the `petsc` crate and the
//! "manually fused" variants restructure the application by hand the way the
//! original developers did.
//!
//! | Module | Paper workload | Figure |
//! |---|---|---|
//! | [`black_scholes`] | Black-Scholes option pricing | 10a |
//! | [`jacobi`] | Dense Jacobi iteration | 10b |
//! | [`cg`] | Conjugate Gradient (Legate Sparse + cuPyNumeric) | 11a |
//! | [`bicgstab`] | BiCGSTAB | 11b |
//! | [`gmg`] | Geometric multigrid solver | 12a |
//! | [`cfd`] | Navier-Stokes channel flow | 12b |
//! | [`torchswe`] | TorchSWE shallow-water solver | 12c |
//! | [`heat`] | 2-D heat diffusion (stencil + dense composition) | — |
//!
//! # Example
//!
//! ```
//! use apps::{black_scholes, Mode};
//!
//! // Simulate one GPU pricing 4096 options for two iterations (no real
//! // arithmetic — `functional = false` measures launches and simulated time).
//! let fused = black_scholes::run(Mode::Fused, 1, 4096, 2, false);
//! let unfused = black_scholes::run(Mode::Unfused, 1, 4096, 2, false);
//! assert!(fused.throughput > 0.0);
//! assert!(
//!     fused.launches_per_iteration < unfused.launches_per_iteration,
//!     "fusion must reduce the number of task launches"
//! );
//! ```

pub mod bicgstab;
pub mod black_scholes;
pub mod black_scholes_batched;
pub mod cfd;
pub mod cg;
pub mod common;
pub mod gmg;
pub mod heat;
pub mod jacobi;
pub mod torchswe;

pub use common::{BenchmarkResult, Mode};
