//! Conjugate Gradient on the 2-D Poisson problem (Figure 11a).
//!
//! The natural implementation composes Legate-Sparse SpMV with cuPyNumeric
//! vector operations. Four variants are compared, as in the paper: the
//! natural code with Diffuse (`Fused`), the natural code without Diffuse
//! (`Unfused`), the hand-optimized implementation the Legate Sparse authors
//! wrote before Diffuse existed (`ManuallyFused`), and MPI+PETSc (`Petsc`).

use dense::{DArray, DenseContext};
use diffuse::TaskSignature;
use ir::{Partition, PartitionId};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskKind};
use machine::MachineConfig;
use petsc::PetscSolver;
use sparse::{CsrMatrix, SparseContext};

use crate::common::{dense_context, measure, spmv, BenchmarkResult, Mode};

/// Problem setup shared by the Diffuse-based variants.
fn setup(np: &DenseContext, grid: u64, functional: bool) -> (CsrMatrix, DArray) {
    let sp = SparseContext::new(np.context());
    let a = if functional {
        CsrMatrix::poisson_2d(&sp, grid)
    } else {
        CsrMatrix::poisson_2d_symbolic(&sp, grid)
    };
    let b = np.ones(&[a.rows()]);
    (a, b)
}

/// The grid edge length for a weak-scaled run: `per_gpu` rows per GPU.
fn grid_size(gpus: usize, per_gpu: u64) -> u64 {
    ((per_gpu * gpus as u64) as f64).sqrt().floor().max(2.0) as u64
}

/// The hand-fused x/r update task used by the manually optimized variant:
/// `x' = x + alpha p` and `r' = r - alpha q` in a single kernel. Registered
/// in the application's own library namespace — the generator interface is
/// open to applications, not just to the libraries.
fn register_cg_update(np: &DenseContext) -> TaskKind {
    let lib = np.context().register_library("cg_app");
    let sig = TaskSignature::new()
        .read() // x
        .read() // r
        .read() // p
        .read() // q
        .read() // alpha (scalar store)
        .write() // x'
        .write(); // r'
    lib.register("cg_fused_update", sig, |_args| {
        let mut m = KernelModule::new(7);
        m.set_role(BufferId(5), BufferRole::Output);
        m.set_role(BufferId(6), BufferRole::Output);
        let mut b = LoopBuilder::new("cg_fused_update", BufferId(0));
        let x = b.load(BufferId(0));
        let r = b.load(BufferId(1));
        let p = b.load(BufferId(2));
        let q = b.load(BufferId(3));
        let alpha = b.load_scalar(BufferId(4));
        let ap = b.mul(alpha, p);
        let aq = b.mul(alpha, q);
        let xn = b.add(x, ap);
        let rn = b.sub(r, aq);
        b.store(BufferId(5), xn);
        b.store(BufferId(6), rn);
        m.push_loop(b.finish());
        m
    })
}

struct CgState {
    x: DArray,
    r: DArray,
    p: DArray,
    rs_old: DArray,
}

fn cg_init(np: &DenseContext, a: &CsrMatrix, b: &DArray) -> CgState {
    let x = np.zeros(&[a.rows()]);
    let r = b.copy();
    let p = r.copy();
    let rs_old = r.dot(&r);
    CgState { x, r, p, rs_old }
}

/// One natural CG iteration (the code a SciPy user would write).
fn cg_iteration(a: &CsrMatrix, state: &mut CgState) {
    let q = spmv(a, &state.p);
    let p_ap = state.p.dot(&q);
    let alpha = state.rs_old.div(&p_ap);
    state.x = state.x.axpy(&alpha, &state.p, 1.0);
    state.r = state.r.axpy(&alpha, &q, -1.0);
    let rs_new = state.r.dot(&state.r);
    let beta = rs_new.div(&state.rs_old);
    state.p = state.r.axpy(&beta, &state.p, 1.0);
    state.rs_old = rs_new;
}

/// One manually fused CG iteration: the x/r update is a single hand-written
/// task, as in the pre-Diffuse hand-optimized Legate Sparse implementation.
fn cg_iteration_manual(
    np: &DenseContext,
    update: TaskKind,
    a: &CsrMatrix,
    state: &mut CgState,
) {
    let q = spmv(a, &state.p);
    let p_ap = state.p.dot(&q);
    let alpha = state.rs_old.div(&p_ap);
    let xn = np.zeros(&[state.x.len()]);
    let rn = np.zeros(&[state.r.len()]);
    // Intern the block partition once; every argument then carries a Copy id.
    let block = PartitionId::intern(&state.x.partition());
    np.context()
        .task(update)
        .read(state.x.handle(), block)
        .read(state.r.handle(), block)
        .read(state.p.handle(), block)
        .read(q.handle(), block)
        .read(alpha.handle(), Partition::Replicate)
        .write(xn.handle(), block)
        .write(rn.handle(), block)
        .launch();
    state.x = xn;
    state.r = rn;
    let rs_new = state.r.dot(&state.r);
    let beta = rs_new.div(&state.rs_old);
    state.p = state.r.axpy(&beta, &state.p, 1.0);
    state.rs_old = rs_new;
}

fn run_petsc(gpus: usize, grid: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    let mut solver = PetscSolver::new(MachineConfig::with_gpus(gpus), functional);
    let a = if functional {
        solver.poisson_2d(grid)
    } else {
        solver.poisson_2d_symbolic(grid)
    };
    let rows = grid * grid;
    let b = solver.vector(rows, 1.0);
    let x = solver.vector(rows, 0.0);
    solver.reset_timing();
    let result = solver.cg(&a, b, x, iterations);
    BenchmarkResult {
        name: "CG".into(),
        mode: Mode::Petsc,
        gpus,
        iterations,
        elapsed: result.elapsed,
        throughput: if result.elapsed > 0.0 {
            iterations as f64 / result.elapsed
        } else {
            0.0
        },
        // PETSc CG issues roughly 8 vector/matrix calls per iteration.
        tasks_per_iteration: 8.0,
        launches_per_iteration: 8.0,
        avg_task_ms: result.elapsed / (iterations.max(1) * 8) as f64 * 1e3,
        window_size: 0,
        compile_time: 0.0,
        warmup_elapsed: 0.0,
        checksum: result.residual,
    }
}

/// Runs CG with `per_gpu` matrix rows per GPU, weak scaled.
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    let grid = grid_size(gpus, per_gpu);
    if mode == Mode::Petsc {
        return run_petsc(gpus, grid, iterations, functional);
    }
    let np = dense_context(mode, gpus, functional);
    let update = register_cg_update(&np);
    let (a, b) = setup(&np, grid, functional);
    let mut state = cg_init(&np, &a, &b);
    let mut result = measure(
        "CG",
        mode,
        &np,
        1,
        iterations,
        |_| match mode {
            Mode::ManuallyFused => cg_iteration_manual(&np, update, &a, &mut state),
            _ => cg_iteration(&a, &mut state),
        },
        None,
    );
    if functional {
        result.checksum = state.rs_old.scalar_value();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_converge_to_the_same_residual() {
        let fused = run(Mode::Fused, 2, 32, 30, true);
        let unfused = run(Mode::Unfused, 2, 32, 30, true);
        let manual = run(Mode::ManuallyFused, 2, 32, 30, true);
        let petsc = run(Mode::Petsc, 2, 32, 30, true);
        for r in [&fused, &unfused, &manual, &petsc] {
            assert!(
                r.checksum.unwrap() < 1e-6,
                "{} residual {}",
                r.mode,
                r.checksum.unwrap()
            );
        }
        assert!((fused.checksum.unwrap() - unfused.checksum.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn fusion_reduces_launches_per_iteration() {
        let fused = run(Mode::Fused, 4, 64, 10, true);
        let unfused = run(Mode::Unfused, 4, 64, 10, true);
        let manual = run(Mode::ManuallyFused, 4, 64, 10, true);
        // Natural CG submits ~8-12 tasks per iteration.
        assert!(unfused.tasks_per_iteration >= 7.0 && unfused.tasks_per_iteration <= 14.0);
        assert!(fused.launches_per_iteration < unfused.launches_per_iteration);
        // The manual fusion reduces the task count but less than Diffuse does.
        assert!(manual.tasks_per_iteration < unfused.tasks_per_iteration);
    }
}
