//! 2-D heat diffusion composing the stencil and dense libraries.
//!
//! This is the cross-library workload the Library-API redesign is proved on:
//! each step applies the stencil library's 5-point star to a ghost-bordered
//! temperature grid (producing the next time level) and then computes the
//! step's change energy with dense reductions over *views of the same
//! stores* — two independently written libraries exchanging nothing but
//! store handles. Because the dense reduction reads the freshly written
//! interior through exactly the partition the stencil wrote it with, the
//! dependence is point-wise and the star + dense tasks land in one fused
//! window (the three-library sibling of this pipeline is asserted fused in
//! `tests/cross_library.rs`).

use dense::{DArray, DenseContext};
use diffuse::StoreHandle;
use stencil::StencilContext;

use crate::common::{dense_context, measure, BenchmarkResult, Mode};

/// Explicit-Euler diffusion number (stable for the 2-D 5-point star).
const ALPHA_DT: f64 = 0.2;

struct Heat {
    np: DenseContext,
    st: StencilContext,
    /// Double-buffered temperature grids with a one-cell ghost boundary.
    cur: StoreHandle,
    next: StoreHandle,
    /// Interior edge length.
    n: u64,
}

impl Heat {
    fn new(np: &DenseContext, n: u64, functional: bool) -> Heat {
        let st = StencilContext::new(np.context());
        let ctx = np.context();
        let shape = vec![n + 2, n + 2];
        let cur = ctx.create_store(shape.clone(), "heat_cur");
        let next = ctx.create_store(shape, "heat_next");
        if functional {
            // A hot square in the middle of a cold plate, hot west edge.
            let m = n + 2;
            let data: Vec<f64> = (0..m * m)
                .map(|i| {
                    let (r, c) = (i / m, i % m);
                    if c == 0 {
                        1.0
                    } else if r > m / 3 && r < 2 * m / 3 && c > m / 3 && c < 2 * m / 3 {
                        2.0
                    } else {
                        0.0
                    }
                })
                .collect();
            ctx.write_store(&cur, data.clone());
            // Both buffers share the boundary condition; star updates only
            // write interiors, so ghosts persist across the swap.
            ctx.write_store(&next, data);
        }
        Heat {
            np: np.clone(),
            st,
            cur,
            next,
            n,
        }
    }

    /// Dense view of a grid's interior.
    fn interior(&self, grid: &StoreHandle) -> DArray {
        self.np
            .wrap(grid.clone())
            .slice_2d(1..self.n + 1, 1..self.n + 1)
    }

    /// One explicit diffusion step; returns the step's squared change energy
    /// as a dense scalar array. The star task (stencil library) and the
    /// sub/sum_sq tasks (dense library) fuse into one launch.
    fn step(&mut self) -> DArray {
        // next_interior = cur + alpha*dt * laplacian(cur)
        let c = ALPHA_DT;
        self.st
            .star_2d(&self.cur, &self.next, [1.0 - 4.0 * c, c, c, c, c]);
        let change = self.interior(&self.next).sub(&self.interior(&self.cur));
        let energy = change.sum_sq();
        std::mem::swap(&mut self.cur, &mut self.next);
        energy
    }
}

/// Runs the heat solver with `per_gpu` interior grid points per GPU, weak
/// scaled (the edge grows with the square root of the machine size). The
/// interior edge is rounded to a multiple of the GPU count so the stencil's
/// row blocks tile exactly.
///
/// # Panics
///
/// Panics if `mode` is not [`Mode::Fused`] or [`Mode::Unfused`].
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(
        matches!(mode, Mode::Fused | Mode::Unfused),
        "heat supports only the fused and unfused modes"
    );
    let np = dense_context(mode, gpus, functional);
    let raw = ((per_gpu * gpus as u64) as f64).sqrt().floor().max(4.0) as u64;
    let n = (raw / gpus as u64).max(1) * gpus as u64;
    let mut heat = Heat::new(&np, n, functional);
    let mut last_energy: Option<DArray> = None;
    let mut result = measure(
        "Heat",
        mode,
        &np,
        1,
        iterations,
        |_| {
            last_energy = Some(heat.step());
        },
        None,
    );
    if functional {
        // Checksum: total interior heat plus the last step's change energy.
        let total = heat.interior(&heat.cur).sum();
        let energy = last_energy.as_ref().expect("at least one iteration ran");
        result.checksum = Some(
            total.scalar_value().unwrap_or(0.0) + energy.scalar_value().unwrap_or(0.0),
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_matches_unfused() {
        let fused = run(Mode::Fused, 2, 64, 4, true);
        let unfused = run(Mode::Unfused, 2, 64, 4, true);
        let (a, b) = (fused.checksum.unwrap(), unfused.checksum.unwrap());
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "fused {a} vs unfused {b}"
        );
        assert!(
            fused.launches_per_iteration < unfused.tasks_per_iteration,
            "the star + dense-reduction step must fuse"
        );
    }

    #[test]
    fn stencil_and_dense_tasks_share_fused_launches() {
        let np = dense_context(Mode::Fused, 2, true);
        let mut heat = Heat::new(&np, 16, true);
        for _ in 0..3 {
            let _ = heat.step();
        }
        np.flush();
        let stats = np.context().stats();
        assert!(
            stats.cross_library_fused_tasks >= 3,
            "each step must fuse stencil and dense tasks into one launch: {stats:?}"
        );
        let stencil_stats = stats.library("stencil").unwrap();
        assert_eq!(stencil_stats.tasks_submitted, 3);
        assert!(stencil_stats.cross_library_launches >= 3);
        assert!(stats.library("dense").unwrap().tasks_submitted >= 6);
    }

    #[test]
    fn heat_diffuses_monotonically() {
        // With a fixed hot edge, successive change energies shrink.
        let np = dense_context(Mode::Fused, 2, true);
        let mut heat = Heat::new(&np, 16, true);
        let e1 = heat.step().scalar_value().unwrap();
        for _ in 0..5 {
            let _ = heat.step();
        }
        let e7 = heat.step().scalar_value().unwrap();
        assert!(e7 < e1, "diffusion must settle: {e1} -> {e7}");
        assert!(e1.is_finite() && e7 > 0.0);
    }
}
