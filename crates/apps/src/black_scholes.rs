//! Black-Scholes option pricing (Figure 10a).
//!
//! A trivially parallel micro-benchmark: one iteration is a long sequence of
//! data-parallel elementwise operations over option parameter arrays, all of
//! which are fusible. The paper reports that the entire iteration collapses
//! into a single fused task, yielding up to a 10.7x speedup.

use dense::{DArray, DenseContext};

use crate::common::{dense_context, measure, BenchmarkResult, Mode};

const RISK_FREE_RATE: f64 = 0.02;
const VOLATILITY: f64 = 0.3;
const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// The cumulative normal distribution written with elementwise library calls,
/// as a NumPy user would: `0.5 * (1 + erf(x / sqrt(2)))`.
fn cdf(x: &DArray) -> DArray {
    x.scalar_mul(SQRT2_INV).erf().scalar_add(1.0).scalar_mul(0.5)
}

/// One pricing pass over the option arrays: returns (call, put). Shared with
/// the batched variant, which prices many independent option sets per
/// iteration.
pub(crate) fn price(s: &DArray, k: &DArray, t: &DArray) -> (DArray, DArray) {
    // d1 = (ln(S/K) + (r + 0.5 sigma^2) T) / (sigma sqrt(T))
    let log_moneyness = s.div(k).ln();
    let drift = t.scalar_mul(RISK_FREE_RATE + 0.5 * VOLATILITY * VOLATILITY);
    let numerator = log_moneyness.add(&drift);
    let denom = t.sqrt().scalar_mul(VOLATILITY);
    let d1 = numerator.div(&denom);
    let d2 = d1.sub(&denom);
    // Discount factor exp(-r T), recomputed as a user naturally would.
    let discount = t.scalar_mul(-RISK_FREE_RATE).exp();
    let kd = k.mul(&discount);
    // call = S N(d1) - K e^{-rT} N(d2)
    let call = s.mul(&cdf(&d1)).sub(&kd.mul(&cdf(&d2)));
    // put = K e^{-rT} N(-d2) - S N(-d1)
    let put = kd.mul(&cdf(&d2.neg())).sub(&s.mul(&cdf(&d1.neg())));
    (call, put)
}

fn setup(np: &DenseContext, n: u64, functional: bool) -> (DArray, DArray, DArray) {
    if functional {
        let s = np.random(&[n], 1).scalar_mul(100.0).scalar_add(50.0);
        let k = np.random(&[n], 2).scalar_mul(100.0).scalar_add(50.0);
        let t = np.random(&[n], 3).scalar_mul(2.0).scalar_add(0.05);
        (s, k, t)
    } else {
        (np.full(&[n], 100.0), np.full(&[n], 105.0), np.full(&[n], 1.0))
    }
}

/// Runs Black-Scholes: `per_gpu` options per GPU, weak scaled.
///
/// # Panics
///
/// Panics if `mode` is not [`Mode::Fused`] or [`Mode::Unfused`].
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(
        matches!(mode, Mode::Fused | Mode::Unfused),
        "Black-Scholes supports only the fused and unfused modes"
    );
    let np = dense_context(mode, gpus, functional);
    let n = per_gpu * gpus as u64;
    let (s, k, t) = setup(&np, n, functional);
    let mut last: Option<(DArray, DArray)> = None;
    let mut result = measure(
        "Black-Scholes",
        mode,
        &np,
        1,
        iterations,
        |_| {
            last = Some(price(&s, &k, &t));
        },
        None,
    );
    if functional {
        if let Some((call, put)) = &last {
            let checksum = call.sum().scalar_value().unwrap_or(0.0)
                + put.sum().scalar_value().unwrap_or(0.0);
            result.checksum = Some(checksum);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_matches_unfused_and_prices_are_sane() {
        let fused = run(Mode::Fused, 4, 64, 2, true);
        let unfused = run(Mode::Unfused, 4, 64, 2, true);
        let (a, b) = (fused.checksum.unwrap(), unfused.checksum.unwrap());
        assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "fused {a} vs unfused {b}");
        assert!(a.is_finite() && a > 0.0);
    }

    #[test]
    fn fusion_collapses_the_iteration() {
        let fused = run(Mode::Fused, 4, 64, 3, true);
        let unfused = run(Mode::Unfused, 4, 64, 3, true);
        // Dozens of elementwise tasks per iteration in the unfused stream.
        assert!(unfused.tasks_per_iteration > 30.0);
        // Fusion reduces launches per iteration by at least an order of
        // magnitude (the paper reports 67 -> 1).
        assert!(fused.launches_per_iteration * 10.0 <= unfused.launches_per_iteration);
        assert!(fused.throughput > unfused.throughput);
    }

    #[test]
    fn black_scholes_put_call_parity() {
        // C - P = S - K e^{-rT} elementwise.
        let np = dense_context(Mode::Fused, 2, true);
        let s = np.full(&[16], 100.0);
        let k = np.full(&[16], 105.0);
        let t = np.full(&[16], 1.0);
        let (call, put) = price(&s, &k, &t);
        let lhs = call.sub(&put).to_vec().unwrap();
        let rhs = 100.0 - 105.0 * (-RISK_FREE_RATE).exp();
        for v in lhs {
            assert!((v - rhs).abs() < 1e-6, "parity violated: {v} vs {rhs}");
        }
    }
}
