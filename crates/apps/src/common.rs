//! Shared benchmark plumbing: modes, measurement and result records.

use dense::{DArray, DenseContext};
use diffuse::{BackendKind, Context, DiffuseConfig, ExecutorKind};
use machine::MachineConfig;
use sparse::CsrMatrix;

/// `A @ x`, bridging the two libraries the way the paper composes them: the
/// sparse library takes and returns bare [`diffuse::StoreHandle`]s
/// (cross-library sharing is by store handle only), and the dense library
/// wraps the result back into an array for the surrounding vector code. The
/// SpMV task joins the same window as the dense tasks around it.
pub fn spmv(a: &CsrMatrix, x: &DArray) -> DArray {
    x.dense_context().wrap(a.spmv(x.handle()))
}

/// Which variant of an application to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Natural application code with Diffuse's task and kernel fusion.
    Fused,
    /// Natural application code with fusion disabled (the unmodified
    /// cuPyNumeric / Legate Sparse baseline).
    Unfused,
    /// Hand-optimized application code without Diffuse (the "manually fused"
    /// baselines of Figures 11a and 12c).
    ManuallyFused,
    /// The explicitly parallel MPI library baseline (PETSc).
    Petsc,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Mode::Fused => "Fused",
            Mode::Unfused => "Unfused",
            Mode::ManuallyFused => "Manually Fused",
            Mode::Petsc => "PETSc",
        };
        write!(f, "{s}")
    }
}

/// The outcome of one application run at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    /// Application name.
    pub name: String,
    /// Variant that produced this result.
    pub mode: Mode,
    /// Number of GPUs simulated.
    pub gpus: usize,
    /// Iterations measured (after warmup).
    pub iterations: u64,
    /// Simulated seconds for the measured iterations.
    pub elapsed: f64,
    /// Iterations per simulated second.
    pub throughput: f64,
    /// Index tasks submitted by the application per iteration.
    pub tasks_per_iteration: f64,
    /// Index tasks actually launched per iteration (after fusion).
    pub launches_per_iteration: f64,
    /// Mean duration of a launched task in milliseconds.
    pub avg_task_ms: f64,
    /// Task-window size selected by Diffuse (0 for non-Diffuse modes).
    pub window_size: u64,
    /// Simulated JIT compilation seconds (0 for non-Diffuse modes).
    pub compile_time: f64,
    /// Simulated seconds of the warmup phase, excluding compilation.
    pub warmup_elapsed: f64,
    /// A checksum of the result data when running functionally (used by the
    /// correctness tests to compare modes); `None` in simulation-only runs.
    pub checksum: Option<f64>,
}

impl BenchmarkResult {
    /// Warmup time including JIT compilation (the "Compiled" column of
    /// Figure 13).
    pub fn warmup_with_compile(&self) -> f64 {
        self.warmup_elapsed + self.compile_time
    }
}

/// Creates the dense library over a Diffuse context configured for `mode`.
///
/// The runtime executor follows the `DIFFUSE_EXECUTOR` environment variable
/// (serial when unset); use [`dense_context_with_executor`] to pick one
/// explicitly.
pub fn dense_context(mode: Mode, gpus: usize, functional: bool) -> DenseContext {
    dense_context_with_executor(mode, gpus, functional, ExecutorKind::from_env())
}

/// Creates the dense library over a Diffuse context configured for `mode`,
/// running functional kernel work on an explicitly chosen executor — the
/// thread-safe alternative to setting `DIFFUSE_EXECUTOR` for callers that
/// build their own workloads. The kernel backend still follows
/// `DIFFUSE_BACKEND`; use [`dense_context_configured`] to pin both axes.
pub fn dense_context_with_executor(
    mode: Mode,
    gpus: usize,
    functional: bool,
    executor: ExecutorKind,
) -> DenseContext {
    dense_context_configured(mode, gpus, functional, executor, BackendKind::from_env())
}

/// Creates the dense library over a Diffuse context configured for `mode`
/// with both execution axes pinned: which executor schedules functional
/// kernel work, and which kernel backend compiles fused modules. This is the
/// thread-safe way to run interp-vs-closure (or serial-vs-parallel)
/// comparisons in one process.
pub fn dense_context_configured(
    mode: Mode,
    gpus: usize,
    functional: bool,
    executor: ExecutorKind,
    backend: BackendKind,
) -> DenseContext {
    let machine = MachineConfig::with_gpus(gpus);
    let mut config = match mode {
        Mode::Fused => DiffuseConfig::fused(machine),
        // Both the unfused baseline and hand-optimized code run without
        // Diffuse's optimizations.
        Mode::Unfused | Mode::ManuallyFused | Mode::Petsc => DiffuseConfig::unfused(machine),
    };
    config = config.with_executor(executor).with_backend(backend);
    if !functional {
        config = config.simulation_only();
    }
    DenseContext::new(Context::new(config))
}

/// Measurement helper: runs `warmup` iterations of `body`, resets the clock,
/// runs `iterations` more, and assembles a [`BenchmarkResult`].
pub fn measure<F>(
    name: &str,
    mode: Mode,
    np: &DenseContext,
    warmup: u64,
    iterations: u64,
    mut body: F,
    checksum: Option<f64>,
) -> BenchmarkResult
where
    F: FnMut(u64),
{
    let ctx = np.context().clone();
    for i in 0..warmup {
        body(i);
    }
    ctx.flush();
    let warmup_elapsed = ctx.elapsed();
    ctx.reset_timing();
    let stats0 = ctx.stats();
    for i in 0..iterations {
        body(warmup + i);
    }
    ctx.flush();
    let elapsed = ctx.elapsed();
    let stats = ctx.stats().since(&stats0);
    let all_stats = ctx.stats();
    let launches = stats.tasks_launched.max(1);
    BenchmarkResult {
        name: name.to_string(),
        mode,
        gpus: ctx.gpus(),
        iterations,
        elapsed,
        throughput: if elapsed > 0.0 {
            iterations as f64 / elapsed
        } else {
            0.0
        },
        tasks_per_iteration: stats.tasks_submitted as f64 / iterations.max(1) as f64,
        launches_per_iteration: stats.tasks_launched as f64 / iterations.max(1) as f64,
        avg_task_ms: elapsed / launches as f64 * 1e3,
        window_size: all_stats.current_window_size,
        compile_time: all_stats.compile_time,
        warmup_elapsed,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(Mode::Fused.to_string(), "Fused");
        assert_eq!(Mode::ManuallyFused.to_string(), "Manually Fused");
    }

    #[test]
    fn measure_counts_iterations_and_tasks() {
        let np = dense_context(Mode::Fused, 2, true);
        let a = np.ones(&[16]);
        let b = np.ones(&[16]);
        let result = measure(
            "demo",
            Mode::Fused,
            &np,
            1,
            3,
            |_| {
                let c = a.add(&b);
                let _ = c.scalar_mul(0.5);
            },
            None,
        );
        assert_eq!(result.iterations, 3);
        assert!(result.elapsed > 0.0);
        assert!(result.throughput > 0.0);
        assert!((result.tasks_per_iteration - 2.0).abs() < 1e-9);
        assert!(result.launches_per_iteration <= result.tasks_per_iteration);
        assert!(result.warmup_with_compile() >= result.warmup_elapsed);
    }

    #[test]
    fn dense_context_modes() {
        assert!(dense_context(Mode::Fused, 2, true).context().config().enable_task_fusion);
        assert!(!dense_context(Mode::Unfused, 2, true).context().config().enable_task_fusion);
        assert!(!dense_context(Mode::Petsc, 2, false).context().config().materialize_data);
    }

    #[test]
    fn explicit_backend_choice_reaches_the_config() {
        for backend in [BackendKind::Closure, BackendKind::Simd] {
            let np = dense_context_configured(
                Mode::Fused,
                2,
                true,
                ExecutorKind::Serial,
                backend,
            );
            assert_eq!(np.context().config().backend, backend);
            let a = np.ones(&[16]);
            let b = np.ones(&[16]);
            assert_eq!(a.add(&b).to_vec().unwrap(), vec![2.0; 16]);
        }
    }

    #[test]
    fn explicit_executor_choice_reaches_the_config() {
        let ws = ExecutorKind::WorkStealing { workers: Some(2) };
        let np = dense_context_with_executor(Mode::Fused, 2, true, ws);
        assert_eq!(np.context().config().executor, ws);
        // And the workload still runs correctly on it.
        let a = np.ones(&[16]);
        let b = np.ones(&[16]);
        assert_eq!(a.add(&b).to_vec().unwrap(), vec![2.0; 16]);
    }
}
