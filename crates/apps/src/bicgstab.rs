//! BiCGSTAB on the 2-D Poisson problem (Figure 11b).
//!
//! The natural implementation uses twice as many vector operations per
//! iteration as CG, giving Diffuse more to fuse. The PETSc baseline uses
//! PETSc's hand-fused `VecAXPBYPCZ` kernel, as the paper notes.

use dense::{DArray, DenseContext};
use machine::MachineConfig;
use petsc::PetscSolver;
use sparse::{CsrMatrix, SparseContext};

use crate::common::{dense_context, measure, spmv, BenchmarkResult, Mode};

fn grid_size(gpus: usize, per_gpu: u64) -> u64 {
    ((per_gpu * gpus as u64) as f64).sqrt().floor().max(2.0) as u64
}

struct BicgState {
    x: DArray,
    r: DArray,
    r0: DArray,
    p: DArray,
    rho: DArray,
}

fn init(np: &DenseContext, a: &CsrMatrix, b: &DArray) -> BicgState {
    let x = np.zeros(&[a.rows()]);
    let r = b.copy();
    let r0 = r.copy();
    let p = r.copy();
    let rho = r0.dot(&r);
    BicgState { x, r, r0, p, rho }
}

/// One natural BiCGSTAB iteration written with SciPy-style operations.
fn iteration(a: &CsrMatrix, s: &mut BicgState) {
    let v = spmv(a, &s.p);
    let r0v = s.r0.dot(&v);
    let alpha = s.rho.div(&r0v);
    // s_vec = r - alpha v
    let s_vec = s.r.axpy(&alpha, &v, -1.0);
    let t = spmv(a, &s_vec);
    let tt = t.dot(&t);
    let ts = t.dot(&s_vec);
    let omega = ts.div(&tt);
    // x = x + alpha p + omega s
    let x1 = s.x.axpy(&alpha, &s.p, 1.0);
    s.x = x1.axpy(&omega, &s_vec, 1.0);
    // r = s - omega t
    s.r = s_vec.axpy(&omega, &t, -1.0);
    let rho_new = s.r0.dot(&s.r);
    let beta_num = rho_new.div(&s.rho);
    let beta = beta_num.mul(&alpha.div(&omega));
    // p = r + beta (p - omega v)
    let p_minus = s.p.axpy(&omega, &v, -1.0);
    s.p = s.r.axpy(&beta, &p_minus, 1.0);
    s.rho = rho_new;
}

fn run_petsc(gpus: usize, grid: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    let mut solver = PetscSolver::new(MachineConfig::with_gpus(gpus), functional);
    let a = if functional {
        solver.poisson_2d(grid)
    } else {
        solver.poisson_2d_symbolic(grid)
    };
    let rows = grid * grid;
    let b = solver.vector(rows, 1.0);
    let x = solver.vector(rows, 0.0);
    solver.reset_timing();
    let result = solver.bicgstab(&a, b, x, iterations);
    BenchmarkResult {
        name: "BiCGSTAB".into(),
        mode: Mode::Petsc,
        gpus,
        iterations,
        elapsed: result.elapsed,
        throughput: if result.elapsed > 0.0 {
            iterations as f64 / result.elapsed
        } else {
            0.0
        },
        tasks_per_iteration: 13.0,
        launches_per_iteration: 13.0,
        avg_task_ms: result.elapsed / (iterations.max(1) * 13) as f64 * 1e3,
        window_size: 0,
        compile_time: 0.0,
        warmup_elapsed: 0.0,
        checksum: result.residual,
    }
}

/// Runs BiCGSTAB with `per_gpu` matrix rows per GPU, weak scaled.
///
/// # Panics
///
/// Panics if `mode` is [`Mode::ManuallyFused`] (the paper has no such variant
/// for BiCGSTAB).
pub fn run(mode: Mode, gpus: usize, per_gpu: u64, iterations: u64, functional: bool) -> BenchmarkResult {
    assert!(
        mode != Mode::ManuallyFused,
        "BiCGSTAB has no manually fused variant"
    );
    let grid = grid_size(gpus, per_gpu);
    if mode == Mode::Petsc {
        return run_petsc(gpus, grid, iterations, functional);
    }
    let np = dense_context(mode, gpus, functional);
    let sp = SparseContext::new(np.context());
    let a = if functional {
        CsrMatrix::poisson_2d(&sp, grid)
    } else {
        CsrMatrix::poisson_2d_symbolic(&sp, grid)
    };
    let b = np.ones(&[a.rows()]);
    let mut state = init(&np, &a, &b);
    let mut result = measure(
        "BiCGSTAB",
        mode,
        &np,
        1,
        iterations,
        |_| iteration(&a, &mut state),
        None,
    );
    if functional {
        result.checksum = state.r.dot(&state.r).scalar_value();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_converge_and_agree() {
        let fused = run(Mode::Fused, 2, 32, 25, true);
        let unfused = run(Mode::Unfused, 2, 32, 25, true);
        let petsc = run(Mode::Petsc, 2, 32, 25, true);
        for r in [&fused, &unfused, &petsc] {
            assert!(
                r.checksum.unwrap() < 1e-6,
                "{} residual {}",
                r.mode,
                r.checksum.unwrap()
            );
        }
        assert!((fused.checksum.unwrap() - unfused.checksum.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn task_counts_match_the_papers_shape() {
        let fused = run(Mode::Fused, 4, 64, 8, true);
        let unfused = run(Mode::Unfused, 4, 64, 8, true);
        // The paper reports roughly 27 tasks per iteration unfused and 8 fused.
        assert!(unfused.tasks_per_iteration >= 14.0);
        assert!(fused.launches_per_iteration < unfused.launches_per_iteration);
    }
}
