//! A Legate-Sparse-equivalent distributed CSR library targeting Diffuse.
//!
//! Legate Sparse provides SciPy-sparse-style distributed sparse matrices on
//! top of the same runtime stack as cuPyNumeric; the paper's Krylov solvers
//! (CG, BiCGSTAB) and multigrid solver compose it with cuPyNumeric. This crate
//! provides the CSR matrix type and SpMV kernel the reproduction needs, built
//! on the same Diffuse context as the dense library so that sparse and dense
//! tasks flow through one fusion window — the cross-library composition the
//! paper emphasizes.
//!
//! The CSR coordinate width is configurable ([`IndexWidth`]); the evaluation's
//! controlled comparison against PETSc stores coordinates as 32-bit integers,
//! which is the default here as well.
//!
//! # Example
//!
//! ```
//! use dense::DenseContext;
//! use diffuse::{Context, DiffuseConfig};
//! use machine::MachineConfig;
//! use sparse::{CsrMatrix, SparseContext};
//!
//! let np = DenseContext::new(Context::new(DiffuseConfig::fused(
//!     MachineConfig::single_node(2),
//! )));
//! let sp = SparseContext::new(&np);
//! // The 2-point Laplacian of a 4-cell 1-D grid.
//! let a = CsrMatrix::from_dense(&sp, 4, 4, &|r, c| {
//!     if r == c { 2.0 } else if r.abs_diff(c) == 1 { -1.0 } else { 0.0 }
//! });
//! let x = np.ones(&[4]);
//! let y = a.spmv(&x);
//! assert_eq!(y.to_vec().unwrap(), vec![1.0, 0.0, 0.0, 1.0]);
//! ```

use dense::{DArray, DenseContext};
use ir::{Partition, Privilege, StoreArg};
use kernel::{BufferId, BufferRole, IndexWidth, KernelModule, OpaqueOp, TaskKind};

/// The sparse library: registers the SpMV generator and builds CSR matrices.
#[derive(Clone, Debug)]
pub struct SparseContext {
    dense: DenseContext,
    spmv32: TaskKind,
    spmv64: TaskKind,
}

fn spmv_generator(width: IndexWidth) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let mut m = KernelModule::new(5);
        m.set_role(BufferId(4), BufferRole::Output);
        m.push_opaque(OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: width,
        });
        m
    }
}

impl SparseContext {
    /// Creates the sparse library over the same Diffuse context as the dense
    /// library.
    pub fn new(dense: &DenseContext) -> Self {
        let spmv32 = dense
            .context()
            .register_generator("spmv_csr_u32", spmv_generator(IndexWidth::U32));
        let spmv64 = dense
            .context()
            .register_generator("spmv_csr_u64", spmv_generator(IndexWidth::U64));
        SparseContext {
            dense: dense.clone(),
            spmv32,
            spmv64,
        }
    }

    /// The dense library this sparse library composes with.
    pub fn dense(&self) -> &DenseContext {
        &self.dense
    }
}

/// A distributed CSR sparse matrix.
///
/// Row offsets, column indices and values are ordinary Diffuse stores (held as
/// dense arrays of `f64`, with indices stored as exact integers in the f64
/// mantissa), partitioned by row blocks / nonzero blocks across the machine.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    ctx: SparseContext,
    /// Row offsets, length `rows + 1`.
    pub pos: DArray,
    /// Column indices, length `nnz`.
    pub crd: DArray,
    /// Nonzero values, length `nnz`.
    pub vals: DArray,
    rows: u64,
    cols: u64,
    nnz: u64,
    index_width: IndexWidth,
}

impl CsrMatrix {
    /// Builds a CSR matrix from an element function over a dense index space.
    /// Only nonzero entries are stored.
    pub fn from_dense(
        ctx: &SparseContext,
        rows: u64,
        cols: u64,
        f: &dyn Fn(u64, u64) -> f64,
    ) -> CsrMatrix {
        let mut pos = Vec::with_capacity(rows as usize + 1);
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        pos.push(0.0);
        for r in 0..rows {
            for c in 0..cols {
                let v = f(r, c);
                if v != 0.0 {
                    crd.push(c as f64);
                    vals.push(v);
                }
            }
            pos.push(crd.len() as f64);
        }
        Self::from_csr_parts(ctx, rows, cols, pos, crd, vals)
    }

    /// Builds a CSR matrix from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent.
    pub fn from_csr_parts(
        ctx: &SparseContext,
        rows: u64,
        cols: u64,
        pos: Vec<f64>,
        crd: Vec<f64>,
        vals: Vec<f64>,
    ) -> CsrMatrix {
        assert_eq!(pos.len() as u64, rows + 1, "pos must have rows + 1 entries");
        assert_eq!(crd.len(), vals.len(), "crd and vals must have equal length");
        let nnz = crd.len() as u64;
        let np = &ctx.dense;
        CsrMatrix {
            ctx: ctx.clone(),
            pos: np.from_vec(&[rows + 1], pos),
            crd: np.from_vec(&[nnz.max(1)], if crd.is_empty() { vec![0.0] } else { crd }),
            vals: np.from_vec(&[nnz.max(1)], if vals.is_empty() { vec![0.0] } else { vals }),
            rows,
            cols,
            nnz,
            index_width: IndexWidth::U32,
        }
    }

    /// The standard 5-point Laplacian of an `n x n` grid (the matrix used by
    /// the paper's CG/BiCGSTAB/GMG weak-scaling studies).
    pub fn poisson_2d(ctx: &SparseContext, n: u64) -> CsrMatrix {
        let size = n * n;
        let mut pos = Vec::with_capacity(size as usize + 1);
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        pos.push(0.0);
        for i in 0..n {
            for j in 0..n {
                let row = i * n + j;
                let _ = row;
                let mut push = |r: i64, c: i64, v: f64| {
                    if r >= 0 && c >= 0 && (r as u64) < n && (c as u64) < n {
                        crd.push((r as u64 * n + c as u64) as f64);
                        vals.push(v);
                    }
                };
                push(i as i64 - 1, j as i64, -1.0);
                push(i as i64, j as i64 - 1, -1.0);
                push(i as i64, j as i64, 4.0);
                push(i as i64, j as i64 + 1, -1.0);
                push(i as i64 + 1, j as i64, -1.0);
                pos.push(crd.len() as f64);
            }
        }
        Self::from_csr_parts(ctx, size, size, pos, crd, vals)
    }

    /// Builds a CSR matrix *symbolically*: the stores have the right shapes
    /// (so the cost model sees the right data volumes) but no host data is
    /// generated. Used by the benchmark harness for machine-scale problem
    /// sizes in simulation-only mode; must not be used functionally.
    pub fn symbolic(ctx: &SparseContext, rows: u64, cols: u64, nnz: u64) -> CsrMatrix {
        let np = &ctx.dense;
        CsrMatrix {
            ctx: ctx.clone(),
            pos: np.zeros(&[rows + 1]),
            crd: np.zeros(&[nnz.max(1)]),
            vals: np.zeros(&[nnz.max(1)]),
            rows,
            cols,
            nnz,
            index_width: IndexWidth::U32,
        }
    }

    /// Symbolic variant of [`CsrMatrix::poisson_2d`]: the 5-point stencil has
    /// `5 n^2 - 4 n` stored nonzeros.
    pub fn poisson_2d_symbolic(ctx: &SparseContext, n: u64) -> CsrMatrix {
        Self::symbolic(ctx, n * n, n * n, 5 * n * n - 4 * n)
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Sets the coordinate width used by the cost model (the paper's PETSc
    /// comparison stores coordinates as 32-bit integers).
    pub fn with_index_width(mut self, width: IndexWidth) -> Self {
        self.index_width = width;
        self
    }

    /// Sparse matrix-vector product `self @ x`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    pub fn spmv(&self, x: &DArray) -> DArray {
        assert_eq!(x.len(), self.cols, "dimension mismatch in spmv");
        let np = &self.ctx.dense;
        let gpus = np.gpus();
        let y = np.zeros(&[self.rows]);
        let kind = match self.index_width {
            IndexWidth::U32 => self.ctx.spmv32,
            IndexWidth::U64 => self.ctx.spmv64,
        };
        let block = |len: u64| Partition::block(vec![len.div_ceil(gpus).max(1)]);
        np.context().submit(
            kind,
            "spmv",
            vec![
                StoreArg::new(self.pos.handle().id(), block(self.rows + 1), Privilege::Read),
                StoreArg::new(self.crd.handle().id(), block(self.nnz.max(1)), Privilege::Read),
                StoreArg::new(self.vals.handle().id(), block(self.nnz.max(1)), Privilege::Read),
                StoreArg::new(x.handle().id(), Partition::Replicate, Privilege::Read),
                StoreArg::new(y.handle().id(), block(self.rows), Privilege::Write),
            ],
            vec![],
        );
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse::{Context, DiffuseConfig};
    use machine::MachineConfig;

    fn setup(gpus: usize) -> (DenseContext, SparseContext) {
        let np = DenseContext::new(Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(
            gpus,
        ))));
        let sp = SparseContext::new(&np);
        (np, sp)
    }

    #[test]
    fn spmv_matches_dense_matvec() {
        let (np, sp) = setup(2);
        let dense_fn = |r: u64, c: u64| ((r * 3 + c) % 5) as f64 - 1.0;
        let a_sparse = CsrMatrix::from_dense(&sp, 6, 6, &dense_fn);
        let a_dense = np.from_vec(
            &[6, 6],
            (0..36).map(|i| dense_fn(i / 6, i % 6)).collect(),
        );
        let x = np.from_vec(&[6], (0..6).map(|i| i as f64).collect());
        let ys = a_sparse.spmv(&x).to_vec().unwrap();
        let yd = a_dense.matvec(&x).to_vec().unwrap();
        for (s, d) in ys.iter().zip(&yd) {
            assert!((s - d).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_matrix_properties() {
        let (np, sp) = setup(2);
        let n = 4u64;
        let a = CsrMatrix::poisson_2d(&sp, n);
        assert_eq!(a.rows(), 16);
        assert_eq!(a.cols(), 16);
        // 5-point stencil: 5 per interior row minus boundary truncations.
        assert!(a.nnz() > 3 * 16 && a.nnz() < 5 * 16);
        // The Laplacian of a constant vector is zero in the interior.
        let x = np.ones(&[16]);
        let y = a.spmv(&x).to_vec().unwrap();
        // Interior point (1,1) -> row 5 has all 5 neighbours: 4 - 4 = 0.
        assert_eq!(y[5], 0.0);
        // Corner point (0,0) -> row 0: 4 - 2 = 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn index_width_is_configurable() {
        let (_np, sp) = setup(2);
        let a = CsrMatrix::poisson_2d(&sp, 2).with_index_width(IndexWidth::U64);
        assert_eq!(a.index_width, IndexWidth::U64);
    }

    #[test]
    fn spmv_composes_with_dense_ops_in_one_window() {
        // SpMV followed by dense AXPY-style ops: the cross-library stream the
        // paper targets. Check correctness of the composition.
        let (np, sp) = setup(2);
        let a = CsrMatrix::poisson_2d(&sp, 4);
        let x = np.ones(&[16]);
        let y = a.spmv(&x);
        let r = x.sub(&y);
        let rnorm = r.dot(&r);
        np.flush();
        assert!(rnorm.scalar_value().unwrap() > 0.0);
    }

    #[test]
    #[should_panic]
    fn spmv_dimension_mismatch_panics() {
        let (np, sp) = setup(2);
        let a = CsrMatrix::poisson_2d(&sp, 2);
        let x = np.ones(&[3]);
        let _ = a.spmv(&x);
    }
}
