//! A Legate-Sparse-equivalent distributed CSR library targeting Diffuse.
//!
//! Legate Sparse provides SciPy-sparse-style distributed sparse matrices on
//! top of the same runtime stack as cuPyNumeric; the paper's Krylov solvers
//! (CG, BiCGSTAB) and multigrid solver compose it with cuPyNumeric. This
//! crate provides the CSR matrix type and SpMV kernel the reproduction needs,
//! written as a **peer library** against the Diffuse core alone: it registers
//! the `sparse` library namespace on a [`Context`], submits through the typed
//! launch builder, and shares data with other libraries (such as the `dense`
//! crate) purely through [`StoreHandle`]s — the cross-library composition the
//! paper emphasizes. Sparse and dense tasks submitted to one context flow
//! through one fusion window.
//!
//! The CSR coordinate width is configurable ([`IndexWidth`]); the evaluation's
//! controlled comparison against PETSc stores coordinates as 32-bit integers,
//! which is the default here as well.
//!
//! # Example
//!
//! ```
//! use diffuse::{Context, DiffuseConfig};
//! use machine::MachineConfig;
//! use sparse::{CsrMatrix, SparseContext};
//!
//! let ctx = Context::new(DiffuseConfig::fused(MachineConfig::single_node(2)));
//! let sp = SparseContext::new(&ctx);
//! // The 2-point Laplacian of a 4-cell 1-D grid.
//! let a = CsrMatrix::from_dense(&sp, 4, 4, &|r, c| {
//!     if r == c { 2.0 } else if r.abs_diff(c) == 1 { -1.0 } else { 0.0 }
//! });
//! // Cross-library sharing happens through store handles: any store of the
//! // right length works as the input vector.
//! let x = ctx.create_store(vec![4], "x");
//! ctx.fill(&x, 1.0);
//! let y = a.spmv(&x);
//! assert_eq!(ctx.read_store(&y).unwrap(), vec![1.0, 0.0, 0.0, 1.0]);
//! ```

use diffuse::{Context, Library, StoreHandle, TaskSignature};
use ir::Partition;
use kernel::{BufferId, BufferRole, IndexWidth, KernelModule, OpaqueOp, TaskKind};

/// The sparse library: registers the `sparse` namespace with its SpMV
/// generators and builds CSR matrices.
#[derive(Clone, Debug)]
pub struct SparseContext {
    ctx: Context,
    lib: Library,
    spmv32: TaskKind,
    spmv64: TaskKind,
}

fn spmv_generator(width: IndexWidth) -> impl Fn(&kernel::GenArgs<'_>) -> KernelModule {
    move |_args| {
        let mut m = KernelModule::new(5);
        m.set_role(BufferId(4), BufferRole::Output);
        m.push_opaque(OpaqueOp::SpMvCsr {
            pos: BufferId(0),
            crd: BufferId(1),
            vals: BufferId(2),
            x: BufferId(3),
            y: BufferId(4),
            index_width: width,
        });
        m
    }
}

impl SparseContext {
    /// Creates the sparse library over a Diffuse context. Any other library
    /// registered on the same context shares its task window, so sparse and
    /// dense tasks fuse across the library boundary.
    pub fn new(ctx: &Context) -> Self {
        let spmv_sig = || TaskSignature::new().read().read().read().read().write();
        let lib = ctx.register_library("sparse");
        let spmv32 = lib.register("spmv_csr_u32", spmv_sig(), spmv_generator(IndexWidth::U32));
        let spmv64 = lib.register("spmv_csr_u64", spmv_sig(), spmv_generator(IndexWidth::U64));
        SparseContext {
            ctx: ctx.clone(),
            lib,
            spmv32,
            spmv64,
        }
    }

    /// The Diffuse context the library is registered on.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The library namespace this context registered.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Creates a store initialized with host data (no simulated cost).
    fn store_from_vec(&self, name: &str, data: Vec<f64>) -> StoreHandle {
        let handle = self.ctx.create_store(vec![data.len() as u64], name);
        self.ctx.write_store(&handle, data);
        handle
    }
}

/// A distributed CSR sparse matrix.
///
/// Row offsets, column indices and values are ordinary Diffuse stores (held
/// as dense arrays of `f64`, with indices stored as exact integers in the f64
/// mantissa), partitioned by row blocks / nonzero blocks across the machine.
/// The stores are plain [`StoreHandle`]s: other libraries can read or extend
/// them without the sparse library's involvement.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    ctx: SparseContext,
    /// Row offsets, length `rows + 1`.
    pub pos: StoreHandle,
    /// Column indices, length `nnz`.
    pub crd: StoreHandle,
    /// Nonzero values, length `nnz`.
    pub vals: StoreHandle,
    rows: u64,
    cols: u64,
    nnz: u64,
    index_width: IndexWidth,
}

impl CsrMatrix {
    /// Builds a CSR matrix from an element function over a dense index space.
    /// Only nonzero entries are stored.
    pub fn from_dense(
        ctx: &SparseContext,
        rows: u64,
        cols: u64,
        f: &dyn Fn(u64, u64) -> f64,
    ) -> CsrMatrix {
        let mut pos = Vec::with_capacity(rows as usize + 1);
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        pos.push(0.0);
        for r in 0..rows {
            for c in 0..cols {
                let v = f(r, c);
                if v != 0.0 {
                    crd.push(c as f64);
                    vals.push(v);
                }
            }
            pos.push(crd.len() as f64);
        }
        Self::from_csr_parts(ctx, rows, cols, pos, crd, vals)
    }

    /// Builds a CSR matrix from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent.
    pub fn from_csr_parts(
        ctx: &SparseContext,
        rows: u64,
        cols: u64,
        pos: Vec<f64>,
        crd: Vec<f64>,
        vals: Vec<f64>,
    ) -> CsrMatrix {
        assert_eq!(pos.len() as u64, rows + 1, "pos must have rows + 1 entries");
        assert_eq!(crd.len(), vals.len(), "crd and vals must have equal length");
        let nnz = crd.len() as u64;
        CsrMatrix {
            pos: ctx.store_from_vec("pos", pos),
            crd: ctx.store_from_vec("crd", if crd.is_empty() { vec![0.0] } else { crd }),
            vals: ctx.store_from_vec("vals", if vals.is_empty() { vec![0.0] } else { vals }),
            ctx: ctx.clone(),
            rows,
            cols,
            nnz,
            index_width: IndexWidth::U32,
        }
    }

    /// The standard 5-point Laplacian of an `n x n` grid (the matrix used by
    /// the paper's CG/BiCGSTAB/GMG weak-scaling studies).
    pub fn poisson_2d(ctx: &SparseContext, n: u64) -> CsrMatrix {
        let size = n * n;
        let mut pos = Vec::with_capacity(size as usize + 1);
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        pos.push(0.0);
        for i in 0..n {
            for j in 0..n {
                let row = i * n + j;
                let _ = row;
                let mut push = |r: i64, c: i64, v: f64| {
                    if r >= 0 && c >= 0 && (r as u64) < n && (c as u64) < n {
                        crd.push((r as u64 * n + c as u64) as f64);
                        vals.push(v);
                    }
                };
                push(i as i64 - 1, j as i64, -1.0);
                push(i as i64, j as i64 - 1, -1.0);
                push(i as i64, j as i64, 4.0);
                push(i as i64, j as i64 + 1, -1.0);
                push(i as i64 + 1, j as i64, -1.0);
                pos.push(crd.len() as f64);
            }
        }
        Self::from_csr_parts(ctx, size, size, pos, crd, vals)
    }

    /// Builds a CSR matrix *symbolically*: the stores have the right shapes
    /// (so the cost model sees the right data volumes) but no host data is
    /// generated. Used by the benchmark harness for machine-scale problem
    /// sizes in simulation-only mode; must not be used functionally.
    pub fn symbolic(ctx: &SparseContext, rows: u64, cols: u64, nnz: u64) -> CsrMatrix {
        CsrMatrix {
            pos: ctx.ctx.create_store(vec![rows + 1], "pos"),
            crd: ctx.ctx.create_store(vec![nnz.max(1)], "crd"),
            vals: ctx.ctx.create_store(vec![nnz.max(1)], "vals"),
            ctx: ctx.clone(),
            rows,
            cols,
            nnz,
            index_width: IndexWidth::U32,
        }
    }

    /// Symbolic variant of [`CsrMatrix::poisson_2d`]: the 5-point stencil has
    /// `5 n^2 - 4 n` stored nonzeros.
    pub fn poisson_2d_symbolic(ctx: &SparseContext, n: u64) -> CsrMatrix {
        Self::symbolic(ctx, n * n, n * n, 5 * n * n - 4 * n)
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Sets the coordinate width used by the cost model (the paper's PETSc
    /// comparison stores coordinates as 32-bit integers).
    pub fn with_index_width(mut self, width: IndexWidth) -> Self {
        self.index_width = width;
        self
    }

    /// Sparse matrix-vector product `self @ x`, returning the handle of a
    /// fresh result store of length [`CsrMatrix::rows`].
    ///
    /// `x` may be any store of length [`CsrMatrix::cols`] — typically one
    /// produced by another library (a dense array's handle, a stencil grid):
    /// cross-library data sharing is by store handle, and the submitted task
    /// joins the shared window where it can fuse with the surrounding dense
    /// or stencil tasks.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    pub fn spmv(&self, x: &StoreHandle) -> StoreHandle {
        assert_eq!(x.volume(), self.cols, "dimension mismatch in spmv");
        let np = &self.ctx.ctx;
        let gpus = np.gpus() as u64;
        let y = np.create_store(vec![self.rows], "spmv_y");
        let kind = match self.index_width {
            IndexWidth::U32 => self.ctx.spmv32,
            IndexWidth::U64 => self.ctx.spmv64,
        };
        let block = |len: u64| Partition::block(vec![len.div_ceil(gpus).max(1)]);
        np.task(kind)
            .name("spmv")
            .read(&self.pos, block(self.rows + 1))
            .read(&self.crd, block(self.nnz.max(1)))
            .read(&self.vals, block(self.nnz.max(1)))
            .read(x, Partition::Replicate)
            .write(&y, block(self.rows))
            .launch();
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffuse::DiffuseConfig;
    use machine::MachineConfig;

    fn setup(gpus: usize) -> (Context, SparseContext) {
        let ctx = Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(gpus)));
        let sp = SparseContext::new(&ctx);
        (ctx, sp)
    }

    fn vector(ctx: &Context, data: Vec<f64>) -> StoreHandle {
        let h = ctx.create_store(vec![data.len() as u64], "v");
        ctx.write_store(&h, data);
        h
    }

    #[test]
    fn spmv_matches_host_matvec() {
        let (ctx, sp) = setup(2);
        let dense_fn = |r: u64, c: u64| ((r * 3 + c) % 5) as f64 - 1.0;
        let a = CsrMatrix::from_dense(&sp, 6, 6, &dense_fn);
        let xv: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let x = vector(&ctx, xv.clone());
        let ys = ctx.read_store(&a.spmv(&x)).unwrap();
        // Host reference matvec.
        for r in 0..6u64 {
            let expected: f64 = (0..6u64).map(|c| dense_fn(r, c) * xv[c as usize]).sum();
            assert!((ys[r as usize] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_matrix_properties() {
        let (ctx, sp) = setup(2);
        let n = 4u64;
        let a = CsrMatrix::poisson_2d(&sp, n);
        assert_eq!(a.rows(), 16);
        assert_eq!(a.cols(), 16);
        // 5-point stencil: 5 per interior row minus boundary truncations.
        assert!(a.nnz() > 3 * 16 && a.nnz() < 5 * 16);
        // The Laplacian of a constant vector is zero in the interior.
        let x = vector(&ctx, vec![1.0; 16]);
        let y = ctx.read_store(&a.spmv(&x)).unwrap();
        // Interior point (1,1) -> row 5 has all 5 neighbours: 4 - 4 = 0.
        assert_eq!(y[5], 0.0);
        // Corner point (0,0) -> row 0: 4 - 2 = 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn index_width_is_configurable() {
        let (_ctx, sp) = setup(2);
        let a = CsrMatrix::poisson_2d(&sp, 2).with_index_width(IndexWidth::U64);
        assert_eq!(a.index_width, IndexWidth::U64);
    }

    #[test]
    fn sparse_registers_its_own_namespace() {
        let (ctx, sp) = setup(2);
        assert_eq!(sp.library().name(), "sparse");
        assert!(sp.library().kind("spmv_csr_u32").is_some());
        assert!(sp.library().kind("spmv_csr_u64").is_some());
        // A second instance gets a fresh namespace: no clobbering.
        let sp2 = SparseContext::new(&ctx);
        assert_ne!(sp.library().id(), sp2.library().id());
        assert_ne!(sp.spmv32, sp2.spmv32);
    }

    #[test]
    fn spmv_tasks_are_attributed_to_the_sparse_library() {
        let (ctx, sp) = setup(2);
        let a = CsrMatrix::poisson_2d(&sp, 2);
        let x = vector(&ctx, vec![1.0; 4]);
        let _ = ctx.read_store(&a.spmv(&x)).unwrap();
        let stats = ctx.stats();
        assert_eq!(stats.library("sparse").unwrap().tasks_submitted, 1);
    }

    #[test]
    #[should_panic]
    fn spmv_dimension_mismatch_panics() {
        let (ctx, sp) = setup(2);
        let a = CsrMatrix::poisson_2d(&sp, 2);
        let x = vector(&ctx, vec![1.0; 3]);
        let _ = a.spmv(&x);
    }
}
