//! Executor and backend equivalence: every (executor, kernel backend)
//! combination must produce exactly the region contents the serial
//! interpreter baseline produces, for any program.
//!
//! The property test drives all four combinations (serial/parallel ×
//! interp/closure) with the same randomly generated launch DAG — launches
//! pick random source/destination regions, so the generated programs contain
//! every hazard class (RAW chains, WAR, WAW, concurrent readers, aliasing
//! read+write of one region) at random widths. Determinism holds because
//! conflicting launches retain program order and each launch's arithmetic is
//! itself deterministic (backends evaluate ops through the same resolved
//! functions), so the comparison is exact (`==` on `f64` buffers, no
//! tolerance). Simulated time must also be invariant across the whole
//! matrix — accounting is eager and priced from the module, never from the
//! backend artifact.

use ir::{Domain, Partition, Privilege};
use kernel::{BackendKind, BufferId, BufferRole, KernelModule, LoopBuilder};
use machine::MachineConfig;
use proptest::prelude::*;
use runtime::{
    ExecutorKind, OverheadClass, RegionRequirement, Runtime, RuntimeConfig, TaskLaunch,
};

const REGIONS: u64 = 6;

/// One randomly generated operation: `dst = src_a <op> src_b` elementwise,
/// or an in-place accumulation `dst += src_a` when `accumulate` is set.
#[derive(Debug, Clone)]
struct Op {
    src_a: u64,
    src_b: u64,
    dst: u64,
    accumulate: bool,
}

/// dst[i] = a[i] * 0.5 + b[i]
fn combine_module() -> KernelModule {
    let mut m = KernelModule::new(3);
    m.set_role(BufferId(2), BufferRole::Output);
    let mut lb = LoopBuilder::new("combine", BufferId(0));
    let a = lb.load(BufferId(0));
    let b = lb.load(BufferId(1));
    let half = lb.constant(0.5);
    let scaled = lb.mul(a, half);
    let sum = lb.add(scaled, b);
    lb.store(BufferId(2), sum);
    m.push_loop(lb.finish());
    m
}

/// dst[i] = dst[i] + a[i]
fn accumulate_module() -> KernelModule {
    let mut m = KernelModule::new(2);
    m.set_role(BufferId(1), BufferRole::InOut);
    let mut lb = LoopBuilder::new("accumulate", BufferId(0));
    let a = lb.load(BufferId(0));
    let d = lb.load(BufferId(1));
    let sum = lb.add(a, d);
    lb.store(BufferId(1), sum);
    m.push_loop(lb.finish());
    m
}

fn launch_for(op: &Op, regions: &[runtime::RegionId], gpus: u64, n: u64, rt: &Runtime) -> TaskLaunch {
    let block = Partition::block(vec![n.div_ceil(gpus)]);
    if op.accumulate {
        TaskLaunch {
            name: "accumulate".into(),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(regions[op.src_a as usize], block.clone(), Privilege::Read),
                RegionRequirement::new(regions[op.dst as usize], block, Privilege::ReadWrite),
            ],
            kernel: rt.compile(&accumulate_module()).unwrap(),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        }
    } else {
        TaskLaunch {
            name: "combine".into(),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(regions[op.src_a as usize], block.clone(), Privilege::Read),
                RegionRequirement::new(regions[op.src_b as usize], block.clone(), Privilege::Read),
                RegionRequirement::new(regions[op.dst as usize], block, Privilege::Write),
            ],
            kernel: rt.compile(&combine_module()).unwrap(),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        }
    }
}

/// Runs the op sequence on a fresh runtime and returns every region's final
/// contents plus the simulated time.
fn run_program(
    ops: &[Op],
    gpus: u64,
    n: u64,
    executor: ExecutorKind,
    backend: BackendKind,
) -> (Vec<Vec<f64>>, f64) {
    let config = RuntimeConfig::functional(MachineConfig::with_gpus(gpus as usize))
        .with_executor(executor)
        .with_backend(backend);
    let mut rt = Runtime::new(config);
    let regions: Vec<runtime::RegionId> = (0..REGIONS)
        .map(|i| rt.allocate_region(vec![n], format!("r{i}")))
        .collect();
    for (i, &r) in regions.iter().enumerate() {
        // Distinct, position-dependent initial contents.
        rt.write_region_data(r, (0..n).map(|j| (i as f64) + (j as f64) * 0.01).collect())
            .unwrap();
    }
    let launches: Vec<TaskLaunch> = ops
        .iter()
        .map(|op| launch_for(op, &regions, gpus, n, &rt))
        .collect();
    rt.execute_batch(&launches).unwrap();
    let data = regions
        .iter()
        .map(|&r| rt.region_data(r).unwrap())
        .collect();
    (data, rt.elapsed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random launch DAGs produce identical region contents (and identical
    /// simulated time) under every executor × backend combination.
    #[test]
    fn random_dags_are_executor_and_backend_invariant(
        raw_ops in prop::collection::vec(
            (0u64..REGIONS, 0u64..REGIONS, 0u64..REGIONS, 0u64..4),
            2..16,
        ),
        gpus in 1u64..5,
    ) {
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&(src_a, src_b, dst, kind)| Op {
                src_a,
                src_b,
                dst,
                accumulate: kind == 0,
            })
            .collect();
        let n = 16 * gpus;
        let (baseline, baseline_time) =
            run_program(&ops, gpus, n, ExecutorKind::Serial, BackendKind::Interp);
        for backend in [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd] {
            for executor in [
                ExecutorKind::Serial,
                ExecutorKind::WorkStealing { workers: Some(4) },
            ] {
                let (data, time) = run_program(&ops, gpus, n, executor, backend);
                prop_assert_eq!(
                    &baseline, &data,
                    "{:?}/{:?} diverged; ops: {:?}", executor, backend, ops
                );
                prop_assert_eq!(baseline_time, time);
            }
        }
    }
}

/// Write-after-read ordering on a shared region: a slow reader of `shared`
/// must finish before a later launch overwrites `shared`, even though the
/// overwriting launch is much cheaper and would finish first if the executor
/// ignored the WAR hazard.
#[test]
fn write_after_read_on_a_shared_region_retains_program_order() {
    let gpus = 2u64;
    let n = 1u64 << 15;
    for trial in 0..5 {
        let config = RuntimeConfig::functional(MachineConfig::with_gpus(gpus as usize))
            .with_executor(ExecutorKind::WorkStealing { workers: Some(4) });
        let mut rt = Runtime::new(config);
        let shared = rt.allocate_region(vec![n], "shared");
        let copy = rt.allocate_region(vec![n], "copy");
        let two = rt.allocate_region(vec![n], "two");
        rt.fill(shared, 1.0).unwrap();
        rt.fill(two, 2.0).unwrap();
        let block = Partition::block(vec![n / gpus]);

        // Launch 1 (slow): copy[i] = shared[i] * 0.5 + shared[i] over a large n.
        let reader = TaskLaunch {
            name: "slow_reader".into(),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(shared, block.clone(), Privilege::Read),
                RegionRequirement::new(shared, block.clone(), Privilege::Read),
                RegionRequirement::new(copy, block.clone(), Privilege::Write),
            ],
            kernel: rt.compile(&combine_module()).unwrap(),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        };
        // Launch 2 (fast): shared[i] = two[i] * 0.5 + two[i]  (= 3.0).
        let writer = TaskLaunch {
            name: "fast_writer".into(),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(two, block.clone(), Privilege::Read),
                RegionRequirement::new(two, block.clone(), Privilege::Read),
                RegionRequirement::new(shared, block, Privilege::Write),
            ],
            kernel: rt.compile(&combine_module()).unwrap(),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        };
        rt.execute_batch(&[reader, writer]).unwrap();
        // The reader saw shared == 1.0 everywhere: copy = 1*0.5 + 1 = 1.5.
        assert_eq!(
            rt.region_data(copy).unwrap(),
            vec![1.5; n as usize],
            "trial {trial}: WAR hazard reordered"
        );
        // The writer then replaced shared with 3.0.
        assert_eq!(rt.region_data(shared).unwrap(), vec![3.0; n as usize]);
    }
}

/// Read-after-write chains stay ordered through several hops, under every
/// backend.
#[test]
fn raw_chain_retains_program_order() {
    let gpus = 4u64;
    let n = 64u64;
    let ops = vec![
        Op { src_a: 0, src_b: 0, dst: 1, accumulate: false }, // r1 = f(r0)
        Op { src_a: 1, src_b: 1, dst: 2, accumulate: false }, // r2 = f(r1)
        Op { src_a: 2, src_b: 2, dst: 3, accumulate: false }, // r3 = f(r2)
        Op { src_a: 3, src_b: 3, dst: 4, accumulate: true },  // r4 += r3
    ];
    let (serial, _) = run_program(&ops, gpus, n, ExecutorKind::Serial, BackendKind::Interp);
    for backend in [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd] {
        let (parallel, _) = run_program(
            &ops,
            gpus,
            n,
            ExecutorKind::WorkStealing { workers: Some(4) },
            backend,
        );
        assert_eq!(serial, parallel, "{backend:?}");
    }
}
