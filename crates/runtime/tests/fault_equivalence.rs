//! Fault-injection equivalence: the headline invariant of the resilience
//! layer (`docs/RESILIENCE.md`).
//!
//! With recovery **on**, any seeded fault schedule must leave every region
//! bitwise identical to the fault-free run, under every executor × backend
//! combination — recovery retries, replays, migrations and the serial
//! fallback repair faults without ever changing results, and the whole fault
//! schedule is deterministic because decisions key on launch fingerprints,
//! not on executor timing.
//!
//! With recovery **off**, exactly the injected launches and their dependence
//! cones fail — nothing more. The expected failure set is replayed
//! independently here from the plan's pure decision function plus the same
//! `DepTracker` hazard semantics the executors use, and the surviving
//! regions must equal a fault-free run of the surviving subsequence (failed
//! launches commit nothing — no torn writes).

use std::collections::{HashMap, HashSet};

use ir::{Domain, Partition, Privilege};
use kernel::{BackendKind, BufferId, BufferRole, KernelModule, LoopBuilder};
use machine::MachineConfig;
use proptest::prelude::*;
use runtime::faults::mix;
use runtime::{
    AccessSummary, DepTracker, ExecutorKind, FaultPlan, FaultSite, FaultStats, LaunchFailure,
    OverheadClass, RecoveryPolicy, RegionRequirement, Runtime, RuntimeConfig, RuntimeError,
    TaskLaunch,
};

const REGIONS: u64 = 6;

/// One randomly generated operation: `dst = src_a * 0.5 + src_b` elementwise,
/// or an in-place accumulation `dst += src_a` when `accumulate` is set.
#[derive(Debug, Clone)]
struct Op {
    src_a: u64,
    src_b: u64,
    dst: u64,
    accumulate: bool,
}

/// dst[i] = a[i] * 0.5 + b[i]
fn combine_module() -> KernelModule {
    let mut m = KernelModule::new(3);
    m.set_role(BufferId(2), BufferRole::Output);
    let mut lb = LoopBuilder::new("combine", BufferId(0));
    let a = lb.load(BufferId(0));
    let b = lb.load(BufferId(1));
    let half = lb.constant(0.5);
    let scaled = lb.mul(a, half);
    let sum = lb.add(scaled, b);
    lb.store(BufferId(2), sum);
    m.push_loop(lb.finish());
    m
}

/// dst[i] = dst[i] + a[i] — deliberately non-idempotent, so a replayed or
/// partially committed attempt would be visible in the comparison.
fn accumulate_module() -> KernelModule {
    let mut m = KernelModule::new(2);
    m.set_role(BufferId(1), BufferRole::InOut);
    let mut lb = LoopBuilder::new("accumulate", BufferId(0));
    let a = lb.load(BufferId(0));
    let d = lb.load(BufferId(1));
    let sum = lb.add(a, d);
    lb.store(BufferId(1), sum);
    m.push_loop(lb.finish());
    m
}

/// Builds the launch for op `i`. Names are unique (`op{i}`) so failure
/// records map back to program positions.
fn launch_for(
    i: usize,
    op: &Op,
    regions: &[runtime::RegionId],
    gpus: u64,
    n: u64,
    rt: &Runtime,
) -> TaskLaunch {
    let block = Partition::block(vec![n.div_ceil(gpus)]);
    if op.accumulate {
        TaskLaunch {
            name: format!("op{i}"),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(regions[op.src_a as usize], block.clone(), Privilege::Read),
                RegionRequirement::new(regions[op.dst as usize], block, Privilege::ReadWrite),
            ],
            kernel: rt.compile(&accumulate_module()).unwrap(),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        }
    } else {
        TaskLaunch {
            name: format!("op{i}"),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(regions[op.src_a as usize], block.clone(), Privilege::Read),
                RegionRequirement::new(regions[op.src_b as usize], block.clone(), Privilege::Read),
                RegionRequirement::new(regions[op.dst as usize], block, Privilege::Write),
            ],
            kernel: rt.compile(&combine_module()).unwrap(),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        }
    }
}

struct RunOutcome {
    data: Vec<Vec<f64>>,
    elapsed: f64,
    stats: FaultStats,
    failures: Vec<LaunchFailure>,
}

/// Runs the op sequence on a fresh runtime under the given fault plan (or
/// none — the plan is always set explicitly so `DIFFUSE_FAULTS` in the
/// environment cannot leak into a baseline run).
fn run_program(
    ops: &[Op],
    gpus: u64,
    n: u64,
    executor: ExecutorKind,
    backend: BackendKind,
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> RunOutcome {
    let mut config = RuntimeConfig::functional(MachineConfig::with_gpus(gpus as usize))
        .with_executor(executor)
        .with_backend(backend)
        .with_recovery(recovery);
    config.fault_plan = plan;
    let mut rt = Runtime::new(config);
    let regions: Vec<runtime::RegionId> = (0..REGIONS)
        .map(|i| rt.allocate_region(vec![n], format!("r{i}")))
        .collect();
    for (i, &r) in regions.iter().enumerate() {
        rt.write_region_data(r, (0..n).map(|j| (i as f64) + (j as f64) * 0.01).collect())
            .unwrap();
    }
    let launches: Vec<TaskLaunch> = ops
        .iter()
        .enumerate()
        .map(|(i, op)| launch_for(i, op, &regions, gpus, n, &rt))
        .collect();
    for launch in &launches {
        rt.execute(launch).unwrap();
    }
    // With recovery off the flush reports the first cone's root; the
    // per-launch records below carry the full picture.
    let _ = rt.flush_launches();
    let failures = rt.take_failures();
    let data = regions
        .iter()
        .map(|&r| rt.region_data(r).unwrap())
        .collect();
    RunOutcome {
        data,
        elapsed: rt.elapsed(),
        stats: rt.fault_stats(),
        failures,
    }
}

fn decode_ops(raw: &[(u64, u64, u64, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(src_a, src_b, dst, kind)| Op {
            src_a,
            src_b,
            dst,
            accumulate: kind == 0,
        })
        .collect()
}

const MATRIX: [(ExecutorKind, BackendKind); 6] = [
    (ExecutorKind::Serial, BackendKind::Interp),
    (ExecutorKind::Serial, BackendKind::Closure),
    (ExecutorKind::Serial, BackendKind::Simd),
    (ExecutorKind::WorkStealing { workers: Some(4) }, BackendKind::Interp),
    (ExecutorKind::WorkStealing { workers: Some(4) }, BackendKind::Closure),
    (ExecutorKind::WorkStealing { workers: Some(4) }, BackendKind::Simd),
];

/// Independent replay of the recovery-off outcome: walk the program in
/// order, key each launch exactly as the runtime does (fingerprint ×
/// per-fingerprint occurrence), abandon on the first fault of either runtime
/// site at attempt 0, and propagate poison along the same `DepTracker`
/// hazard edges the executors use. Returns `(name, kind)` pairs in program
/// order, kind ∈ {"faulted", "poisoned"}, plus the failed indices.
fn expected_failures(
    launches: &[TaskLaunch],
    plan: FaultPlan,
) -> (Vec<(String, &'static str)>, HashSet<usize>) {
    let mut tracker = DepTracker::new();
    let mut occurrence: HashMap<u64, u64> = HashMap::new();
    let mut failed_ids: HashSet<u64> = HashSet::new();
    let mut failed_idx: HashSet<usize> = HashSet::new();
    let mut out = Vec::new();
    for (i, launch) in launches.iter().enumerate() {
        let id = i as u64;
        let fp = launch.fingerprint();
        let occ = occurrence.entry(fp).or_insert(0);
        let key = mix(fp, *occ);
        *occ += 1;
        let accesses: Vec<AccessSummary> = launch
            .requirements
            .iter()
            .map(AccessSummary::from_requirement)
            .collect();
        let deps = tracker.record(id, &accesses);
        let faulted = plan.should_fault(FaultSite::RegionRead, key, 0)
            || plan.should_fault(FaultSite::Device, key, 0);
        if faulted {
            failed_ids.insert(id);
            failed_idx.insert(i);
            out.push((launch.name.clone(), "faulted"));
        } else if deps.iter().any(|d| failed_ids.contains(d)) {
            failed_ids.insert(id);
            failed_idx.insert(i);
            out.push((launch.name.clone(), "poisoned"));
        }
    }
    (out, failed_idx)
}

fn classify(failures: &[LaunchFailure]) -> Vec<(String, &'static str)> {
    failures
        .iter()
        .map(|f| {
            let kind = match &f.error {
                RuntimeError::Faulted(_) => "faulted",
                RuntimeError::Poisoned { .. } => "poisoned",
                other => panic!("unexpected failure class: {other}"),
            };
            (f.launch.clone(), kind)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Recovery on: every surviving output store is bitwise identical to the
    /// fault-free run, for any seeded fault schedule, under all executor ×
    /// backend combinations — and nothing is ever abandoned.
    #[test]
    fn recovery_restores_bitwise_fault_free_results(
        raw_ops in prop::collection::vec(
            (0u64..REGIONS, 0u64..REGIONS, 0u64..REGIONS, 0u64..4),
            2..10,
        ),
        gpus in 1u64..4,
        seed in 0u64..1000,
        rate_idx in 0usize..3,
    ) {
        let rate = [0.25, 0.6, 1.0][rate_idx];
        let ops = decode_ops(&raw_ops);
        let n = 8 * gpus;
        let recovery = RecoveryPolicy::default();
        let baseline = run_program(
            &ops, gpus, n, ExecutorKind::Serial, BackendKind::Interp, None, recovery,
        );
        prop_assert!(baseline.failures.is_empty());
        prop_assert_eq!(baseline.stats.faults_injected, 0);
        let plan = FaultPlan::new(seed, rate);
        let mut faulty_elapsed: Option<f64> = None;
        for (executor, backend) in MATRIX {
            let out = run_program(&ops, gpus, n, executor, backend, Some(plan), recovery);
            prop_assert_eq!(
                &baseline.data, &out.data,
                "{:?}/{:?} diverged under seed {} rate {}; ops: {:?}",
                executor, backend, seed, rate, ops
            );
            prop_assert!(out.failures.is_empty(), "recovery never loses a launch");
            prop_assert_eq!(out.stats.abandoned_launches, 0);
            if rate == 1.0 {
                prop_assert!(out.stats.faults_injected > 0, "rate 1.0 must inject");
            }
            // The schedule (and its recovery pricing) is executor- and
            // backend-invariant: simulated time agrees bit-for-bit.
            match faulty_elapsed {
                None => faulty_elapsed = Some(out.elapsed),
                Some(e) => prop_assert_eq!(e.to_bits(), out.elapsed.to_bits()),
            }
        }
    }

    /// Recovery off: exactly the injected launches and their dependence
    /// cones fail, and the surviving regions equal a fault-free run of the
    /// surviving subsequence (failed launches commit nothing).
    #[test]
    fn disabled_recovery_fails_exactly_the_injected_cone(
        raw_ops in prop::collection::vec(
            (0u64..REGIONS, 0u64..REGIONS, 0u64..REGIONS, 0u64..4),
            2..10,
        ),
        gpus in 1u64..4,
        seed in 0u64..1000,
    ) {
        let ops = decode_ops(&raw_ops);
        let n = 8 * gpus;
        let plan = FaultPlan::new(seed, 0.4);
        let recovery = RecoveryPolicy::disabled();

        // Replay the expected decision sequence once, from a reference
        // runtime's launches (fingerprints depend only on launch content).
        let ref_launches: Vec<TaskLaunch> = {
            let mut rt = Runtime::new(
                RuntimeConfig::functional(MachineConfig::with_gpus(gpus as usize)),
            );
            let regions: Vec<runtime::RegionId> = (0..REGIONS)
                .map(|i| rt.allocate_region(vec![n], format!("r{i}")))
                .collect();
            ops.iter()
                .enumerate()
                .map(|(i, op)| launch_for(i, op, &regions, gpus, n, &rt))
                .collect()
        };
        let (mut expected, failed_idx) = expected_failures(&ref_launches, plan);
        expected.sort();

        // The surviving subsequence, run fault-free, is the expected data.
        let surviving: Vec<Op> = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| !failed_idx.contains(i))
            .map(|(_, op)| op.clone())
            .collect();
        let survivors = run_program(
            &surviving, gpus, n, ExecutorKind::Serial, BackendKind::Interp,
            None, RecoveryPolicy::default(),
        );

        for (executor, backend) in MATRIX {
            let out = run_program(&ops, gpus, n, executor, backend, Some(plan), recovery);
            let mut actual = classify(&out.failures);
            actual.sort();
            prop_assert_eq!(
                &expected, &actual,
                "{:?}/{:?} failed a different set under seed {}; ops: {:?}",
                executor, backend, seed, ops
            );
            prop_assert_eq!(
                &survivors.data, &out.data,
                "{:?}/{:?}: a failed launch committed data (torn write?)",
                executor, backend
            );
            prop_assert_eq!(out.stats.abandoned_launches, expected
                .iter()
                .filter(|(_, k)| *k == "faulted")
                .count() as u64);
            prop_assert_eq!(out.stats.retries, 0, "disabled recovery never retries");
        }
    }
}

/// Deterministic pin for CI: a fixed chain + independent op at rate 1.0
/// injects on every launch, recovery repairs everything, and the recovery
/// cost is visible on the simulated clock.
#[test]
fn saturated_schedule_recovers_with_measured_cost() {
    let ops = vec![
        Op { src_a: 0, src_b: 0, dst: 1, accumulate: false },
        Op { src_a: 1, src_b: 1, dst: 2, accumulate: false },
        Op { src_a: 2, src_b: 2, dst: 3, accumulate: true },
        Op { src_a: 0, src_b: 4, dst: 5, accumulate: false },
    ];
    let (gpus, n) = (2u64, 32u64);
    let recovery = RecoveryPolicy::default();
    let baseline = run_program(
        &ops, gpus, n, ExecutorKind::Serial, BackendKind::Interp, None, recovery,
    );
    let plan = FaultPlan::new(2024, 1.0);
    for (executor, backend) in MATRIX {
        let out = run_program(&ops, gpus, n, executor, backend, Some(plan), recovery);
        assert_eq!(baseline.data, out.data, "{executor:?}/{backend:?}");
        assert!(out.stats.faults_injected > 0);
        assert!(out.stats.retries > 0);
        assert_eq!(out.stats.abandoned_launches, 0);
        assert!(out.stats.recovery_sim_time > 0.0);
        assert!(
            out.elapsed > baseline.elapsed,
            "recovery is priced on the simulated clock, not free"
        );
    }
}

/// Honors `DIFFUSE_FAULTS` when the harness (CI's `faults` job) sets it:
/// the env-selected schedule must satisfy the same headline invariant.
#[test]
fn env_selected_schedule_matches_fault_free() {
    let Some(plan) = FaultPlan::from_env() else {
        return;
    };
    let ops = vec![
        Op { src_a: 0, src_b: 1, dst: 2, accumulate: false },
        Op { src_a: 2, src_b: 0, dst: 3, accumulate: false },
        Op { src_a: 3, src_b: 3, dst: 4, accumulate: true },
        Op { src_a: 1, src_b: 1, dst: 5, accumulate: false },
    ];
    let (gpus, n) = (3u64, 24u64);
    let recovery = RecoveryPolicy::default();
    let baseline = run_program(
        &ops, gpus, n, ExecutorKind::Serial, BackendKind::Interp, None, recovery,
    );
    for (executor, backend) in MATRIX {
        let out = run_program(&ops, gpus, n, executor, backend, Some(plan), recovery);
        assert_eq!(
            baseline.data, out.data,
            "{executor:?}/{backend:?} diverged under DIFFUSE_FAULTS={}:{}",
            plan.seed(),
            plan.rate()
        );
        assert!(out.failures.is_empty());
    }
}
