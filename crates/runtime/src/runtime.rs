//! The runtime proper: region management, coherence, cost accounting and
//! functional execution.
//!
//! The runtime splits every [`TaskLaunch`] into two halves:
//!
//! 1. **Accounting** — per-task overhead, coherence traffic and kernel cost on
//!    the simulated clock, plus region-validity updates. This half is cheap,
//!    inherently program-ordered, and always runs eagerly on the submitting
//!    thread, so simulated time is identical under every executor.
//! 2. **Functional execution** — interpreting the kernel over real region
//!    data. This half dominates functional-mode wall-clock time and is handed
//!    to the configured [`Executor`], which may overlap independent launches
//!    across worker threads (see `docs/RUNTIME.md`).

use std::collections::HashMap;

use std::sync::Arc;

use ir::{PartitionId, Rect};
use kernel::{cost as kcost, BackendKind, CompiledKernel, ExecError, KernelBackend, KernelModule};
use machine::{CostModel, MachineConfig, MemoryTracker, SimClock};

use crate::deps::AccessSummary;
use crate::executor::{
    BufferAccess, Executor, ExecutorKind, LaunchFailure, SerialExecutor, WorkRequest,
    WorkStealingExecutor,
};
use crate::faults::{mix, FaultEvent, FaultPlan, FaultSite, FaultStats, RecoveryPolicy};
use crate::launch::{OverheadClass, TaskLaunch};
use crate::profile::Profile;
use crate::region::{Region, RegionHandle, RegionId};

/// Configuration of a [`Runtime`].
///
/// # Example
///
/// ```
/// use machine::MachineConfig;
/// use runtime::{ExecutorKind, RuntimeConfig};
///
/// let config = RuntimeConfig::functional(MachineConfig::with_gpus(4))
///     .with_executor(ExecutorKind::WorkStealing { workers: None });
/// assert!(config.materialize_data);
/// assert_ne!(config.executor, ExecutorKind::Serial);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Whether regions hold real data and kernels actually execute. Disable
    /// for machine-scale performance simulations where the data would not fit
    /// in host memory.
    pub materialize_data: bool,
    /// Which executor runs functional kernel work. Ignored (always serial)
    /// when `materialize_data` is false, since there is no functional work to
    /// parallelize.
    pub executor: ExecutorKind,
    /// Which kernel backend [`Runtime::compile`] uses for launches compiled
    /// at the runtime layer (the PETSc baseline, tests, hand-built
    /// workloads). Diffuse-layer launches arrive pre-compiled by the
    /// context's own backend and are unaffected.
    pub backend: BackendKind,
    /// Deterministic fault-injection plan (`None` disables injection — the
    /// default; see `docs/RESILIENCE.md`).
    pub fault_plan: Option<FaultPlan>,
    /// Recovery policy applied when a fault plan is active.
    pub recovery: RecoveryPolicy,
}

impl RuntimeConfig {
    /// A runtime that executes kernels on real data (tests, examples). The
    /// executor defaults to [`ExecutorKind::from_env`], so setting
    /// `DIFFUSE_EXECUTOR=parallel` switches a whole process over.
    pub fn functional(machine: MachineConfig) -> Self {
        RuntimeConfig {
            machine,
            materialize_data: true,
            executor: ExecutorKind::from_env(),
            backend: BackendKind::from_env(),
            fault_plan: FaultPlan::from_env(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// A runtime that only simulates performance (benchmark harness at
    /// machine-scale problem sizes).
    pub fn simulation_only(machine: MachineConfig) -> Self {
        RuntimeConfig {
            machine,
            materialize_data: false,
            executor: ExecutorKind::Serial,
            backend: BackendKind::from_env(),
            fault_plan: FaultPlan::from_env(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Overrides the executor choice.
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Overrides the kernel backend used by [`Runtime::compile`].
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Enables deterministic fault injection under the given plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the recovery policy (only observable while a fault plan is
    /// active).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }
}

/// Errors surfaced by the runtime.
///
/// The enum implements [`std::error::Error`], so callers can propagate it
/// with `?` into a `Box<dyn Error>`:
///
/// ```
/// use machine::MachineConfig;
/// use runtime::{Runtime, RuntimeConfig};
///
/// fn demo() -> Result<(), Box<dyn std::error::Error>> {
///     let mut rt = Runtime::new(RuntimeConfig::functional(MachineConfig::with_gpus(2)));
///     let r = rt.allocate_region(vec![8], "v");
///     rt.fill(r, 1.0)?;
///     rt.free_region(r)?;
///     Ok(())
/// }
/// demo().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A launch referenced a region that does not exist (or was freed).
    /// Raised eagerly at submission time.
    UnknownRegion(RegionId),
    /// The kernel interpreter failed while executing a launch's functional
    /// work. Deferred under *every* executor (the serial one included):
    /// [`Runtime::execute`] returns `Ok` and the error surfaces at the next
    /// flush ([`Runtime::flush_launches`], [`Runtime::execute_batch`] or any
    /// data-touching operation), with the launches downstream of the failed
    /// one skipped ([`RuntimeError::Poisoned`]). The failing launch's name is
    /// in its [`LaunchFailure`] record ([`Runtime::take_failures`]).
    Exec(ExecError),
    /// A launch's functional work panicked on an executor worker (e.g. an
    /// out-of-bounds access the interpreter does not guard). Deferred like
    /// [`RuntimeError::Exec`]; the payload is the panic message.
    Panicked(String),
    /// An injected fault killed the launch and recovery was disabled (or
    /// exhausted). Deferred like [`RuntimeError::Exec`]; the event names the
    /// launch, the fault site and the attempt count.
    Faulted(FaultEvent),
    /// The launch was skipped because `upstream` — a launch in its dependence
    /// cone — failed, so its inputs cannot be trusted. Always accompanies a
    /// root failure in the same batch.
    Poisoned {
        /// The skipped launch.
        launch: String,
        /// The upstream launch whose failure poisoned it.
        upstream: String,
    },
    /// A verifier violation attributed to a launch, routed through the
    /// per-launch failure path instead of panicking (see
    /// `DiffuseConfig::verify_fail_fast` and `docs/RESILIENCE.md`).
    Verify {
        /// The launch (or fused task) whose artifact failed verification.
        launch: String,
        /// The verifier's rendered report.
        detail: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownRegion(r) => write!(f, "launch referenced unknown region {r}"),
            RuntimeError::Exec(e) => write!(f, "kernel execution failed: {e}"),
            RuntimeError::Panicked(msg) => write!(f, "launch panicked on a worker: {msg}"),
            RuntimeError::Faulted(event) => write!(f, "{event}"),
            RuntimeError::Poisoned { launch, upstream } => write!(
                f,
                "launch `{launch}` skipped: upstream launch `{upstream}` failed"
            ),
            RuntimeError::Verify { launch, detail } => {
                write!(f, "verification of launch `{launch}` failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::UnknownRegion(_)
            | RuntimeError::Panicked(_)
            | RuntimeError::Poisoned { .. }
            | RuntimeError::Verify { .. } => None,
            RuntimeError::Exec(e) => Some(e),
            RuntimeError::Faulted(event) => Some(event),
        }
    }
}

impl From<ExecError> for RuntimeError {
    fn from(e: ExecError) -> Self {
        RuntimeError::Exec(e)
    }
}

/// Coherence state of a region: how its current contents are distributed.
#[derive(Debug, Clone, PartialEq)]
enum Validity {
    /// Never written since allocation (zero everywhere, valid everywhere).
    Uninitialized,
    /// Every GPU holds a valid copy of the full region.
    Full,
    /// The region was last written through this partition; each GPU holds the
    /// sub-store that partition assigns to it.
    Partitioned(PartitionId),
    /// The region holds pending reduction contributions that must be combined
    /// before the next read.
    Reduced,
}

/// The Legion-style runtime: owns regions, tracks coherence, charges costs on
/// the simulated clock and (optionally) executes kernels functionally.
///
/// # Example
///
/// ```
/// use machine::MachineConfig;
/// use runtime::{Runtime, RuntimeConfig};
///
/// let mut rt = Runtime::new(RuntimeConfig::functional(MachineConfig::with_gpus(2)));
/// let r = rt.allocate_region(vec![16], "v");
/// rt.fill(r, 3.0).unwrap();
/// assert_eq!(rt.region_data(r).unwrap(), vec![3.0; 16]);
/// assert!(rt.elapsed() > 0.0);
/// ```
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    cost: CostModel,
    clock: SimClock,
    memory: MemoryTracker,
    regions: HashMap<RegionId, RegionHandle>,
    validity: HashMap<RegionId, Validity>,
    profile: Profile,
    next_region: u64,
    executor: Box<dyn Executor>,
    backend: Arc<dyn KernelBackend>,
    /// An error returned by an internal flush (e.g. inside [`Runtime::region_data`])
    /// that could not be surfaced through that call's signature; re-raised by
    /// the next fallible operation.
    deferred_error: Option<RuntimeError>,
    /// The active fault-injection plan, if any.
    fault_plan: Option<FaultPlan>,
    /// Recovery policy applied to injected faults.
    recovery: RecoveryPolicy,
    /// Per-fingerprint occurrence counters: repeated launches of the same
    /// content (CG iterations) get distinct fault keys while remaining
    /// executor- and window-permutation invariant (program order of equal
    /// fingerprints is preserved by every legal reordering).
    fault_occurrence: HashMap<u64, u64>,
    /// Fault/recovery attribution counters.
    fault_stats: FaultStats,
    /// Per-GPU device-fault strikes; a GPU with `recovery.unhealthy_after`
    /// strikes is unhealthy and its share of work migrates to the rest.
    gpu_strikes: Vec<u32>,
    /// Engaged when the last healthy GPU is lost: the batch restarts and all
    /// further functional work runs serially (parallel→serial fallback).
    fallback_serial: Option<SerialExecutor>,
    /// Per-launch failure records drained from the executors, surfaced via
    /// [`Runtime::take_failures`].
    failures: Vec<LaunchFailure>,
    /// First error of the current batch recorded by a mid-batch internal
    /// flush (executor fallback switch); returned by the next
    /// [`Runtime::flush_launches`].
    batch_error: Option<RuntimeError>,
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // A stashed launch error with no fallible call left to re-raise it
        // must not vanish silently (the executors warn about their own).
        if let Some(e) = self.deferred_error.take() {
            eprintln!("warning: discarding deferred launch error at runtime shutdown: {e}");
        }
    }
}

impl Runtime {
    /// Creates a runtime over the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        let gpus = config.machine.total_gpus();
        let cost = CostModel::new(config.machine.clone());
        // Simulation-only runs produce no functional work, so a thread pool
        // would only burn resources: always execute serially there.
        let executor: Box<dyn Executor> = match (config.executor, config.materialize_data) {
            (ExecutorKind::WorkStealing { workers }, true) => Box::new(match workers {
                Some(n) => WorkStealingExecutor::new(n),
                None => WorkStealingExecutor::for_gpus(gpus),
            }),
            _ => Box::new(SerialExecutor::new()),
        };
        let backend = config.backend.backend();
        let fault_plan = config.fault_plan.filter(|p| p.rate() > 0.0);
        let recovery = config.recovery;
        Runtime {
            config,
            cost,
            clock: SimClock::new(gpus),
            memory: MemoryTracker::new(gpus),
            regions: HashMap::new(),
            validity: HashMap::new(),
            profile: Profile::default(),
            next_region: 0,
            executor,
            backend,
            deferred_error: None,
            fault_plan,
            recovery,
            fault_occurrence: HashMap::new(),
            fault_stats: FaultStats::default(),
            gpu_strikes: vec![0; gpus],
            fallback_serial: None,
            failures: Vec::new(),
            batch_error: None,
        }
    }

    /// Number of GPUs in the simulated machine.
    pub fn gpus(&self) -> usize {
        self.cost.config().total_gpus()
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Whether regions hold real data.
    pub fn is_functional(&self) -> bool {
        self.config.materialize_data
    }

    /// The kind of executor running functional work. Note that simulation-only
    /// runtimes always execute serially regardless of the configured kind.
    pub fn executor_kind(&self) -> ExecutorKind {
        self.executor.kind()
    }

    /// The kernel backend [`Runtime::compile`] uses.
    pub fn backend_kind(&self) -> BackendKind {
        self.config.backend
    }

    /// Compiles a kernel module with the runtime's configured backend,
    /// producing the [`CompiledKernel`] payload a [`TaskLaunch`] carries.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Exec`] if the backend rejects the module as
    /// malformed (modules built with [`kernel::LoopBuilder`] always compile).
    ///
    /// # Example
    ///
    /// ```
    /// use machine::MachineConfig;
    /// use runtime::{Runtime, RuntimeConfig};
    /// use kernel::KernelModule;
    ///
    /// let rt = Runtime::new(RuntimeConfig::functional(MachineConfig::with_gpus(2)));
    /// let kernel = rt.compile(&KernelModule::new(1)).unwrap();
    /// assert_eq!(kernel.backend_id(), rt.backend_kind().id());
    /// ```
    pub fn compile(&self, module: &KernelModule) -> Result<Arc<dyn CompiledKernel>, RuntimeError> {
        self.backend.compile(module).map_err(RuntimeError::Exec)
    }

    /// Allocates a distributed region of the given shape.
    pub fn allocate_region(&mut self, shape: Vec<u64>, name: impl Into<String>) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let region = Region::new(id, shape, name, self.config.materialize_data);
        let handle = RegionHandle::new(region);
        let bytes_per_gpu = handle.size_bytes() / self.gpus() as u64;
        self.memory.allocate_distributed(bytes_per_gpu.max(1));
        self.profile.distributed_allocations += 1;
        self.profile.distributed_allocation_bytes += handle.size_bytes();
        self.validity.insert(id, Validity::Uninitialized);
        self.regions.insert(id, handle);
        id
    }

    /// Frees a region.
    ///
    /// This does *not* synchronize with outstanding launches: in-flight work
    /// holds its own [`RegionHandle`]s, which keep the data alive until it
    /// completes, and region ids are never reused — so freeing is safe while
    /// the executor is still draining (and keeps independent launches
    /// overlapping across window boundaries).
    ///
    /// # Errors
    ///
    /// Returns an error if the region does not exist. Deliberately *not* a
    /// re-raise point for deferred launch errors: freeing is cleanup whose
    /// `Result` callers routinely discard, so a stashed error stays pending
    /// for the next [`Runtime::execute`], [`Runtime::fill`],
    /// [`Runtime::write_region_data`] or [`Runtime::flush_launches`] — calls
    /// whose errors are actually handled.
    pub fn free_region(&mut self, id: RegionId) -> Result<(), RuntimeError> {
        let handle = self
            .regions
            .remove(&id)
            .ok_or(RuntimeError::UnknownRegion(id))?;
        let bytes_per_gpu = handle.size_bytes() / self.gpus() as u64;
        self.memory.free_distributed(bytes_per_gpu.max(1));
        self.validity.remove(&id);
        Ok(())
    }

    /// Fills every element of a region with a value, charging one streaming
    /// write pass. Flushes outstanding launches first.
    ///
    /// # Errors
    ///
    /// Returns an error if the region does not exist, or re-raises a deferred
    /// launch error.
    pub fn fill(&mut self, id: RegionId, value: f64) -> Result<(), RuntimeError> {
        // Handle clones are cheap (Arc), and taking one up front keeps the
        // borrow clear of the flush below.
        let handle = self
            .regions
            .get(&id)
            .ok_or(RuntimeError::UnknownRegion(id))?
            .clone();
        self.flush_launches()?;
        let gpus = self.gpus() as u64;
        handle.fill(value);
        let bytes_per_gpu = handle.size_bytes() / gpus;
        let t = self.cost.task_overhead()
            + self.cost.launch_time()
            + self.cost.kernel_time(bytes_per_gpu, 0, 0);
        self.clock.uniform_phase(t);
        self.profile.index_tasks += 1;
        self.profile.kernel_launches += 1;
        self.profile.kernel_time += self.cost.launch_time() + self.cost.kernel_time(bytes_per_gpu, 0, 0);
        self.profile.overhead_time += self.cost.task_overhead();
        self.profile.kernel_bytes += bytes_per_gpu;
        self.validity.insert(id, Validity::Full);
        Ok(())
    }

    /// Overwrites a region's contents with the given row-major data (host
    /// initialization; no simulated cost). Flushes outstanding launches first.
    ///
    /// # Errors
    ///
    /// Returns an error if the region does not exist, or re-raises a deferred
    /// launch error.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the region volume.
    pub fn write_region_data(&mut self, id: RegionId, data: Vec<f64>) -> Result<(), RuntimeError> {
        let handle = self
            .regions
            .get(&id)
            .ok_or(RuntimeError::UnknownRegion(id))?
            .clone();
        self.flush_launches()?;
        handle.write_data(data); // asserts the length matches the volume
        self.validity.insert(id, Validity::Full);
        Ok(())
    }

    /// The contents of a region, if it exists and is materialized. Flushes
    /// outstanding launches first so the data reflects every submitted launch.
    ///
    /// If a deferred launch error is pending, the data cannot be trusted:
    /// this returns `None` and the error is stashed, to be re-raised by the
    /// next fallible operation ([`Runtime::execute`], [`Runtime::fill`],
    /// [`Runtime::flush_launches`], …).
    pub fn region_data(&mut self, id: RegionId) -> Option<Vec<f64>> {
        if let Err(e) = self.flush_launches() {
            self.deferred_error = Some(e);
            return None;
        }
        self.regions.get(&id).and_then(|h| h.data())
    }

    /// The shape of a region, if it exists (metadata only — never blocks on
    /// outstanding launches).
    pub fn region_shape(&self, id: RegionId) -> Option<&[u64]> {
        self.regions.get(&id).map(|h| h.shape())
    }

    /// Current simulated time in seconds. Accounting is eager, so this does
    /// not depend on outstanding functional work.
    pub fn elapsed(&self) -> f64 {
        self.clock.now()
    }

    /// Accumulated execution profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Memory tracker (peak distributed allocations and so on).
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// Resets the simulated clock and the profile (used to exclude warmup
    /// iterations from steady-state measurements, as the paper does).
    pub fn reset_timing(&mut self) {
        self.clock.reset();
        self.profile.reset();
    }

    /// Executes an index-task launch: charges overheads, coherence traffic and
    /// kernel time on the simulated clock eagerly and, in functional mode,
    /// hands the kernel work to the executor. Under a parallel executor the
    /// functional work may still be in flight when this returns; call
    /// [`Runtime::flush_launches`] (or read data, which flushes implicitly)
    /// to synchronize.
    ///
    /// # Errors
    ///
    /// Returns an error if a requirement references an unknown region, or
    /// re-raises a deferred error from an earlier launch. Interpreter errors
    /// of this launch itself surface at the next flush.
    pub fn execute(&mut self, launch: &TaskLaunch) -> Result<(), RuntimeError> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        for req in &launch.requirements {
            if !self.regions.contains_key(&req.region) {
                return Err(RuntimeError::UnknownRegion(req.region));
            }
        }
        // 1. Per-operation overhead.
        let overhead = match launch.overhead {
            OverheadClass::TaskRuntime => self.cost.task_overhead(),
            OverheadClass::Mpi => self.cost.mpi_overhead(),
            OverheadClass::None => 0.0,
        };
        // 2. Coherence: communication required to read data through a
        // partition other than the one it was produced with.
        let comm_time = self.charge_communication(launch);
        // 3. Update validity from this launch's writes and reductions.
        self.update_validity(launch);
        // 4. Kernel cost on the critical-path GPU.
        let kernel_time = self.charge_kernels(launch);
        // 5. Advance the bulk-synchronous clock.
        self.clock.uniform_phase(overhead + comm_time + kernel_time);
        self.profile.index_tasks += 1;
        self.profile.overhead_time += overhead;
        // 6. Fault injection and recovery pricing — eager and program-ordered
        // like the rest of accounting, so fault schedules and recovery cost
        // are identical under every executor and backend.
        let (failed_attempts, abandoned) = self.inject_faults(launch);
        // 7. Functional execution, scheduled by the executor.
        if let Some(event) = abandoned {
            // The accounting above stands (the machine did the work up to the
            // kill); the launch's outputs never commit, and every launch in
            // its dependence cone is skipped as Poisoned.
            let summaries: Vec<AccessSummary> = launch
                .requirements
                .iter()
                .map(AccessSummary::from_requirement)
                .collect();
            self.active_executor()
                .poison(&launch.name, &summaries, RuntimeError::Faulted(event));
        } else if self.config.materialize_data {
            let work = self.work_request(launch, failed_attempts);
            self.active_executor().submit(work);
        }
        Ok(())
    }

    /// Executes a batch of launches and waits for all of them: independent
    /// launches overlap under a parallel executor, conflicting ones retain
    /// program order.
    ///
    /// # Errors
    ///
    /// Returns the first error raised by any launch in the batch (earlier
    /// deferred errors are re-raised first).
    ///
    /// # Example
    ///
    /// ```
    /// use machine::MachineConfig;
    /// use runtime::{Runtime, RuntimeConfig, ExecutorKind, TaskLaunch, RegionRequirement, OverheadClass};
    /// use ir::{Domain, Partition, Privilege};
    /// use kernel::{compile_interp, KernelModule, LoopBuilder, BufferId, BufferRole};
    ///
    /// let config = RuntimeConfig::functional(MachineConfig::with_gpus(2))
    ///     .with_executor(ExecutorKind::WorkStealing { workers: Some(2) });
    /// let mut rt = Runtime::new(config);
    /// let a = rt.allocate_region(vec![8], "a");
    /// let b = rt.allocate_region(vec![8], "b");
    /// let c = rt.allocate_region(vec![8], "c");
    /// rt.fill(a, 2.0).unwrap();
    ///
    /// let scale = |src, dst| {
    ///     let mut module = KernelModule::new(2);
    ///     module.set_role(BufferId(1), BufferRole::Output);
    ///     let mut lb = LoopBuilder::new("scale", BufferId(0));
    ///     let x = lb.load(BufferId(0));
    ///     let k = lb.constant(3.0);
    ///     let v = lb.mul(x, k);
    ///     lb.store(BufferId(1), v);
    ///     module.push_loop(lb.finish());
    ///     TaskLaunch {
    ///         name: "scale".into(),
    ///         launch_domain: Domain::linear(2),
    ///         requirements: vec![
    ///             RegionRequirement::new(src, Partition::block(vec![4]), Privilege::Read),
    ///             RegionRequirement::new(dst, Partition::block(vec![4]), Privilege::Write),
    ///         ],
    ///         kernel: compile_interp(module),
    ///         scalars: vec![],
    ///         local_buffer_lens: vec![],
    ///         overhead: OverheadClass::TaskRuntime,
    ///     }
    /// };
    /// // b and c are independent: the parallel executor overlaps them.
    /// rt.execute_batch(&[scale(a, b), scale(a, c)]).unwrap();
    /// assert_eq!(rt.region_data(b).unwrap(), vec![6.0; 8]);
    /// assert_eq!(rt.region_data(c).unwrap(), vec![6.0; 8]);
    /// ```
    pub fn execute_batch(&mut self, launches: &[TaskLaunch]) -> Result<(), RuntimeError> {
        for launch in launches {
            self.execute(launch)?;
        }
        self.flush_launches()
    }

    /// Waits for every submitted launch's functional work to complete.
    ///
    /// # Errors
    ///
    /// Returns the first failure of the batch (by submission order — the root
    /// of the earliest failed dependence cone), or re-raises a deferred
    /// error. Per-launch records survive until [`Runtime::take_failures`].
    pub fn flush_launches(&mut self) -> Result<(), RuntimeError> {
        if let Some(e) = self.deferred_error.take() {
            // Drain the executors too so the next batch starts clean.
            let result = self.executor.flush();
            let drained = self.executor.drain_failures();
            self.record_failures(result, drained);
            let (fb_result, fb_drained) = match &mut self.fallback_serial {
                Some(s) => (s.flush(), s.drain_failures()),
                None => (Ok(()), Vec::new()),
            };
            self.record_failures(fb_result, fb_drained);
            self.batch_error = None;
            return Err(e);
        }
        let main_result = self.executor.flush();
        let main_drained = self.executor.drain_failures();
        let (fb_result, fb_drained) = match &mut self.fallback_serial {
            Some(s) => (s.flush(), s.drain_failures()),
            None => (Ok(()), Vec::new()),
        };
        self.failures.extend(main_drained);
        self.failures.extend(fb_drained);
        // Earliest failure wins: a mid-batch stash (executor fallback switch)
        // precedes the main executor's batch, which precedes the fallback's.
        let first = self
            .batch_error
            .take()
            .or(main_result.err())
            .or(fb_result.err());
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drains the structured per-launch failure records accumulated since the
    /// last call, in submission order within each batch (a failed cone's root
    /// precedes its poisoned dependents).
    pub fn take_failures(&mut self) -> Vec<LaunchFailure> {
        let mut out = std::mem::take(&mut self.failures);
        out.extend(self.executor.drain_failures());
        if let Some(fb) = &mut self.fallback_serial {
            out.extend(fb.drain_failures());
        }
        out
    }

    /// Fault/recovery attribution counters accumulated so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The active fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Records a launch-attributed failure produced outside the executors
    /// (the Diffuse layer's verifier, with fail-fast off) and poisons its
    /// dependence cone: the accesses join hazard tracking so every downstream
    /// launch is skipped.
    pub fn poison_launch(&mut self, name: &str, accesses: &[AccessSummary], error: RuntimeError) {
        self.active_executor().poison(name, accesses, error);
    }

    /// The executor functional work currently routes to: the serial fallback
    /// once a machine restart engaged it, the configured executor otherwise.
    fn active_executor(&mut self) -> &mut dyn Executor {
        match &mut self.fallback_serial {
            Some(s) => s,
            None => self.executor.as_mut(),
        }
    }

    fn record_failures(&mut self, result: Result<(), RuntimeError>, drained: Vec<LaunchFailure>) {
        if let Err(e) = result {
            self.batch_error.get_or_insert(e);
        }
        self.failures.extend(drained);
    }

    /// Decides this launch's injected faults and prices recovery — on the
    /// submitting thread, before any functional work is scheduled, so the
    /// simulated clock and the stats are executor- and backend-invariant.
    ///
    /// Returns the number of killed device attempts the functional half must
    /// replay (and roll back) and, when the launch could not be recovered
    /// (policy disabled), the fault event that abandons it.
    fn inject_faults(&mut self, launch: &TaskLaunch) -> (u32, Option<FaultEvent>) {
        let Some(plan) = self.fault_plan else {
            return (0, None);
        };
        let fp = launch.fingerprint();
        let occurrence = self.fault_occurrence.entry(fp).or_insert(0);
        let key = mix(fp, *occurrence);
        *occurrence += 1;
        // Transient region-read faults: a retry re-reads the intact source
        // copy, so recovery never affects functional results — only the
        // simulated clock (the retry budget caps work at rate 1.0; past it
        // the authoritative copy is assumed reached).
        let mut read_attempt: u32 = 0;
        while read_attempt <= self.recovery.max_retries
            && plan.should_fault(FaultSite::RegionRead, key, read_attempt)
        {
            self.fault_stats.faults_injected += 1;
            if !self.recovery.enabled {
                self.fault_stats.abandoned_launches += 1;
                return (
                    0,
                    Some(FaultEvent {
                        launch: launch.name.clone(),
                        site: FaultSite::RegionRead,
                        attempts: read_attempt + 1,
                    }),
                );
            }
            self.fault_stats.retries += 1;
            let backoff = self.recovery.backoff(read_attempt);
            self.fault_stats.recovery_sim_time += backoff;
            self.clock.uniform_phase(backoff);
            read_attempt += 1;
        }
        // Device faults: each killed attempt is replayed (and rolled back) by
        // the functional half; exhausting the retry budget strikes the
        // launch's target GPU and migrates the work — with recovery on, a
        // launch is never lost.
        let mut killed: u32 = 0;
        while killed <= self.recovery.max_retries
            && plan.should_fault(FaultSite::Device, key, killed)
        {
            self.fault_stats.faults_injected += 1;
            killed += 1;
            if !self.recovery.enabled {
                self.fault_stats.abandoned_launches += 1;
                return (
                    0,
                    Some(FaultEvent {
                        launch: launch.name.clone(),
                        site: FaultSite::Device,
                        attempts: killed,
                    }),
                );
            }
            if killed <= self.recovery.max_retries {
                self.fault_stats.retries += 1;
                let backoff = self.recovery.backoff(killed - 1);
                self.fault_stats.recovery_sim_time += backoff;
                self.clock.uniform_phase(backoff);
            }
        }
        if killed > self.recovery.max_retries {
            self.strike_gpu(fp);
        }
        (killed, None)
    }

    /// GPUs whose strike count is still below the policy threshold.
    fn healthy_gpus(&self) -> usize {
        self.gpu_strikes
            .iter()
            .filter(|&&s| s < self.recovery.unhealthy_after)
            .count()
    }

    /// Registers a device-fault strike against the launch's deterministic
    /// target GPU (`fingerprint % gpus`). Losing the last healthy GPU
    /// restarts the machine: outstanding work drains, further functional work
    /// runs on a serial fallback executor (parallel→serial degradation),
    /// health resets, and the restart penalty is charged.
    fn strike_gpu(&mut self, fp: u64) {
        self.fault_stats.degraded_launches += 1;
        let target = (fp % self.gpu_strikes.len() as u64) as usize;
        self.gpu_strikes[target] = self.gpu_strikes[target].saturating_add(1);
        if self.healthy_gpus() == 0 {
            let result = self.active_executor().flush();
            let drained = self.active_executor().drain_failures();
            self.record_failures(result, drained);
            self.fallback_serial.get_or_insert_with(SerialExecutor::new);
            self.gpu_strikes.iter_mut().for_each(|s| *s = 0);
            let penalty = self.recovery.restart_penalty();
            self.fault_stats.recovery_sim_time += penalty;
            self.clock.uniform_phase(penalty);
        }
    }

    /// Packages the functional half of a launch for the executor. The request
    /// borrows the launch (zero-copy on the serial path); only resolved
    /// handles and rects are owned.
    fn work_request<'a>(&self, launch: &'a TaskLaunch, failed_attempts: u32) -> WorkRequest<'a> {
        let accesses: Vec<BufferAccess> = launch
            .requirements
            .iter()
            .enumerate()
            .map(|(i, req)| BufferAccess {
                region: req.region,
                handle: self.regions[&req.region].clone(),
                rect: self.access_rect(launch, i),
                privilege: req.privilege,
            })
            .collect();
        WorkRequest {
            name: &launch.name,
            kernel: &launch.kernel,
            scalars: &launch.scalars,
            local_buffer_lens: &launch.local_buffer_lens,
            accesses,
            failed_attempts,
        }
    }

    /// Computes and charges the communication needed before `launch` can read
    /// its requirements. Returns the simulated seconds of communication.
    fn charge_communication(&mut self, launch: &TaskLaunch) -> f64 {
        let mut total_time = 0.0;
        for req in &launch.requirements {
            if !req.privilege.reads() {
                continue;
            }
            let region = &self.regions[&req.region];
            let validity = self
                .validity
                .get(&req.region)
                .cloned()
                .unwrap_or(Validity::Uninitialized);
            match validity {
                Validity::Uninitialized | Validity::Full => {}
                Validity::Reduced => {
                    // Combine pending reduction contributions (tiny payloads,
                    // latency bound).
                    let t = self.cost.allreduce_time(8);
                    total_time += t;
                    self.profile.comm_bytes += 8 * self.gpus() as u64;
                    self.validity.insert(req.region, Validity::Full);
                }
                Validity::Partitioned(valid_part) => {
                    if valid_part == req.partition {
                        continue;
                    }
                    // Per-point deficit: bytes each point task needs that its
                    // GPU does not already hold. Deref the interned
                    // partitions once, outside the point loop.
                    let want_part = req.partition.get();
                    let have_part = valid_part.get();
                    let mut max_deficit: u64 = 0;
                    let mut total_deficit: u64 = 0;
                    for p in launch.launch_domain.points() {
                        let want = want_part.sub_store_bounds(region.shape(), &p);
                        let have = have_part.sub_store_bounds(region.shape(), &p);
                        let overlap = want.intersect(&have).volume();
                        let deficit = (want.volume() - overlap) * 8;
                        max_deficit = max_deficit.max(deficit);
                        total_deficit += deficit;
                    }
                    if total_deficit == 0 {
                        continue;
                    }
                    let t = if req.partition.is_replicate() {
                        self.cost.allgather_time(region.size_bytes())
                    } else {
                        self.cost
                            .halo_exchange_time(max_deficit, self.cost.off_node_boundary_fraction())
                    };
                    total_time += t;
                    self.profile.comm_bytes += total_deficit;
                }
            }
        }
        self.profile.comm_time += total_time;
        total_time
    }

    /// Updates region validity according to the launch's writes/reductions.
    fn update_validity(&mut self, launch: &TaskLaunch) {
        for req in &launch.requirements {
            if req.privilege.reduces() {
                self.validity.insert(req.region, Validity::Reduced);
            } else if req.privilege.writes() {
                let v = if req.partition.may_alias_across_points() {
                    // A replicated write leaves every GPU with the full value.
                    Validity::Full
                } else {
                    Validity::Partitioned(req.partition)
                };
                self.validity.insert(req.region, v);
            }
        }
    }

    /// Charges kernel execution time for the launch. Returns the simulated
    /// seconds on the critical-path GPU.
    fn charge_kernels(&mut self, launch: &TaskLaunch) -> f64 {
        let domain_size = launch.launch_domain.size().max(1);
        let mut worst_time = 0.0f64;
        let mut worst_cost = kcost::KernelCost::default();
        // Under block partitionings most (often all) points see identical
        // buffer lengths; the module cost is a pure function of the lengths,
        // so reuse the previous point's cost when they repeat. This changes
        // host wall-clock only — the simulated worst-point time is identical.
        let mut lens: Vec<usize> = Vec::new();
        let mut prev: Option<(Vec<usize>, kcost::KernelCost, f64)> = None;
        // Resolve each requirement's interned partition once, outside the
        // per-point loop (each deref takes the interner's read lock).
        let req_parts: Vec<(&ir::Partition, &[u64])> = launch
            .requirements
            .iter()
            .map(|req| (req.partition.get(), self.regions[&req.region].shape()))
            .collect();
        for p in launch.launch_domain.points() {
            lens.clear();
            lens.extend(
                req_parts
                    .iter()
                    .map(|(part, shape)| part.sub_store_bounds(shape, &p).volume() as usize),
            );
            for &full in &launch.local_buffer_lens {
                let per_point = if full <= 1 {
                    full
                } else {
                    (full as u64).div_ceil(domain_size) as usize
                };
                lens.push(per_point.max(1));
            }
            let (c, t) = match &prev {
                Some((prev_lens, c, t)) if *prev_lens == lens => (*c, *t),
                _ => {
                    let c = kcost::module_cost(launch.kernel.module(), &lens);
                    let t = self.cost.kernel_time(c.bytes, c.flops, 0)
                        + c.launches as f64 * self.cost.launch_time();
                    prev = Some((lens.clone(), c, t));
                    (c, t)
                }
            };
            if t > worst_time {
                worst_time = t;
                worst_cost = c;
            }
        }
        self.profile.kernel_launches += worst_cost.launches;
        self.profile.kernel_bytes += worst_cost.bytes;
        self.profile.kernel_flops += worst_cost.flops;
        // Degraded machine: unhealthy GPUs' shares migrate to the healthy
        // ones, stretching the bulk-synchronous phase proportionally. With no
        // strikes the factor is exactly 1.0, so fault-free simulated time is
        // bit-identical to a build without the fault layer.
        let healthy = self.healthy_gpus().max(1);
        let worst_time = worst_time * (self.gpu_strikes.len() as f64 / healthy as f64);
        self.profile.kernel_time += worst_time;
        worst_time
    }

    /// The union (bounding box) of the sub-stores a requirement accesses over
    /// the launch domain.
    fn access_rect(&self, launch: &TaskLaunch, req_idx: usize) -> Rect {
        let req = &launch.requirements[req_idx];
        let shape = self.regions[&req.region].shape();
        let mut acc: Option<Rect> = None;
        for p in launch.launch_domain.points() {
            let r = req.partition.sub_store_bounds(shape, &p);
            if r.is_empty() {
                continue;
            }
            acc = Some(match acc {
                None => r,
                Some(prev) => Rect::new(
                    prev.lo
                        .iter()
                        .zip(&r.lo)
                        .map(|(&a, &b)| a.min(b))
                        .collect(),
                    prev.hi
                        .iter()
                        .zip(&r.hi)
                        .map(|(&a, &b)| a.max(b))
                        .collect(),
                ),
            });
        }
        acc.unwrap_or_else(|| Rect::empty(shape.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::RegionRequirement;
    use ir::{Domain, Partition, Privilege};
    use kernel::{compile_interp, BufferId, BufferRole, KernelModule, LoopBuilder};

    fn functional_runtime(gpus: usize) -> Runtime {
        Runtime::new(
            RuntimeConfig::functional(MachineConfig::with_gpus(gpus))
                .with_executor(ExecutorKind::Serial),
        )
    }

    fn scale_module(factor: f64) -> KernelModule {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        let c = lb.constant(factor);
        let v = lb.mul(x, c);
        lb.store(BufferId(1), v);
        module.push_loop(lb.finish());
        module
    }

    fn scale_launch(a: RegionId, b: RegionId, gpus: u64, n: u64) -> TaskLaunch {
        TaskLaunch {
            name: "scale".into(),
            launch_domain: Domain::linear(gpus),
            requirements: vec![
                RegionRequirement::new(a, Partition::block(vec![n / gpus]), Privilege::Read),
                RegionRequirement::new(b, Partition::block(vec![n / gpus]), Privilege::Write),
            ],
            kernel: compile_interp(scale_module(3.0)),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        }
    }

    #[test]
    fn allocate_fill_free() {
        let mut rt = functional_runtime(4);
        let r = rt.allocate_region(vec![32], "v");
        assert_eq!(rt.region_shape(r), Some(&[32u64][..]));
        rt.fill(r, 7.0).unwrap();
        assert!(rt.region_data(r).unwrap().iter().all(|&x| x == 7.0));
        assert_eq!(rt.profile().distributed_allocations, 1);
        rt.free_region(r).unwrap();
        assert!(rt.region_data(r).is_none());
        assert_eq!(rt.free_region(r), Err(RuntimeError::UnknownRegion(r)));
    }

    #[test]
    fn execute_runs_kernel_and_charges_time() {
        let mut rt = functional_runtime(4);
        let a = rt.allocate_region(vec![32], "a");
        let b = rt.allocate_region(vec![32], "b");
        rt.fill(a, 2.0).unwrap();
        let before = rt.elapsed();
        rt.execute(&scale_launch(a, b, 4, 32)).unwrap();
        assert!(rt.elapsed() > before);
        assert_eq!(rt.region_data(b).unwrap(), vec![6.0; 32]);
        assert_eq!(rt.profile().index_tasks, 2); // fill + scale
        assert!(rt.profile().kernel_launches >= 2);
        assert_eq!(rt.profile().comm_bytes, 0, "same partition: no communication");
    }

    #[test]
    fn reading_through_a_different_partition_charges_communication() {
        let mut rt = functional_runtime(4);
        let a = rt.allocate_region(vec![32], "a");
        let b = rt.allocate_region(vec![32], "b");
        let c = rt.allocate_region(vec![32], "c");
        rt.fill(a, 1.0).unwrap();
        // Write b tiled by blocks of 8.
        rt.execute(&scale_launch(a, b, 4, 32)).unwrap();
        // Read b through a shifted tiling -> halo exchange.
        let shifted = Partition::tiling(vec![8], vec![1], ir::Projection::Identity);
        let launch = TaskLaunch {
            name: "shifted_read".into(),
            launch_domain: Domain::linear(4),
            requirements: vec![
                RegionRequirement::new(b, shifted, Privilege::Read),
                RegionRequirement::new(c, Partition::block(vec![8]), Privilege::Write),
            ],
            kernel: compile_interp(scale_module(1.0)),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        };
        rt.execute(&launch).unwrap();
        assert!(rt.profile().comm_bytes > 0);
        assert!(rt.profile().comm_time > 0.0);
    }

    #[test]
    fn replicated_read_after_tiled_write_charges_allgather() {
        let mut rt = functional_runtime(8);
        let a = rt.allocate_region(vec![64], "a");
        let b = rt.allocate_region(vec![64], "b");
        let out = rt.allocate_region(vec![64], "out");
        rt.fill(a, 1.0).unwrap();
        rt.execute(&scale_launch(a, b, 8, 64)).unwrap();
        let comm_before = rt.profile().comm_bytes;
        let launch = TaskLaunch {
            name: "gather_read".into(),
            launch_domain: Domain::linear(8),
            requirements: vec![
                RegionRequirement::new(b, Partition::Replicate, Privilege::Read),
                RegionRequirement::new(out, Partition::block(vec![8]), Privilege::Write),
            ],
            kernel: compile_interp(scale_module(1.0)),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        };
        rt.execute(&launch).unwrap();
        let comm = rt.profile().comm_bytes - comm_before;
        // Each GPU misses 7/8 of the 512-byte region.
        assert_eq!(comm, 8 * (512 - 64));
    }

    #[test]
    fn mpi_overhead_is_cheaper_than_task_overhead() {
        let measure = |class: OverheadClass| {
            let mut rt = functional_runtime(4);
            let a = rt.allocate_region(vec![32], "a");
            let b = rt.allocate_region(vec![32], "b");
            rt.fill(a, 1.0).unwrap();
            rt.reset_timing();
            let mut launch = scale_launch(a, b, 4, 32);
            launch.overhead = class;
            rt.execute(&launch).unwrap();
            rt.elapsed()
        };
        let task = measure(OverheadClass::TaskRuntime);
        let mpi = measure(OverheadClass::Mpi);
        let none = measure(OverheadClass::None);
        assert!(task > mpi && mpi > none);
    }

    #[test]
    fn reset_timing_clears_clock_and_profile() {
        let mut rt = functional_runtime(2);
        let a = rt.allocate_region(vec![16], "a");
        rt.fill(a, 1.0).unwrap();
        assert!(rt.elapsed() > 0.0);
        rt.reset_timing();
        assert_eq!(rt.elapsed(), 0.0);
        assert_eq!(rt.profile().index_tasks, 0);
    }

    #[test]
    fn unknown_region_in_launch_is_an_error() {
        let mut rt = functional_runtime(2);
        let launch = TaskLaunch {
            name: "bad".into(),
            launch_domain: Domain::linear(2),
            requirements: vec![RegionRequirement::new(
                RegionId(99),
                Partition::Replicate,
                Privilege::Read,
            )],
            kernel: compile_interp(KernelModule::new(1)),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        };
        assert_eq!(
            rt.execute(&launch),
            Err(RuntimeError::UnknownRegion(RegionId(99)))
        );
    }

    #[test]
    fn simulation_only_mode_skips_data() {
        let mut rt = Runtime::new(RuntimeConfig::simulation_only(MachineConfig::with_gpus(8)));
        assert!(!rt.is_functional());
        let a = rt.allocate_region(vec![1 << 24], "big_a");
        let b = rt.allocate_region(vec![1 << 24], "big_b");
        rt.fill(a, 1.0).unwrap();
        rt.execute(&scale_launch(a, b, 8, 1 << 24)).unwrap();
        assert!(rt.region_data(b).is_none());
        assert!(rt.elapsed() > 0.0);
        assert!(rt.profile().kernel_bytes > 0);
    }

    #[test]
    fn simulation_only_ignores_parallel_executor_choice() {
        let config = RuntimeConfig::simulation_only(MachineConfig::with_gpus(4))
            .with_executor(ExecutorKind::WorkStealing { workers: Some(4) });
        let rt = Runtime::new(config);
        assert_eq!(rt.executor_kind(), ExecutorKind::Serial);
    }

    #[test]
    fn aliasing_views_stay_coherent_between_stages() {
        // Stage 1 writes the left half of a region through one view; stage 2
        // reads the same elements through the parent view and copies them to
        // another region. The copy must observe the stage-1 write.
        let mut rt = functional_runtime(2);
        let grid = rt.allocate_region(vec![8], "grid");
        let out = rt.allocate_region(vec![8], "out");
        rt.fill(grid, 1.0).unwrap();

        let mut module = KernelModule::new(3);
        module.set_role(BufferId(0), BufferRole::InOut);
        module.set_role(BufferId(2), BufferRole::Output);
        // Stage 1: grid_left[i] = 5.0 (view buffer 1 is read to define the domain).
        let mut s1 = LoopBuilder::new("write_left", BufferId(1));
        let c = s1.constant(5.0);
        s1.store(BufferId(1), c);
        module.push_loop(s1.finish());
        // Stage 2: out[i] = grid[i] over the full region.
        let mut s2 = LoopBuilder::new("copy", BufferId(0));
        let x = s2.load(BufferId(0));
        s2.store(BufferId(2), x);
        module.push_loop(s2.finish());

        let left = Partition::block(vec![2]); // covers [0,4) over 2 points
        let launch = TaskLaunch {
            name: "aliasing".into(),
            launch_domain: Domain::linear(2),
            requirements: vec![
                RegionRequirement::new(grid, Partition::block(vec![4]), Privilege::ReadWrite),
                RegionRequirement::new(grid, left, Privilege::ReadWrite),
                RegionRequirement::new(out, Partition::block(vec![4]), Privilege::Write),
            ],
            kernel: compile_interp(module),
            scalars: vec![],
            local_buffer_lens: vec![],
            overhead: OverheadClass::TaskRuntime,
        };
        rt.execute(&launch).unwrap();
        let out_data = rt.region_data(out).unwrap();
        assert_eq!(&out_data[..4], &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(&out_data[4..], &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn parallel_executor_matches_serial_on_a_chain() {
        let run = |kind: ExecutorKind| {
            let config =
                RuntimeConfig::functional(MachineConfig::with_gpus(4)).with_executor(kind);
            let mut rt = Runtime::new(config);
            let a = rt.allocate_region(vec![32], "a");
            let b = rt.allocate_region(vec![32], "b");
            let c = rt.allocate_region(vec![32], "c");
            rt.fill(a, 2.0).unwrap();
            rt.execute_batch(&[scale_launch(a, b, 4, 32), scale_launch(b, c, 4, 32)])
                .unwrap();
            (rt.region_data(c).unwrap(), rt.elapsed())
        };
        let (serial_data, serial_time) = run(ExecutorKind::Serial);
        let (parallel_data, parallel_time) =
            run(ExecutorKind::WorkStealing { workers: Some(4) });
        assert_eq!(serial_data, parallel_data);
        assert_eq!(
            serial_time, parallel_time,
            "simulated time must not depend on the executor"
        );
        assert_eq!(serial_data, vec![18.0; 32]);
    }

    #[test]
    fn deferred_interpreter_error_surfaces_at_flush() {
        let config = RuntimeConfig::functional(MachineConfig::with_gpus(2))
            .with_executor(ExecutorKind::WorkStealing { workers: Some(2) });
        let mut rt = Runtime::new(config);
        let a = rt.allocate_region(vec![8], "a");
        let b = rt.allocate_region(vec![8], "b");
        rt.fill(a, 1.0).unwrap();
        // A module reading scalar parameter 0 that the launch does not provide.
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(0));
        let p = lb.param(0);
        let v = lb.mul(x, p);
        lb.store(BufferId(1), v);
        module.push_loop(lb.finish());
        let mut launch = scale_launch(a, b, 2, 8);
        launch.kernel = compile_interp(module);
        assert!(rt.execute(&launch).is_ok(), "submit succeeds; error defers");
        let err = rt.flush_launches().unwrap_err();
        assert!(matches!(err, RuntimeError::Exec(_)));
        assert!(std::error::Error::source(&err).is_some());
        // The batch is drained: the next flush is clean.
        rt.flush_launches().unwrap();
    }

    /// A module reading scalar parameter 0 that no launch provides: fails
    /// with MissingParam when its functional work runs.
    fn missing_param_module() -> KernelModule {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(0));
        let p = lb.param(0);
        let v = lb.mul(x, p);
        lb.store(BufferId(1), v);
        module.push_loop(lb.finish());
        module
    }

    #[test]
    fn completed_launches_in_a_failed_batch_keep_data_and_stats() {
        // The failing launch writes b; an unordered launch writes c. The
        // failure must not discard the unordered launch's results or its
        // already-flushed accounting.
        let mut rt = functional_runtime(4);
        let a = rt.allocate_region(vec![32], "a");
        let b = rt.allocate_region(vec![32], "b");
        let c = rt.allocate_region(vec![32], "c");
        rt.fill(a, 2.0).unwrap();
        let mut bad = scale_launch(a, b, 4, 32);
        bad.kernel = compile_interp(missing_param_module());
        rt.execute(&bad).unwrap();
        rt.execute(&scale_launch(a, c, 4, 32)).unwrap();
        let err = rt.flush_launches().unwrap_err();
        assert!(matches!(err, RuntimeError::Exec(_)));
        // Stats flushed for the whole batch: fill + both launches.
        assert_eq!(rt.profile().index_tasks, 3);
        // The unordered launch's data committed (containment).
        assert_eq!(rt.region_data(c).unwrap(), vec![6.0; 32]);
        // Exactly one structured failure: the bad launch, by name.
        let failures = rt.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].launch, "scale");
        assert!(matches!(failures[0].error, RuntimeError::Exec(_)));
    }

    #[test]
    fn backoff_pricing_is_pinned() {
        // rate 1.0 forces every site to fire on every attempt. With
        // max_retries = 2 and backoff base b:
        //  * region-read: 3 faults, 3 retries, backoff b + 2b + 4b = 7b
        //  * device: 3 faults, 2 retries, backoff b + 2b = 3b, then the
        //    retry budget is exhausted -> 1 degraded (migrated) launch
        let base = 1e-4;
        let recovery = RecoveryPolicy::default()
            .with_max_retries(2)
            .with_backoff_base(base)
            .with_unhealthy_after(10); // no machine restart in this test
        let config = RuntimeConfig::functional(MachineConfig::with_gpus(2))
            .with_executor(ExecutorKind::Serial)
            .with_fault_plan(FaultPlan::new(7, 1.0))
            .with_recovery(recovery);
        let mut rt = Runtime::new(config);
        let a = rt.allocate_region(vec![16], "a");
        let b = rt.allocate_region(vec![16], "b");
        rt.write_region_data(a, vec![2.0; 16]).unwrap();
        rt.execute(&scale_launch(a, b, 2, 16)).unwrap();
        rt.flush_launches().unwrap();
        let stats = rt.fault_stats();
        assert_eq!(stats.faults_injected, 6);
        assert_eq!(stats.retries, 5);
        assert_eq!(stats.degraded_launches, 1);
        assert_eq!(stats.abandoned_launches, 0);
        assert!(
            (stats.recovery_sim_time - 10.0 * base).abs() < 1e-12,
            "expected 10b, got {}",
            stats.recovery_sim_time
        );
        // Recovery on: the launch still committed, bit-identical.
        assert_eq!(rt.region_data(b).unwrap(), vec![6.0; 16]);
    }

    #[test]
    fn recovery_off_abandons_the_faulted_cone_only() {
        let config = RuntimeConfig::functional(MachineConfig::with_gpus(2))
            .with_executor(ExecutorKind::Serial)
            .with_fault_plan(FaultPlan::new(3, 1.0))
            .with_recovery(RecoveryPolicy::disabled());
        let mut rt = Runtime::new(config);
        let a = rt.allocate_region(vec![16], "a");
        let b = rt.allocate_region(vec![16], "b");
        let c = rt.allocate_region(vec![16], "c");
        rt.fill(a, 1.0).unwrap();
        // fill() is also a launch-free op; only execute() injects. The
        // faulted launch writes b; its dependent reads b.
        rt.execute(&scale_launch(a, b, 2, 16)).unwrap();
        rt.execute(&scale_launch(b, c, 2, 16)).unwrap();
        let err = rt.flush_launches().unwrap_err();
        assert!(matches!(err, RuntimeError::Faulted(_)));
        assert!(std::error::Error::source(&err).is_some());
        let stats = rt.fault_stats();
        assert_eq!(stats.abandoned_launches, 2, "both launches fault at rate 1");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.recovery_sim_time, 0.0);
        let failures = rt.take_failures();
        assert_eq!(failures.len(), 2);
        assert!(failures
            .iter()
            .all(|f| matches!(f.error, RuntimeError::Faulted(_))));
        // Outputs of the faulted cone never committed.
        assert_eq!(rt.region_data(b).unwrap(), vec![0.0; 16]);
        assert_eq!(rt.region_data(c).unwrap(), vec![0.0; 16]);
    }

    #[test]
    fn losing_every_gpu_degrades_to_the_serial_fallback() {
        // One GPU, one strike allowed: the first exhausted launch restarts
        // the machine onto the serial fallback; later launches still commit.
        let recovery = RecoveryPolicy::default()
            .with_max_retries(1)
            .with_unhealthy_after(1);
        let config = RuntimeConfig::functional(MachineConfig::with_gpus(1))
            .with_executor(ExecutorKind::WorkStealing { workers: Some(2) })
            .with_fault_plan(FaultPlan::new(11, 1.0))
            .with_recovery(recovery);
        let mut rt = Runtime::new(config);
        let a = rt.allocate_region(vec![8], "a");
        let b = rt.allocate_region(vec![8], "b");
        let c = rt.allocate_region(vec![8], "c");
        rt.write_region_data(a, vec![2.0; 8]).unwrap();
        rt.execute(&scale_launch(a, b, 1, 8)).unwrap();
        rt.execute(&scale_launch(b, c, 1, 8)).unwrap();
        rt.flush_launches().unwrap();
        let stats = rt.fault_stats();
        assert!(stats.degraded_launches >= 1);
        // The restart penalty was charged at least once.
        assert!(stats.recovery_sim_time >= recovery.restart_penalty());
        // Recovery never loses a launch: the chain committed bit-identically.
        assert_eq!(rt.region_data(c).unwrap(), vec![18.0; 8]);
        assert!(rt.take_failures().is_empty());
    }

    #[test]
    fn fault_schedule_is_executor_invariant() {
        let run = |kind: ExecutorKind| {
            let config = RuntimeConfig::functional(MachineConfig::with_gpus(4))
                .with_executor(kind)
                .with_fault_plan(FaultPlan::new(99, 0.35));
            let mut rt = Runtime::new(config);
            let a = rt.allocate_region(vec![32], "a");
            let b = rt.allocate_region(vec![32], "b");
            let c = rt.allocate_region(vec![32], "c");
            let d = rt.allocate_region(vec![32], "d");
            rt.write_region_data(a, (0..32).map(|i| i as f64).collect())
                .unwrap();
            // A chain plus an independent launch, repeated so per-fingerprint
            // occurrence counters advance.
            for _ in 0..4 {
                rt.execute(&scale_launch(a, b, 4, 32)).unwrap();
                rt.execute(&scale_launch(b, c, 4, 32)).unwrap();
                rt.execute(&scale_launch(a, d, 4, 32)).unwrap();
            }
            rt.flush_launches().unwrap();
            (
                rt.region_data(c).unwrap(),
                rt.region_data(d).unwrap(),
                rt.elapsed(),
                rt.fault_stats(),
            )
        };
        let serial = run(ExecutorKind::Serial);
        let parallel = run(ExecutorKind::WorkStealing { workers: Some(4) });
        assert!(serial.3.faults_injected > 0, "schedule must actually fire");
        assert_eq!(serial.3, parallel.3, "fault stats must not depend on the executor");
        assert_eq!(serial.2.to_bits(), parallel.2.to_bits());
        assert_eq!(serial.0, parallel.0);
        assert_eq!(serial.1, parallel.1);
    }

    #[test]
    fn poisoned_batch_data_reads_return_none_and_stash_the_error() {
        let config = RuntimeConfig::functional(MachineConfig::with_gpus(2))
            .with_executor(ExecutorKind::WorkStealing { workers: Some(2) });
        let mut rt = Runtime::new(config);
        let a = rt.allocate_region(vec![8], "a");
        let b = rt.allocate_region(vec![8], "b");
        rt.fill(a, 1.0).unwrap();
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("bad", BufferId(0));
        let x = lb.load(BufferId(0));
        let p = lb.param(0); // no scalars provided: MissingParam at run time
        let v = lb.mul(x, p);
        lb.store(BufferId(1), v);
        module.push_loop(lb.finish());
        let mut launch = scale_launch(a, b, 2, 8);
        launch.kernel = compile_interp(module);
        rt.execute(&launch).unwrap();
        // The data of the poisoned batch must not be observable...
        assert_eq!(rt.region_data(b), None);
        // ...and the stashed error resurfaces at the next fallible call.
        let err = rt.flush_launches().unwrap_err();
        assert!(matches!(err, RuntimeError::Exec(_)));
        // After which the runtime is clean again.
        rt.flush_launches().unwrap();
        assert!(rt.region_data(b).is_some());
    }
}
