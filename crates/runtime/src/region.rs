//! Logical regions: the runtime's distributed arrays.

use ir::Rect;

/// Identifier of a logical region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A logical region: shape metadata plus (optionally) materialized contents.
///
/// In functional executions the contents are held as a single row-major host
/// buffer — distribution is modelled by the cost layer, not by physically
/// splitting the data. In pure-simulation executions (`data == None`) only the
/// metadata exists, which lets the benchmark harness model machine-scale
/// problem sizes without allocating them.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// The region's identifier.
    pub id: RegionId,
    /// Rectangular shape.
    pub shape: Vec<u64>,
    /// Row-major contents, when materialized.
    pub data: Option<Vec<f64>>,
    /// Human-readable name.
    pub name: String,
}

impl Region {
    /// Creates a region, materializing zero-initialized contents if
    /// `materialize` is true.
    pub fn new(id: RegionId, shape: Vec<u64>, name: impl Into<String>, materialize: bool) -> Self {
        let volume: u64 = shape.iter().product();
        Region {
            id,
            shape,
            data: if materialize {
                Some(vec![0.0; volume as usize])
            } else {
                None
            },
            name: name.into(),
        }
    }

    /// Number of elements.
    pub fn volume(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Total size in bytes (f64 elements).
    pub fn size_bytes(&self) -> u64 {
        self.volume() * 8
    }

    /// Whether the region's contents are materialized.
    pub fn is_materialized(&self) -> bool {
        self.data.is_some()
    }

    /// Copies the elements inside `rect` into a dense row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the region is not materialized or the rect does not fit the
    /// region's rank.
    pub fn read_rect(&self, rect: &Rect) -> Vec<f64> {
        let data = self.data.as_ref().expect("region is not materialized");
        let mut out = Vec::with_capacity(rect.volume() as usize);
        for idx in rect_indices(rect, &self.shape) {
            out.push(data[idx]);
        }
        out
    }

    /// Writes a dense row-major buffer into the elements inside `rect`.
    ///
    /// # Panics
    ///
    /// Panics if the region is not materialized, the rect does not fit the
    /// region's rank, or `values` has the wrong length.
    pub fn write_rect(&mut self, rect: &Rect, values: &[f64]) {
        assert_eq!(
            values.len() as u64,
            rect.volume(),
            "value buffer length must equal the rect volume"
        );
        let shape = self.shape.clone();
        let data = self.data.as_mut().expect("region is not materialized");
        for (i, idx) in rect_indices(rect, &shape).enumerate() {
            data[idx] = values[i];
        }
    }
}

/// Iterates the row-major linear indices of the elements of `rect` within an
/// array of the given shape.
///
/// # Panics
///
/// Panics if the rect rank differs from the shape rank or the rect extends
/// outside the shape.
pub fn rect_indices<'a>(rect: &'a Rect, shape: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
    assert_eq!(rect.rank(), shape.len(), "rect rank must match region rank");
    for d in 0..rect.rank() {
        assert!(
            rect.lo[d] >= 0 && rect.hi[d] <= shape[d] as i64,
            "rect {rect} out of bounds for shape {shape:?}"
        );
    }
    let strides: Vec<usize> = {
        let mut s = vec![1usize; shape.len()];
        for d in (0..shape.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * shape[d + 1] as usize;
        }
        s
    };
    let volume = rect.volume() as usize;
    let rect = rect.clone();
    (0..volume).map(move |mut flat| {
        let mut idx = 0usize;
        for d in (0..rect.rank()).rev() {
            let extent = (rect.hi[d] - rect.lo[d]) as usize;
            let coord = rect.lo[d] as usize + (flat % extent.max(1));
            flat /= extent.max(1);
            idx += coord * strides[d];
        }
        idx
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_creation_and_metadata() {
        let r = Region::new(RegionId(0), vec![4, 4], "grid", true);
        assert_eq!(r.volume(), 16);
        assert_eq!(r.size_bytes(), 128);
        assert!(r.is_materialized());
        let lazy = Region::new(RegionId(1), vec![1 << 20], "big", false);
        assert!(!lazy.is_materialized());
        assert_eq!(lazy.volume(), 1 << 20);
    }

    #[test]
    fn rect_round_trip_1d() {
        let mut r = Region::new(RegionId(0), vec![8], "v", true);
        r.write_rect(&Rect::new(vec![2], vec![5]), &[1.0, 2.0, 3.0]);
        assert_eq!(r.read_rect(&Rect::new(vec![2], vec![5])), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.read_rect(&Rect::new(vec![0], vec![2])), vec![0.0, 0.0]);
    }

    #[test]
    fn rect_round_trip_2d_interior() {
        let mut r = Region::new(RegionId(0), vec![4, 4], "grid", true);
        // Write the 2x2 interior block starting at (1,1).
        let rect = Rect::new(vec![1, 1], vec![3, 3]);
        r.write_rect(&rect, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.read_rect(&rect), vec![1.0, 2.0, 3.0, 4.0]);
        // Check row-major placement: element (1,2) is linear index 6.
        assert_eq!(r.data.as_ref().unwrap()[6], 2.0);
        assert_eq!(r.data.as_ref().unwrap()[9], 3.0);
    }

    #[test]
    fn rect_indices_row_major_order() {
        let rect = Rect::new(vec![1, 0], vec![3, 2]);
        let idx: Vec<usize> = rect_indices(&rect, &[4, 3]).collect();
        assert_eq!(idx, vec![3, 4, 6, 7]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_rect_panics() {
        let r = Region::new(RegionId(0), vec![4], "v", true);
        let _ = r.read_rect(&Rect::new(vec![2], vec![6]));
    }

    #[test]
    #[should_panic]
    fn unmaterialized_read_panics() {
        let r = Region::new(RegionId(0), vec![4], "v", false);
        let _ = r.read_rect(&Rect::new(vec![0], vec![2]));
    }

    #[test]
    #[should_panic]
    fn wrong_length_write_panics() {
        let mut r = Region::new(RegionId(0), vec![4], "v", true);
        r.write_rect(&Rect::new(vec![0], vec![2]), &[1.0]);
    }
}
