//! Logical regions: the runtime's distributed arrays.
//!
//! A [`Region`] is the plain data holder. The runtime and its executors never
//! share `Region`s directly; they share [`RegionHandle`]s, which put the data
//! behind an interior-mutability-safe lock while keeping the immutable
//! metadata (shape, name) lock-free to read. Executor workers running on
//! different threads lock individual regions only for the duration of a
//! copy-in or copy-out, so launches touching disjoint regions proceed fully in
//! parallel (see `docs/RUNTIME.md`).

use std::sync::{Arc, RwLock};

use ir::Rect;

/// Identifier of a logical region.
///
/// Ids are allocated monotonically by [`crate::Runtime`] and never reused,
/// which is what makes freeing a region safe while launches are in flight.
///
/// # Example
///
/// ```
/// use runtime::RegionId;
///
/// assert_eq!(RegionId(7).to_string(), "R7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A logical region: shape metadata plus (optionally) materialized contents.
///
/// In functional executions the contents are held as a single row-major host
/// buffer — distribution is modelled by the cost layer, not by physically
/// splitting the data. In pure-simulation executions (`data == None`) only the
/// metadata exists, which lets the benchmark harness model machine-scale
/// problem sizes without allocating them.
///
/// # Example
///
/// ```
/// use ir::Rect;
/// use runtime::{Region, RegionId};
///
/// let mut r = Region::new(RegionId(0), vec![4, 4], "grid", true);
/// assert_eq!((r.volume(), r.size_bytes()), (16, 128));
/// r.write_rect(&Rect::new(vec![0, 0], vec![1, 4]), &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(r.read_rect(&Rect::new(vec![0, 1], vec![1, 3])), vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// The region's identifier.
    pub id: RegionId,
    /// Rectangular shape.
    pub shape: Vec<u64>,
    /// Row-major contents, when materialized.
    pub data: Option<Vec<f64>>,
    /// Human-readable name.
    pub name: String,
}

impl Region {
    /// Creates a region, materializing zero-initialized contents if
    /// `materialize` is true.
    pub fn new(id: RegionId, shape: Vec<u64>, name: impl Into<String>, materialize: bool) -> Self {
        let volume: u64 = shape.iter().product();
        Region {
            id,
            shape,
            data: if materialize {
                Some(vec![0.0; volume as usize])
            } else {
                None
            },
            name: name.into(),
        }
    }

    /// Number of elements.
    pub fn volume(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Total size in bytes (f64 elements).
    pub fn size_bytes(&self) -> u64 {
        self.volume() * 8
    }

    /// Whether the region's contents are materialized.
    pub fn is_materialized(&self) -> bool {
        self.data.is_some()
    }

    /// Copies the elements inside `rect` into a dense row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the region is not materialized or the rect does not fit the
    /// region's rank.
    pub fn read_rect(&self, rect: &Rect) -> Vec<f64> {
        let data = self.data.as_ref().expect("region is not materialized");
        let mut out = Vec::with_capacity(rect.volume() as usize);
        for idx in rect_indices(rect, &self.shape) {
            out.push(data[idx]);
        }
        out
    }

    /// Writes a dense row-major buffer into the elements inside `rect`.
    ///
    /// # Panics
    ///
    /// Panics if the region is not materialized, the rect does not fit the
    /// region's rank, or `values` has the wrong length.
    pub fn write_rect(&mut self, rect: &Rect, values: &[f64]) {
        assert_eq!(
            values.len() as u64,
            rect.volume(),
            "value buffer length must equal the rect volume"
        );
        let shape = self.shape.clone();
        let data = self.data.as_mut().expect("region is not materialized");
        for (i, idx) in rect_indices(rect, &shape).enumerate() {
            data[idx] = values[i];
        }
    }
}

/// A shared, thread-safe handle to a [`Region`].
///
/// The handle caches the region's immutable metadata (shape and name) outside
/// the lock, so cost accounting and dependency analysis never contend with
/// executor workers; only the mutable contents live behind the [`RwLock`].
/// Cloning a handle is cheap and yields another reference to the same region.
///
/// Concurrent readers share the lock; a writer takes it exclusively. The
/// executor's dependency tracking (see [`crate::deps`]) already serializes
/// conflicting launches, so in practice the lock is only ever contended by
/// launches that access disjoint rectangles of the same region.
///
/// # Example
///
/// ```
/// use runtime::{Region, RegionHandle, RegionId};
/// use ir::Rect;
///
/// let handle = RegionHandle::new(Region::new(RegionId(0), vec![8], "v", true));
/// let clone = handle.clone(); // same underlying region
/// clone.write_rect(&Rect::new(vec![0], vec![2]), &[1.0, 2.0]);
/// assert_eq!(handle.read_rect(&Rect::new(vec![0], vec![2])), vec![1.0, 2.0]);
/// assert_eq!(handle.shape(), &[8]);
/// ```
#[derive(Debug, Clone)]
pub struct RegionHandle {
    /// Immutable metadata, shared so `Clone` is a pure refcount bump.
    meta: Arc<RegionMeta>,
    cell: Arc<RwLock<Region>>,
}

#[derive(Debug)]
struct RegionMeta {
    shape: Vec<u64>,
    name: String,
}

impl RegionHandle {
    /// Wraps a region in a shared handle.
    pub fn new(region: Region) -> Self {
        RegionHandle {
            meta: Arc::new(RegionMeta {
                shape: region.shape.clone(),
                name: region.name.clone(),
            }),
            cell: Arc::new(RwLock::new(region)),
        }
    }

    /// The region's shape (immutable for the region's lifetime; lock-free).
    pub fn shape(&self) -> &[u64] {
        &self.meta.shape
    }

    /// The region's human-readable name (lock-free).
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Number of elements.
    pub fn volume(&self) -> u64 {
        self.meta.shape.iter().product()
    }

    /// Total size in bytes (f64 elements).
    pub fn size_bytes(&self) -> u64 {
        self.volume() * 8
    }

    /// Whether the region's contents are materialized.
    pub fn is_materialized(&self) -> bool {
        self.cell.read().unwrap().is_materialized()
    }

    /// Copies the elements inside `rect` into a dense row-major buffer,
    /// holding the read lock only for the duration of the copy.
    ///
    /// # Panics
    ///
    /// Panics if the region is not materialized or the rect does not fit.
    pub fn read_rect(&self, rect: &Rect) -> Vec<f64> {
        self.cell.read().unwrap().read_rect(rect)
    }

    /// Writes a dense row-major buffer into the elements inside `rect`,
    /// holding the write lock only for the duration of the copy.
    ///
    /// # Panics
    ///
    /// Panics if the region is not materialized, the rect does not fit, or
    /// `values` has the wrong length.
    pub fn write_rect(&self, rect: &Rect, values: &[f64]) {
        self.cell.write().unwrap().write_rect(rect, values);
    }

    /// Fills every materialized element with `value` (no-op when the region is
    /// not materialized).
    pub fn fill(&self, value: f64) {
        if let Some(data) = self.cell.write().unwrap().data.as_mut() {
            data.fill(value);
        }
    }

    /// A copy of the region's full contents, when materialized.
    pub fn data(&self) -> Option<Vec<f64>> {
        self.cell.read().unwrap().data.clone()
    }

    /// Overwrites the full contents (no-op when not materialized).
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the region volume.
    pub fn write_data(&self, data: Vec<f64>) {
        // Validate before taking the lock: a panic while holding the write
        // guard would poison the RwLock and break every later access.
        assert_eq!(
            data.len() as u64,
            self.volume(),
            "data length must match region volume"
        );
        let mut region = self.cell.write().unwrap();
        if region.is_materialized() {
            region.data = Some(data);
        }
    }
}

/// Iterates the row-major linear indices of the elements of `rect` within an
/// array of the given shape.
///
/// # Example
///
/// ```
/// use ir::Rect;
/// use runtime::region::rect_indices;
///
/// let rect = Rect::new(vec![1, 0], vec![3, 2]);
/// let idx: Vec<usize> = rect_indices(&rect, &[4, 3]).collect();
/// assert_eq!(idx, vec![3, 4, 6, 7]);
/// ```
///
/// # Panics
///
/// Panics if the rect rank differs from the shape rank or the rect extends
/// outside the shape.
pub fn rect_indices<'a>(rect: &'a Rect, shape: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
    assert_eq!(rect.rank(), shape.len(), "rect rank must match region rank");
    for d in 0..rect.rank() {
        assert!(
            rect.lo[d] >= 0 && rect.hi[d] <= shape[d] as i64,
            "rect {rect} out of bounds for shape {shape:?}"
        );
    }
    let strides: Vec<usize> = {
        let mut s = vec![1usize; shape.len()];
        for d in (0..shape.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * shape[d + 1] as usize;
        }
        s
    };
    let volume = rect.volume() as usize;
    let rect = rect.clone();
    (0..volume).map(move |mut flat| {
        let mut idx = 0usize;
        for d in (0..rect.rank()).rev() {
            let extent = (rect.hi[d] - rect.lo[d]) as usize;
            let coord = rect.lo[d] as usize + (flat % extent.max(1));
            flat /= extent.max(1);
            idx += coord * strides[d];
        }
        idx
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_creation_and_metadata() {
        let r = Region::new(RegionId(0), vec![4, 4], "grid", true);
        assert_eq!(r.volume(), 16);
        assert_eq!(r.size_bytes(), 128);
        assert!(r.is_materialized());
        let lazy = Region::new(RegionId(1), vec![1 << 20], "big", false);
        assert!(!lazy.is_materialized());
        assert_eq!(lazy.volume(), 1 << 20);
    }

    #[test]
    fn rect_round_trip_1d() {
        let mut r = Region::new(RegionId(0), vec![8], "v", true);
        r.write_rect(&Rect::new(vec![2], vec![5]), &[1.0, 2.0, 3.0]);
        assert_eq!(r.read_rect(&Rect::new(vec![2], vec![5])), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.read_rect(&Rect::new(vec![0], vec![2])), vec![0.0, 0.0]);
    }

    #[test]
    fn rect_round_trip_2d_interior() {
        let mut r = Region::new(RegionId(0), vec![4, 4], "grid", true);
        // Write the 2x2 interior block starting at (1,1).
        let rect = Rect::new(vec![1, 1], vec![3, 3]);
        r.write_rect(&rect, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.read_rect(&rect), vec![1.0, 2.0, 3.0, 4.0]);
        // Check row-major placement: element (1,2) is linear index 6.
        assert_eq!(r.data.as_ref().unwrap()[6], 2.0);
        assert_eq!(r.data.as_ref().unwrap()[9], 3.0);
    }

    #[test]
    fn rect_indices_row_major_order() {
        let rect = Rect::new(vec![1, 0], vec![3, 2]);
        let idx: Vec<usize> = rect_indices(&rect, &[4, 3]).collect();
        assert_eq!(idx, vec![3, 4, 6, 7]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_rect_panics() {
        let r = Region::new(RegionId(0), vec![4], "v", true);
        let _ = r.read_rect(&Rect::new(vec![2], vec![6]));
    }

    #[test]
    #[should_panic]
    fn unmaterialized_read_panics() {
        let r = Region::new(RegionId(0), vec![4], "v", false);
        let _ = r.read_rect(&Rect::new(vec![0], vec![2]));
    }

    #[test]
    #[should_panic]
    fn wrong_length_write_panics() {
        let mut r = Region::new(RegionId(0), vec![4], "v", true);
        r.write_rect(&Rect::new(vec![0], vec![2]), &[1.0]);
    }

    #[test]
    fn handle_shares_one_region_across_clones() {
        let h = RegionHandle::new(Region::new(RegionId(3), vec![2, 3], "grid", true));
        assert_eq!(h.shape(), &[2, 3]);
        assert_eq!(h.name(), "grid");
        assert_eq!(h.volume(), 6);
        assert_eq!(h.size_bytes(), 48);
        let other = h.clone();
        other.fill(4.0);
        assert_eq!(h.data().unwrap(), vec![4.0; 6]);
        other.write_data(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(h.read_rect(&Rect::new(vec![1, 0], vec![2, 3])), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn unmaterialized_handle_has_no_data() {
        let h = RegionHandle::new(Region::new(RegionId(0), vec![16], "lazy", false));
        assert!(!h.is_materialized());
        assert!(h.data().is_none());
        h.fill(1.0); // no-op, must not panic
        assert!(h.data().is_none());
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RegionHandle>();
    }
}
