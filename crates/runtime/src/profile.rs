//! Execution profile: what the runtime observed while executing launches.

/// Counters accumulated across every launch executed by a [`crate::Runtime`].
///
/// Counters are filled in eagerly at submission time (with the cost
/// accounting), so they never depend on which executor runs the functional
/// work.
///
/// # Example
///
/// ```
/// use runtime::Profile;
///
/// let mut p = Profile { comm_time: 1.0, kernel_time: 2.0, ..Profile::default() };
/// assert_eq!(p.total_time(), 3.0);
/// let earlier = p;
/// p.kernel_time += 4.0;
/// assert_eq!(p.since(&earlier).kernel_time, 4.0);
/// p.reset();
/// assert_eq!(p, Profile::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Profile {
    /// Index tasks launched.
    pub index_tasks: u64,
    /// GPU kernels launched (one per module stage per index task).
    pub kernel_launches: u64,
    /// Bytes moved through GPU memory by kernels (per-GPU, on the critical
    /// path).
    pub kernel_bytes: u64,
    /// Floating point operations executed (per-GPU, critical path).
    pub kernel_flops: u64,
    /// Bytes communicated between GPUs because data was accessed through a
    /// partition other than the one it was produced with.
    pub comm_bytes: u64,
    /// Simulated seconds spent in communication.
    pub comm_time: f64,
    /// Simulated seconds spent in kernels (including launch overheads).
    pub kernel_time: f64,
    /// Simulated seconds of per-task runtime/MPI overhead.
    pub overhead_time: f64,
    /// Distributed allocations performed.
    pub distributed_allocations: u64,
    /// Bytes of distributed allocations performed.
    pub distributed_allocation_bytes: u64,
}

impl Profile {
    /// Total simulated seconds attributed to execution by this profile.
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.kernel_time + self.overhead_time
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Profile::default();
    }

    /// The difference between two profiles (`self - earlier`), used to report
    /// per-phase statistics.
    pub fn since(&self, earlier: &Profile) -> Profile {
        Profile {
            index_tasks: self.index_tasks - earlier.index_tasks,
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            kernel_bytes: self.kernel_bytes - earlier.kernel_bytes,
            kernel_flops: self.kernel_flops - earlier.kernel_flops,
            comm_bytes: self.comm_bytes - earlier.comm_bytes,
            comm_time: self.comm_time - earlier.comm_time,
            kernel_time: self.kernel_time - earlier.kernel_time,
            overhead_time: self.overhead_time - earlier.overhead_time,
            distributed_allocations: self.distributed_allocations
                - earlier.distributed_allocations,
            distributed_allocation_bytes: self.distributed_allocation_bytes
                - earlier.distributed_allocation_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_sums_components() {
        let p = Profile {
            comm_time: 1.0,
            kernel_time: 2.0,
            overhead_time: 0.5,
            ..Profile::default()
        };
        assert_eq!(p.total_time(), 3.5);
    }

    #[test]
    fn reset_zeroes() {
        let mut p = Profile {
            index_tasks: 5,
            ..Profile::default()
        };
        p.reset();
        assert_eq!(p, Profile::default());
    }

    #[test]
    fn since_subtracts() {
        let early = Profile {
            index_tasks: 2,
            kernel_launches: 3,
            ..Profile::default()
        };
        let late = Profile {
            index_tasks: 7,
            kernel_launches: 10,
            ..Profile::default()
        };
        let diff = late.since(&early);
        assert_eq!(diff.index_tasks, 5);
        assert_eq!(diff.kernel_launches, 7);
    }
}
