//! Dependency tracking between task launches.
//!
//! The parallel executor may only overlap launches that do not conflict. Two
//! launches conflict when they touch the same region and at least one of them
//! writes (or reduces) it — the classic read-after-write, write-after-read and
//! write-after-write hazards. The [`DepTracker`] derives these hazards from
//! each launch's region read/write sets *in program order*, producing for each
//! new launch the set of earlier launches it must wait for.
//!
//! Tracking is at region granularity: two launches writing disjoint
//! rectangles of the same region are conservatively ordered. This is sound
//! (never reorders a conflict) and cheap — the analysis is O(accesses), not
//! O(points), which keeps submission on the critical path fast.

use std::collections::HashMap;

use crate::launch::RegionRequirement;
use crate::region::RegionId;

/// How one launch accesses one region, summarized for dependency analysis.
///
/// A launch's full access list is derived from its
/// [`crate::RegionRequirement`]s: `reads` covers the
/// `Read`/`ReadWrite` privileges, `writes` covers `Write`/`ReadWrite` and —
/// conservatively — `Reduce` (reduction reordering is not modelled).
///
/// # Example
///
/// ```
/// use runtime::{AccessSummary, RegionId};
///
/// let a = AccessSummary { region: RegionId(0), reads: true, writes: false };
/// assert!(a.reads && !a.writes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSummary {
    /// The region accessed.
    pub region: RegionId,
    /// Whether the launch reads the region's previous contents.
    pub reads: bool,
    /// Whether the launch writes (or reduces into) the region.
    pub writes: bool,
}

impl AccessSummary {
    /// Summarizes an access with the given privilege (reductions count as
    /// writes, as the tracker does not model reduction reordering).
    pub fn from_privilege(region: RegionId, privilege: ir::Privilege) -> Self {
        AccessSummary {
            region,
            reads: privilege.reads(),
            writes: privilege.writes() || privilege.reduces(),
        }
    }

    /// Summarizes a launch's region requirement.
    pub fn from_requirement(req: &RegionRequirement) -> Self {
        Self::from_privilege(req.region, req.privilege)
    }
}

/// Derives launch-ordering dependencies from region read/write sets.
///
/// Launches are identified by caller-chosen monotonically increasing ids
/// (the parallel executor uses its task counter). For every region the
/// tracker remembers the last writer and the readers since that write;
/// [`DepTracker::record`] returns the ids the new launch depends on:
///
/// * a **read** depends on the region's last writer (RAW);
/// * a **write** depends on the last writer (WAW) *and* every reader since
///   (WAR), and then becomes the new last writer, clearing the reader set.
///
/// # Example
///
/// ```
/// use runtime::{AccessSummary, DepTracker, RegionId};
///
/// let mut deps = DepTracker::default();
/// let r = RegionId(0);
/// let w = |writes: bool| AccessSummary { region: r, reads: !writes, writes };
/// assert_eq!(deps.record(0, &[w(true)]), vec![]);     // first write: no deps
/// assert_eq!(deps.record(1, &[w(false)]), vec![0]);   // read-after-write
/// assert_eq!(deps.record(2, &[w(false)]), vec![0]);   // independent reader
/// assert_eq!(deps.record(3, &[w(true)]), vec![0, 1, 2]); // write waits for all
/// ```
#[derive(Debug, Default)]
pub struct DepTracker {
    last_writer: HashMap<RegionId, u64>,
    readers: HashMap<RegionId, Vec<u64>>,
}

impl DepTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        DepTracker::default()
    }

    /// Records launch `id`'s accesses and returns the ids of the earlier
    /// launches it must be ordered after (sorted, deduplicated, never
    /// containing `id` itself).
    pub fn record(&mut self, id: u64, accesses: &[AccessSummary]) -> Vec<u64> {
        let mut deps: Vec<u64> = Vec::new();
        for access in accesses {
            if access.reads || access.writes {
                if let Some(&w) = self.last_writer.get(&access.region) {
                    deps.push(w);
                }
            }
            if access.writes {
                if let Some(readers) = self.readers.get(&access.region) {
                    deps.extend(readers.iter().copied());
                }
            }
        }
        // Apply state updates after collecting deps so that a launch touching
        // the same region through several requirements does not depend on
        // itself.
        for access in accesses {
            if access.writes {
                self.last_writer.insert(access.region, id);
                self.readers.remove(&access.region);
            }
        }
        for access in accesses {
            // A read-only access registers as a reader unless this same launch
            // also writes the region (then it is already the last writer and
            // internal ordering covers the read).
            if access.reads
                && !access.writes
                && self.last_writer.get(&access.region) != Some(&id)
            {
                self.readers.entry(access.region).or_default().push(id);
            }
        }
        deps.retain(|&d| d != id);
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Forgets all recorded history (used after an executor flush, when every
    /// outstanding launch has completed).
    pub fn reset(&mut self) {
        self.last_writer.clear();
        self.readers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(region: u64, reads: bool, writes: bool) -> AccessSummary {
        AccessSummary {
            region: RegionId(region),
            reads,
            writes,
        }
    }

    #[test]
    fn independent_regions_have_no_deps() {
        let mut t = DepTracker::new();
        assert!(t.record(0, &[acc(0, false, true)]).is_empty());
        assert!(t.record(1, &[acc(1, false, true)]).is_empty());
        assert!(t.record(2, &[acc(2, true, false), acc(3, false, true)]).is_empty());
    }

    #[test]
    fn raw_war_waw_hazards_are_ordered() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        // RAW: read of region 0 sees writer 0.
        assert_eq!(t.record(1, &[acc(0, true, false)]), vec![0]);
        // WAW + WAR: next write waits for writer 0 and reader 1.
        assert_eq!(t.record(2, &[acc(0, false, true)]), vec![0, 1]);
        // RAW against the new writer only.
        assert_eq!(t.record(3, &[acc(0, true, false)]), vec![2]);
    }

    #[test]
    fn concurrent_readers_do_not_depend_on_each_other() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        assert_eq!(t.record(1, &[acc(0, true, false)]), vec![0]);
        assert_eq!(t.record(2, &[acc(0, true, false)]), vec![0]);
        assert_eq!(t.record(3, &[acc(0, true, false)]), vec![0]);
    }

    #[test]
    fn read_write_same_region_in_one_launch_has_no_self_dep() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        // Launch 1 reads region 0 through one requirement and writes it
        // through another (aliasing views).
        let deps = t.record(1, &[acc(0, true, false), acc(0, false, true)]);
        assert_eq!(deps, vec![0]);
        // The next reader depends on launch 1, the new last writer.
        assert_eq!(t.record(2, &[acc(0, true, false)]), vec![1]);
    }

    #[test]
    fn reset_forgets_history() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        t.reset();
        assert!(t.record(1, &[acc(0, true, true)]).is_empty());
    }
}
