//! Dependency tracking between task launches.
//!
//! The parallel executor may only overlap launches that do not conflict. Two
//! launches conflict when they touch the same region and at least one of them
//! writes (or reduces) it — the classic read-after-write, write-after-read and
//! write-after-write hazards. The [`DepTracker`] derives these hazards from
//! each launch's region read/write sets *in program order*, producing for each
//! new launch the set of earlier launches it must wait for.
//!
//! Tracking is at region granularity: two launches writing disjoint
//! rectangles of the same region are conservatively ordered. This is sound
//! (never reorders a conflict) and cheap — the analysis is O(accesses), not
//! O(points), which keeps submission on the critical path fast.

use std::collections::HashMap;

use crate::launch::RegionRequirement;
use crate::region::RegionId;

/// How one launch accesses one region, summarized for dependency analysis.
///
/// A launch's full access list is derived from its
/// [`crate::RegionRequirement`]s: `reads` covers the
/// `Read`/`ReadWrite` privileges, `writes` covers `Write`/`ReadWrite` and —
/// conservatively — `Reduce` (reduction reordering is not modelled).
///
/// # Example
///
/// ```
/// use runtime::{AccessSummary, RegionId};
///
/// let a = AccessSummary { region: RegionId(0), reads: true, writes: false };
/// assert!(a.reads && !a.writes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSummary {
    /// The region accessed.
    pub region: RegionId,
    /// Whether the launch reads the region's previous contents.
    pub reads: bool,
    /// Whether the launch writes (or reduces into) the region.
    pub writes: bool,
}

impl AccessSummary {
    /// Summarizes an access with the given privilege (reductions count as
    /// writes, as the tracker does not model reduction reordering).
    pub fn from_privilege(region: RegionId, privilege: ir::Privilege) -> Self {
        AccessSummary {
            region,
            reads: privilege.reads(),
            writes: privilege.writes() || privilege.reduces(),
        }
    }

    /// Summarizes a launch's region requirement.
    pub fn from_requirement(req: &RegionRequirement) -> Self {
        Self::from_privilege(req.region, req.privilege)
    }
}

/// Derives launch-ordering dependencies from region read/write sets.
///
/// Launches are identified by caller-chosen monotonically increasing ids
/// (the parallel executor uses its task counter). For every region the
/// tracker remembers the last writer and the readers since that write;
/// [`DepTracker::record`] returns the ids the new launch depends on:
///
/// * a **read** depends on the region's last writer (RAW);
/// * a **write** depends on the last writer (WAW) *and* every reader since
///   (WAR), and then becomes the new last writer, clearing the reader set.
///
/// # Example
///
/// ```
/// use runtime::{AccessSummary, DepTracker, RegionId};
///
/// let mut deps = DepTracker::default();
/// let r = RegionId(0);
/// let w = |writes: bool| AccessSummary { region: r, reads: !writes, writes };
/// assert_eq!(deps.record(0, &[w(true)]), vec![]);     // first write: no deps
/// assert_eq!(deps.record(1, &[w(false)]), vec![0]);   // read-after-write
/// assert_eq!(deps.record(2, &[w(false)]), vec![0]);   // independent reader
/// assert_eq!(deps.record(3, &[w(true)]), vec![0, 1, 2]); // write waits for all
/// ```
#[derive(Debug, Default)]
pub struct DepTracker {
    last_writer: HashMap<RegionId, u64>,
    readers: HashMap<RegionId, Vec<u64>>,
}

impl DepTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        DepTracker::default()
    }

    /// Records launch `id`'s accesses and returns the ids of the earlier
    /// launches it must be ordered after (sorted, deduplicated, never
    /// containing `id` itself).
    pub fn record(&mut self, id: u64, accesses: &[AccessSummary]) -> Vec<u64> {
        let mut deps: Vec<u64> = Vec::new();
        for access in accesses {
            if access.reads || access.writes {
                if let Some(&w) = self.last_writer.get(&access.region) {
                    deps.push(w);
                }
            }
            if access.writes {
                if let Some(readers) = self.readers.get(&access.region) {
                    deps.extend(readers.iter().copied());
                }
            }
        }
        // Apply state updates after collecting deps so that a launch touching
        // the same region through several requirements does not depend on
        // itself.
        for access in accesses {
            if access.writes {
                self.last_writer.insert(access.region, id);
                self.readers.remove(&access.region);
            }
        }
        for access in accesses {
            // A read-only access registers as a reader unless this same launch
            // also writes the region (then it is already the last writer and
            // internal ordering covers the read).
            if access.reads
                && !access.writes
                && self.last_writer.get(&access.region) != Some(&id)
            {
                self.readers.entry(access.region).or_default().push(id);
            }
        }
        deps.retain(|&d| d != id);
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Forgets all recorded history (used after an executor flush, when every
    /// outstanding launch has completed).
    pub fn reset(&mut self) {
        self.last_writer.clear();
        self.readers.clear();
    }
}

/// Debug-only happens-before checker for the parallel executor
/// (`DIFFUSE_VERIFY` truthy in a debug build; see `docs/ANALYZE.md`).
///
/// The work-stealing executor promises that a task starts only after every
/// conflicting earlier task has completed, where *conflicting* means the two
/// tasks touch the same region and at least one writes it. This checker
/// validates that promise independently of the scheduler: it maintains the
/// transitive ancestor set of every registered task (the set-based equivalent
/// of a vector clock — `a` happens-before `b` iff `a ∈ ancestors(b)`) and, at
/// the moment a task begins executing, asserts that every conflicting
/// predecessor is both an ancestor through recorded [`DepTracker`] edges *and*
/// already completed. A violation is a scheduler bug and panics with the two
/// task ids and the region.
///
/// The checker is O(tasks²) per flush epoch and allocates per task; it is
/// meant for debug builds and tests, never the release hot path.
#[derive(Debug, Default)]
pub struct HbChecker {
    /// Transitive happens-before ancestors of each registered task.
    ancestors: HashMap<u64, std::collections::HashSet<u64>>,
    /// Program-order registration log: (id, accesses).
    log: Vec<(u64, Vec<AccessSummary>)>,
    /// Tasks that have finished executing (or were poisoned).
    completed: std::collections::HashSet<u64>,
}

impl HbChecker {
    /// Whether `DIFFUSE_VERIFY` asks for the checker: `on`, `1` or `true`
    /// (case-insensitive). Combined with `cfg!(debug_assertions)` by the
    /// executor so release builds never pay for it.
    pub fn requested_by_env() -> bool {
        std::env::var("DIFFUSE_VERIFY")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "on" || v == "1" || v == "true"
            })
            .unwrap_or(false)
    }

    /// Registers a task at submission, in program order, with the dependence
    /// edges the scheduler recorded for it. The task's ancestor set is the
    /// transitive closure of `deps`.
    pub fn register(&mut self, id: u64, accesses: &[AccessSummary], deps: &[u64]) {
        let mut ancestors = std::collections::HashSet::with_capacity(deps.len());
        for &d in deps {
            ancestors.insert(d);
            if let Some(up) = self.ancestors.get(&d) {
                ancestors.extend(up.iter().copied());
            }
        }
        self.ancestors.insert(id, ancestors);
        self.log.push((id, accesses.to_vec()));
    }

    /// Asserts, at the moment `id` starts executing, that every earlier
    /// conflicting task is an ancestor and has completed.
    ///
    /// # Panics
    ///
    /// Panics with the offending pair and region on a happens-before
    /// violation.
    pub fn check_start(&self, id: u64) {
        let Some(mine) = self.log.iter().find(|(i, _)| *i == id).map(|(_, a)| a) else {
            return;
        };
        let ancestors = self.ancestors.get(&id);
        for (other, theirs) in self.log.iter().take_while(|(i, _)| *i != id) {
            let conflict = mine.iter().find_map(|a| {
                theirs
                    .iter()
                    .find(|b| b.region == a.region && (a.writes || b.writes))
                    .map(|b| b.region)
            });
            let Some(region) = conflict else { continue };
            assert!(
                ancestors.is_some_and(|set| set.contains(other)),
                "happens-before violation: task {id} conflicts with earlier task {other} on \
                 {region:?} but has no dependence path to it"
            );
            assert!(
                self.completed.contains(other),
                "happens-before violation: task {id} started before conflicting predecessor \
                 {other} completed ({region:?})"
            );
        }
    }

    /// Marks `id` as completed (also used for poisoned tasks, whose failure
    /// is their completion).
    pub fn complete(&mut self, id: u64) {
        self.completed.insert(id);
    }

    /// Forgets the epoch (mirrors [`DepTracker::reset`] at executor flush).
    pub fn reset(&mut self) {
        self.ancestors.clear();
        self.log.clear();
        self.completed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(region: u64, reads: bool, writes: bool) -> AccessSummary {
        AccessSummary {
            region: RegionId(region),
            reads,
            writes,
        }
    }

    #[test]
    fn independent_regions_have_no_deps() {
        let mut t = DepTracker::new();
        assert!(t.record(0, &[acc(0, false, true)]).is_empty());
        assert!(t.record(1, &[acc(1, false, true)]).is_empty());
        assert!(t.record(2, &[acc(2, true, false), acc(3, false, true)]).is_empty());
    }

    #[test]
    fn raw_war_waw_hazards_are_ordered() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        // RAW: read of region 0 sees writer 0.
        assert_eq!(t.record(1, &[acc(0, true, false)]), vec![0]);
        // WAW + WAR: next write waits for writer 0 and reader 1.
        assert_eq!(t.record(2, &[acc(0, false, true)]), vec![0, 1]);
        // RAW against the new writer only.
        assert_eq!(t.record(3, &[acc(0, true, false)]), vec![2]);
    }

    #[test]
    fn concurrent_readers_do_not_depend_on_each_other() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        assert_eq!(t.record(1, &[acc(0, true, false)]), vec![0]);
        assert_eq!(t.record(2, &[acc(0, true, false)]), vec![0]);
        assert_eq!(t.record(3, &[acc(0, true, false)]), vec![0]);
    }

    #[test]
    fn read_write_same_region_in_one_launch_has_no_self_dep() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        // Launch 1 reads region 0 through one requirement and writes it
        // through another (aliasing views).
        let deps = t.record(1, &[acc(0, true, false), acc(0, false, true)]);
        assert_eq!(deps, vec![0]);
        // The next reader depends on launch 1, the new last writer.
        assert_eq!(t.record(2, &[acc(0, true, false)]), vec![1]);
    }

    #[test]
    fn reset_forgets_history() {
        let mut t = DepTracker::new();
        t.record(0, &[acc(0, false, true)]);
        t.reset();
        assert!(t.record(1, &[acc(0, true, true)]).is_empty());
    }

    #[test]
    fn hb_checker_accepts_ordered_conflicts() {
        let mut hb = HbChecker::default();
        hb.register(0, &[acc(0, false, true)], &[]);
        hb.register(1, &[acc(0, true, false)], &[0]);
        hb.check_start(0);
        hb.complete(0);
        hb.check_start(1);
        hb.complete(1);
    }

    #[test]
    fn hb_checker_accepts_transitive_ordering() {
        // 0 -> 1 -> 2; task 2 conflicts with 0 but only lists 1 as a direct
        // dep — the transitive closure must cover it.
        let mut hb = HbChecker::default();
        hb.register(0, &[acc(0, false, true)], &[]);
        hb.register(1, &[acc(0, true, true)], &[0]);
        hb.register(2, &[acc(0, false, true)], &[1]);
        hb.complete(0);
        hb.complete(1);
        hb.check_start(2);
    }

    #[test]
    #[should_panic(expected = "no dependence path")]
    fn hb_checker_rejects_missing_edge() {
        let mut hb = HbChecker::default();
        hb.register(0, &[acc(0, false, true)], &[]);
        hb.register(1, &[acc(0, true, false)], &[]);
        hb.complete(0);
        hb.check_start(1);
    }

    #[test]
    #[should_panic(expected = "before conflicting predecessor")]
    fn hb_checker_rejects_premature_start() {
        let mut hb = HbChecker::default();
        hb.register(0, &[acc(0, false, true)], &[]);
        hb.register(1, &[acc(0, true, false)], &[0]);
        // 0 never completed.
        hb.check_start(1);
    }

    #[test]
    fn hb_checker_ignores_read_read_and_disjoint_pairs() {
        let mut hb = HbChecker::default();
        hb.register(0, &[acc(0, true, false)], &[]);
        hb.register(1, &[acc(0, true, false), acc(1, false, true)], &[]);
        // Read-read on region 0, disjoint region 1: no ordering required.
        hb.check_start(1);
        hb.reset();
        // After reset the history is gone.
        hb.register(2, &[acc(0, true, false)], &[]);
        hb.check_start(2);
    }
}
